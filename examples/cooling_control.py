#!/usr/bin/env python3
"""Workload-sensitive cooling control (the paper's Section 6 future work).

Runs the same 400-server row twice under a typical diurnal workload:
once with the standard static worst-case cooling configuration (coldest
supply setpoint, fans sized for rated power) and once with the
workload-sensitive controller that — exactly like Ampere — reads only the
per-minute aggregated row power, keeps a conservative one-interval
margin, and actuates a minimal two-knob interface (airflow, setpoint).

Run time: about 20 seconds.
"""

from repro.analysis.report import render_table
from repro.cooling.controller import CoolingController, StaticWorstCaseCooling
from repro.cooling.thermal import CoolingUnit
from repro.sim.testbed import Testbed, WorkloadSpec


def run(mode: str, hours: float = 8.0, seed: int = 4):
    testbed = Testbed(n_servers=400, seed=seed)
    row = testbed.row
    testbed.monitor.register_group(row)
    unit = CoolingUnit()
    horizon = hours * 3600.0
    testbed.add_batch_workload(WorkloadSpec.typical(), horizon).start(horizon)
    testbed.monitor.start(horizon)
    if mode == "adaptive":
        CoolingController(testbed.engine, testbed.monitor, row, unit).start(horizon)
    else:
        StaticWorstCaseCooling(testbed.engine, row, unit).start(horizon)
    testbed.run(until=horizon)
    return unit


def main() -> None:
    print("Running static worst-case cooling ...")
    static = run("static")
    print("Running workload-sensitive cooling ...")
    adaptive = run("adaptive")

    rows = [
        ["static worst-case", f"{static.cooling_energy_joules / 3.6e6:.1f}",
         str(static.thermal_violations)],
        ["workload-sensitive", f"{adaptive.cooling_energy_joules / 3.6e6:.1f}",
         str(adaptive.thermal_violations)],
    ]
    print()
    print(render_table(["mode", "cooling energy (kWh)", "thermal violations"], rows))
    saving = 1.0 - adaptive.cooling_energy_joules / static.cooling_energy_joules
    print(f"\nenergy saved: {saving:.1%} with zero thermal violations --")
    print("the same statistical-margin pattern Ampere uses for power, applied")
    print("to the cooling plant through an equally minimal interface.")


if __name__ == "__main__":
    main()
