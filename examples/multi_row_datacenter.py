#!/usr/bin/env python3
"""Multi-row data center power characterization (Section 2.2).

Simulates a five-row data center where each row hosts a different product
(its own intensity, diurnal phase and spikes) and reports the three
observations that motivate Ampere's design:

1. Power utilization is low, and lower at larger aggregation scale
   (Figure 1): consolidating unused power pays more at the row level than
   the rack level.
2. Row power varies strongly over time and across rows (Figure 2).
3. Cross-row correlations are weak, so one row's spare power is usually
   available when another row runs hot.

Run time: about 30 seconds.
"""

import numpy as np

from repro.analysis.report import render_table
from repro.analysis.stats import pairwise_correlations
from repro.workload.traces import MultiRowTraceConfig, run_multi_row_trace


def main() -> None:
    config = MultiRowTraceConfig(n_rows=5, racks_per_row=2, days=1.0, seed=9)
    print(f"Simulating {config.n_rows} rows for {config.days:.0f} day(s) ...")
    trace = run_multi_row_trace(config)

    print()
    print("Power utilization by aggregation level (normalized to budget):")
    rows = []
    for level in ("rack", "row", "datacenter"):
        samples = trace.pooled_utilization_samples(level)
        rows.append(
            [
                level,
                f"{samples.mean():.3f}",
                f"{np.percentile(samples, 5):.3f}",
                f"{np.percentile(samples, 95):.3f}",
                f"{samples.std():.4f}",
            ]
        )
    print(render_table(["level", "mean", "p5", "p95", "std"], rows))

    print()
    print("Per-row mean utilization (spatial imbalance):")
    row_rows = [
        [name, f"{values.mean():.3f}", f"{values.max():.3f}"]
        for name, (_, values) in sorted(trace.row_series().items())
    ]
    print(render_table(["row", "mean", "max"], row_rows))

    series = [values for _, values in trace.row_series().values()]
    correlations = np.abs(pairwise_correlations(series))
    print()
    print(
        f"Cross-row power correlation: median |r| = {np.median(correlations):.2f}, "
        f"{np.mean(correlations < 0.33):.0%} of pairs under 0.33 "
        "(the paper reports 80%)."
    )
    unused = [
        trace.datacenter.power_budget_watts - p
        for p in trace.db.query("power/datacenter")[1]
    ]
    print(
        f"Mean unused power at data-center scale: {np.mean(unused) / 1000:.1f} kW "
        "-- the head-room Ampere converts into extra servers."
    )


if __name__ == "__main__":
    main()
