#!/usr/bin/env python3
"""From monitoring history to an over-provisioning decision (Section 4.4).

The paper chose its production r_O = 0.17 by looking at a month of
monitoring data: "the 85th and the 95th percentile power is 0.909 and
0.924 (scaled to match r_O), which means most of the time G_TPW will be
at least 15%". This example runs that workflow end to end:

1. record a day of power history under conservative rated-power
   provisioning (Ampere off, r_O = 0);
2. feed the history to the advisor, which scales it by each candidate
   (1 + r_O) and checks the percentile head-room and time-over-budget;
3. deploy the recommended ratio with Ampere on and verify it holds.

Run time: about 30 seconds.
"""

from repro.analysis.report import format_percent, render_table
from repro.core.advisor import recommend_over_provision_ratio
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec


def main() -> None:
    workload = WorkloadSpec.typical()
    print("Recording 12h of power history under rated provisioning ...")
    history_run = ControlledExperiment(
        ExperimentConfig(
            n_servers=400,
            duration_hours=12.0,
            over_provision_ratio=0.0,
            ampere_enabled=False,
            workload=workload,
            seed=31,
        )
    ).run()
    history = history_run.control.normalized_power
    print(f"  mean power {history.mean():.3f} of budget, p95 {sorted(history)[int(0.95*len(history))]:.3f}")

    advice = recommend_over_provision_ratio(history)
    rows = [
        [
            f"{a.ratio:.2f}",
            f"{a.scaled_percentile_power:.3f}",
            format_percent(a.fraction_time_over_threshold),
            format_percent(a.fraction_time_over_budget, digits=2),
            format_percent(a.expected_min_gain),
        ]
        for a in advice.assessments
    ]
    print()
    print(
        render_table(
            ["r_O", "p95 power x (1+r_O)", "time over threshold",
             "time over budget", "expected min gain"],
            rows,
        )
    )
    chosen = advice.recommended_ratio
    print(f"\nadvisor recommends r_O = {chosen:.2f}")

    print(f"Verifying: 12h with Ampere at r_O = {chosen:.2f} ...")
    check = ControlledExperiment(
        ExperimentConfig(
            n_servers=400,
            duration_hours=12.0,
            over_provision_ratio=chosen,
            scale_control_budget=False,
            workload=workload,
            seed=32,
        )
    ).run()
    print(
        f"  violations = {check.experiment.summary.violations}, "
        f"G_TPW = {check.g_tpw:.1%} "
        f"(expected at least {advice.assessment_for(chosen).expected_min_gain:.1%})"
    )


if __name__ == "__main__":
    main()
