#!/usr/bin/env python3
"""Trace-based A/B: replay an identical job stream under two controllers.

The paper could not isolate production servers for trace-based
experiments and used a live parity split instead; the simulator can do
the stronger thing. This example records a two-hour job trace once, then
replays the byte-identical stream twice on an over-provisioned row: once
with only DVFS capping enforcing the budget, once with Ampere (capping
still armed underneath). Because the arrivals are identical, every
difference is the controller's doing.

Run time: about 30 seconds.
"""

import numpy as np

from repro.analysis.report import render_table
from repro.cluster.capping import CappingEngine
from repro.core.controller import AmpereController
from repro.core.freeze_model import FreezeEffectModel
from repro.sim.testbed import Testbed, WorkloadSpec
from repro.workload.replay import TraceRecorder, TraceReplayGenerator

HOURS = 3.0
R_O = 0.25
# A pronounced peak in the middle of the window: transient overloads are
# where the two mechanisms differ most (under *sustained* overload even
# Ampere saturates and the capping safety net engages).
SPEC = WorkloadSpec(
    target_utilization=0.33,
    diurnal_amplitude=0.14,
    diurnal_phase_seconds=-16200.0,
)


def record_trace() -> list:
    testbed = Testbed(n_servers=400, seed=21)
    horizon = HOURS * 3600.0
    recorder = TraceRecorder()
    generator = testbed.add_batch_workload(SPEC, horizon)
    generator.listeners.append(recorder)
    generator.start(horizon)
    testbed.run(until=horizon)
    return recorder.records


def replay(records, mode: str):
    testbed = Testbed(n_servers=400, seed=99)  # different seed: only the
    row = testbed.row                          # trace carries the workload
    row.set_over_provision_ratio(R_O)
    testbed.monitor.register_group(row)
    horizon = HOURS * 3600.0
    TraceReplayGenerator(testbed.engine, testbed.scheduler, records).start(horizon)
    testbed.monitor.start(horizon)
    capping = CappingEngine(row, testbed.engine)
    capping.start(horizon)
    slowdowns = []
    testbed.scheduler.completion_listeners.append(
        lambda job, server: slowdowns.append(job.slowdown)
    )
    if mode == "ampere":
        AmpereController(
            testbed.engine, testbed.scheduler, testbed.monitor, [row],
            freeze_model=FreezeEffectModel(),
        ).start(horizon)
    testbed.run(until=horizon)
    return {
        "violations": testbed.monitor.violation_count(row.name),
        "capped_actions": capping.stats.cap_actions,
        "completed": testbed.scheduler.stats.completed,
        "mean_slowdown": float(np.mean(slowdowns)) if slowdowns else 1.0,
        "p99_slowdown": float(np.percentile(slowdowns, 99)) if slowdowns else 1.0,
    }


def main() -> None:
    print("Recording a two-hour job trace ...")
    records = record_trace()
    print(f"  {len(records)} jobs recorded")

    rows = []
    for mode in ("capping-only", "ampere"):
        print(f"Replaying under {mode} ...")
        outcome = replay(records, mode)
        rows.append(
            [
                mode,
                str(outcome["completed"]),
                str(outcome["violations"]),
                str(outcome["capped_actions"]),
                f"{outcome['mean_slowdown']:.3f}",
                f"{outcome['p99_slowdown']:.3f}",
            ]
        )
    print()
    print(
        render_table(
            ["mode", "jobs done", "violations", "cap actions",
             "mean slowdown", "p99 slowdown"],
            rows,
        )
    )
    print()
    print(
        "Identical arrivals, different enforcement: with Ampere steering new "
        "placements away as power approaches the limit, the DVFS safety net "
        "fires far less often (cap actions above). It still fires on "
        "sub-minute transients the one-minute controller cannot see -- "
        "exactly why the paper keeps hardware capping armed underneath."
    )


if __name__ == "__main__":
    main()
