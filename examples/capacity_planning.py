#!/usr/bin/env python3
"""Capacity planning: choose the over-provisioning ratio r_O (Section 4.4).

Sweeps r_O over the paper's candidate values under BOTH the typical
production workload and a heavy day, using the Section 4.4 experiment
design: only the experiment group's budget is scaled (the control group
represents conservative rated-power provisioning), so the throughput
ratio r_T measures exactly what the over-provisioned row loses to control
actions and G_TPW = r_T * (1 + r_O) - 1 is the capacity gained per
provisioned watt.

The paper's conclusion shows up as a worst-case trade-off: a large r_O
(0.25) looks great on typical days but collapses on heavy days (the
budget binds, extra servers just idle and get frozen), while a small r_O
(0.13) is safe but leaves capacity on the table. The robust choice sits
in between -- the paper deploys 0.17.

Run time: about two minutes.
"""

from repro.analysis.report import format_percent, render_table
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec

RATIOS = (0.13, 0.17, 0.21, 0.25)
WORKLOADS = {"typical": WorkloadSpec.typical(), "heavy": WorkloadSpec.heavy()}


def run_cell(r_o: float, workload: WorkloadSpec) -> float:
    config = ExperimentConfig(
        n_servers=400,
        duration_hours=8.0,
        warmup_hours=1.0,
        over_provision_ratio=r_o,
        scale_control_budget=False,  # Section 4.4 mode
        workload=workload,
        seed=7,
    )
    return ControlledExperiment(config).run()


def main() -> None:
    gains = {}
    details = {}
    for r_o in RATIOS:
        for level, workload in WORKLOADS.items():
            result = run_cell(r_o, workload)
            gains[(r_o, level)] = result.g_tpw
            details[(r_o, level)] = result
            print(f"r_O = {r_o:.2f} {level:<8}: G_TPW = {result.g_tpw:.1%}")

    rows = []
    for r_o in RATIOS:
        typical = gains[(r_o, "typical")]
        heavy = gains[(r_o, "heavy")]
        u_heavy = details[(r_o, "heavy")].experiment.summary.u_mean
        rows.append(
            [
                f"{r_o:.2f}",
                format_percent(typical),
                format_percent(heavy),
                format_percent(min(typical, heavy)),
                format_percent(u_heavy),
            ]
        )
    print()
    print(
        render_table(
            ["r_O", "G_TPW typical", "G_TPW heavy", "worst case", "u_mean heavy"],
            rows,
        )
    )
    best = max(RATIOS, key=lambda r: min(gains[(r, "typical")], gains[(r, "heavy")]))
    print()
    print(f"Worst-case-optimal over-provisioning: r_O = {best:.2f}.")
    print(
        "The paper deploys r_O = 0.17: beyond it, heavy days spend the gain "
        "on freezing (u_mean grows) and below it capacity is left unused."
    )


if __name__ == "__main__":
    main()
