#!/usr/bin/env python3
"""Capacity planning: choose the over-provisioning ratio r_O (Section 4.4).

Sweeps r_O over the paper's candidate values under BOTH the typical
production workload and a heavy day, using the Section 4.4 experiment
design: only the experiment group's budget is scaled (the control group
represents conservative rated-power provisioning), so the throughput
ratio r_T measures exactly what the over-provisioned row loses to control
actions and G_TPW = r_T * (1 + r_O) - 1 is the capacity gained per
provisioned watt.

The paper's conclusion shows up as a worst-case trade-off: a large r_O
(0.25) looks great on typical days but collapses on heavy days (the
budget binds, extra servers just idle and get frozen), while a small r_O
(0.13) is safe but leaves capacity on the table. The robust choice sits
in between -- the paper deploys 0.17.

The sweep is a Campaign (a grid of independent cells), so it fans out
across a process pool with bit-identical results:

    python examples/capacity_planning.py --workers 4

Run time: about two minutes serially; scales with 1/workers on a
multi-core machine.
"""

import argparse

from repro.analysis.report import format_percent, render_table
from repro.sim.campaign import Campaign
from repro.sim.testbed import WorkloadSpec

RATIOS = (0.13, 0.17, 0.21, 0.25)
WORKLOADS = {"typical": WorkloadSpec.typical(), "heavy": WorkloadSpec.heavy()}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the sweep out across N worker processes "
        "(results are identical to the serial run)",
    )
    args = parser.parse_args()

    campaign = Campaign(
        ratios=RATIOS,
        workloads=WORKLOADS,
        seeds=(7,),
        n_servers=400,
        duration_hours=8.0,
        warmup_hours=1.0,
    )
    progress = lambda cell, row: print(
        f"{cell.label():<32}: G_TPW = {row.g_tpw:.1%}", flush=True
    )
    if args.workers:
        result = campaign.run_parallel(max_workers=args.workers, on_cell=progress)
    else:
        result = campaign.run(on_cell=progress)

    gains = {
        (row.cell.over_provision_ratio, row.cell.workload_name): row
        for row in result.rows
    }
    rows = []
    for r_o in RATIOS:
        typical = gains[(r_o, "typical")].g_tpw
        heavy = gains[(r_o, "heavy")].g_tpw
        u_heavy = gains[(r_o, "heavy")].u_mean
        rows.append(
            [
                f"{r_o:.2f}",
                format_percent(typical),
                format_percent(heavy),
                format_percent(min(typical, heavy)),
                format_percent(u_heavy),
            ]
        )
    print()
    print(
        render_table(
            ["r_O", "G_TPW typical", "G_TPW heavy", "worst case", "u_mean heavy"],
            rows,
        )
    )
    best = result.best_ratio("worst_case")
    print()
    print(f"Worst-case-optimal over-provisioning: r_O = {best:.2f}.")
    print(
        "The paper deploys r_O = 0.17: beyond it, heavy days spend the gain "
        "on freezing (u_mean grows) and below it capacity is left unused."
    )


if __name__ == "__main__":
    main()
