#!/usr/bin/env python3
"""Interactive SLA study: why capping hurts and Ampere doesn't (Fig. 11).

Deploys 20 Redis-like service instances on an over-provisioned row under
heavy batch load and measures client-side p99.9 latency for each
redis-benchmark operation twice: once with DVFS power capping enforcing
the budget, once with Ampere (capping stays armed as a safety net but
rarely fires). Capping slows the CPU-bound services directly and queueing
amplifies the damage at the tail; Ampere's freeze/unfreeze never touches
running services.

Run time: about one minute.
"""

from repro.analysis.report import render_table
from repro.sim.interactive_experiment import (
    InteractiveExperimentConfig,
    run_interactive_comparison,
)


def main() -> None:
    config = InteractiveExperimentConfig(duration_hours=2.0, warmup_hours=0.5, seed=3)
    print(
        f"Running both enforcement modes on {config.n_servers} servers with "
        f"{config.n_services} pinned services (r_O = {config.over_provision_ratio}) ..."
    )
    results = run_interactive_comparison(config)
    capping = results["capping"]
    ampere = results["ampere"]

    rows = []
    for op in capping.reports:
        c = capping.reports[op].p999 * 1e6
        a = ampere.reports[op].p999 * 1e6
        rows.append([op, f"{c:.0f}", f"{a:.0f}", f"{c / a:.2f}x"])
    print()
    print(
        render_table(
            ["operation", "capping p99.9 (us)", "ampere p99.9 (us)", "ratio"], rows
        )
    )
    print()
    print(
        f"Under capping, services spent "
        f"{capping.fraction_service_time_capped:.1%} of the run below full "
        f"frequency; under Ampere, "
        f"{ampere.fraction_service_time_capped:.1%} "
        f"(mean freezing ratio {ampere.u_mean:.1%})."
    )


if __name__ == "__main__":
    main()
