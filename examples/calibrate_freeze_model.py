#!/usr/bin/env python3
"""Calibrate the freeze-effect model f(u) (Section 3.4 / Figure 5).

Runs the paper's controlled calibration: every few minutes, freeze a
random fraction u of the experiment group's hottest servers for one
minute and record the power gap that opens against the control group.
Fitting a line through the origin gives k_r, the single model parameter
the SPCP controller needs (Eq. 13). Also regenerates the Figure 4
freeze-decay curve.

Run time: about 20 seconds.
"""

from repro.analysis.report import render_table
from repro.sim.calibration import run_freeze_decay, run_freeze_effect_calibration
from repro.sim.testbed import WorkloadSpec


def main() -> None:
    print("Measuring freeze decay (Figure 4) ...")
    decay = run_freeze_decay(
        n_freeze=80, observe_minutes=50, n_servers=400, seed=1,
        workload=WorkloadSpec(target_utilization=0.30),
    )
    curve = decay.mean_power_normalized_to_rated
    checkpoints = [0, 5, 10, 20, 35, 50]
    print(
        render_table(
            ["minutes since freeze", "mean power / rated"],
            [[m, f"{curve[m]:.3f}"] for m in checkpoints],
        )
    )
    print()

    print("Calibrating f(u) on a 12h controlled run (Figure 5) ...")
    calibration = run_freeze_effect_calibration(hours=12.0, n_servers=400, seed=1)
    summary = calibration.model.binned_percentiles(bin_width=0.1)
    rows = [
        [f"{center:.2f}", f"{p[25.0]:+.4f}", f"{p[50.0]:+.4f}", f"{p[75.0]:+.4f}"]
        for center, p in summary.items()
    ]
    print(render_table(["u (bin center)", "p25 f(u)", "median f(u)", "p75 f(u)"], rows))
    print()
    print(f"fitted k_r = {calibration.k_r:.4f}  (normalized power / minute per unit u)")
    print(
        "Pass this value as ExperimentConfig(k_r=...) or "
        "FreezeEffectModel(k_r=...); the repository default was produced by "
        "exactly this procedure."
    )


if __name__ == "__main__":
    main()
