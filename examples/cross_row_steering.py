#!/usr/bin/env python3
"""Cross-row power-aware job steering (the paper's Section 6 future work).

Builds a three-row data center where each row carries its own pinned
product (hot / medium / cold) plus a flexible product free to run
anywhere. With power-oblivious placement the hot row keeps bumping into
its budget and Ampere must freeze servers; with the power-aware
CoolestRowPolicy the flexible jobs drain toward the cold row and the
controller barely acts -- the scheduler and the power controller stay
decoupled behind the same freeze/unfreeze interface.

Run time: about 20 seconds.
"""

from repro.analysis.report import render_table
from repro.sim.steering_experiment import SteeringConfig, run_steering_comparison


def main() -> None:
    config = SteeringConfig(duration_hours=6.0, seed=1)
    print(
        f"Running {config.n_rows} rows (pinned utilizations "
        f"{config.row_utilizations}) with a flexible product, both placement "
        "policies ..."
    )
    results = run_steering_comparison(config)

    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                str(result.total_violations),
                f"{result.mean_freezing_ratio:.2%}",
                str(result.throughput),
                "  ".join(
                    f"{row}:{mean:.3f}"
                    for row, mean in sorted(result.row_power_means.items())
                ),
            ]
        )
    print()
    print(
        render_table(
            ["placement", "violations", "mean freeze u", "jobs placed", "row power"],
            rows,
        )
    )
    random_u = results["random"].mean_freezing_ratio
    steered_u = results["coolest-row"].mean_freezing_ratio
    print()
    print(
        f"Power-aware steering cuts the mean freezing ratio from "
        f"{random_u:.2%} to {steered_u:.2%} at identical throughput: the "
        "scheduler does with placement what Ampere would otherwise have to "
        "do with freezes."
    )


if __name__ == "__main__":
    main()
