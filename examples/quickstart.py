#!/usr/bin/env python3
"""Quickstart: run one controlled Ampere experiment and print the outcome.

Builds the paper's evaluation setup scaled to a quick run: a 400-server
row split into experiment/control groups by server-id parity, both
over-provisioned at r_O = 0.25 (emulated by scaling the power budget,
Eq. 16 of the paper), heavy batch workload, with Ampere controlling only
the experiment group. Any difference between the groups is the effect of
the statistical power control.

Run time: about 10 seconds.
"""

from repro.analysis.report import render_table
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec


def main() -> None:
    config = ExperimentConfig(
        n_servers=400,
        duration_hours=6.0,
        warmup_hours=1.0,
        over_provision_ratio=0.25,
        workload=WorkloadSpec.heavy(),
        seed=2,
    )
    print(
        f"Running {config.duration_hours:.0f}h controlled experiment on "
        f"{config.n_servers} servers (r_O = {config.over_provision_ratio}) ..."
    )
    result = ControlledExperiment(config).run()

    headers = ["group", "u_mean", "u_max", "P_mean", "P_max", "violations"]
    rows = [
        result.experiment.summary.as_row(),
        result.control.summary.as_row(),
    ]
    print()
    print(render_table(headers, rows))
    print()
    print(f"throughput ratio r_T = {result.r_t:.3f}")
    print(f"gain in TPW  G_TPW  = {result.g_tpw:.1%}")
    print()
    print(
        "The control group (no power control) violates its budget "
        f"{result.control.summary.violations} times; Ampere keeps the "
        f"experiment group at {result.experiment.summary.violations} "
        "violations by statistically steering new jobs away when power "
        "approaches the limit."
    )


if __name__ == "__main__":
    main()
