"""Command-line interface for the Ampere reproduction.

Exposes the main experiment harnesses without writing Python::

    ampere-repro experiment --workload heavy --hours 24 --ro 0.25
    ampere-repro run --faults chaos --hours 2 --capping
    ampere-repro sweep --hours 12
    ampere-repro calibrate --hours 12
    ampere-repro interactive --hours 2
    ampere-repro trace --days 1
    ampere-repro fleet --hours 6 --policies static demand-following
    ampere-repro campaign --fleet-policy demand-following --hours 6
    ampere-repro tenancy-ab --tenants critical-batch --hours 3
    ampere-repro campaign --checkpoint-dir ck/ --resume
    ampere-repro metrics --hours 2 --json snapshot.json
    ampere-repro spans --hours 2
    ampere-repro verify-snapshot run.snap

(``run`` is an alias of ``experiment``; ``--faults`` injects one of the
named fault scenarios from :mod:`repro.faults` -- control-plane and
data-plane alike -- and ``--safety`` arms the breaker-trip physics plus
the defense-in-depth emergency ladder of :mod:`repro.core.safety`.
``fleet`` runs the
multi-row facility A/B of :mod:`repro.sim.fleet_experiment` -- the same
seeded fleet under each budget-reallocation policy -- and ``campaign
--fleet-policy`` runs every campaign cell on the two-row fleet harness.
``tenancy-ab``
runs the same seeded multi-tenant cell under the ``blind`` and ``fair``
freeze policies and reports the per-tenant fairness delta; ``--tenants``
on ``experiment``/``fleet``/``campaign``/``serve`` tags the run with one
of the builtin tenant mixes of :mod:`repro.tenancy`.
``metrics``
and ``spans`` run a telemetry-enabled experiment and expose the
:mod:`repro.telemetry` registry and control-loop span traces; the global
``--log-level`` flag turns on the package's stdlib logging.)

Every command prints the same style of tables the paper reports and exits
non-zero on invalid arguments.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from typing import List, Optional

from repro.analysis.report import format_percent, render_table
from repro.cluster.state import BACKEND_ENV_VAR, BACKENDS, set_default_backend
from repro.durability.atomic import atomic_write_text
from repro.sim.audit import ALL_CHECKS as AUDIT_CHECKS
from repro.faults.scenario import builtin_scenarios
from repro.fleet.config import POLICY_NAMES
from repro.sim.experiment import (
    ControlledExperiment,
    ExperimentConfig,
    ExperimentResult,
    run_tenancy_ab,
)
from repro.sim.testbed import WorkloadSpec
from repro.telemetry import configure_logging
from repro.tenancy import TENANCY_POLICIES, TenancyConfig, builtin_mixes

LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

WORKLOADS = {
    "light": WorkloadSpec.light,
    "typical": WorkloadSpec.typical,
    "heavy": WorkloadSpec.heavy,
}

SCENARIOS = builtin_scenarios()

MIXES = builtin_mixes()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    parser.add_argument(
        "--servers", type=int, default=400, help="fleet size (multiple of 40)"
    )


def _add_tenancy_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tenants",
        choices=sorted(MIXES),
        default=None,
        metavar="MIX",
        help="tag the run with a builtin tenant mix "
        f"({', '.join(sorted(MIXES))}; default: untenanted)",
    )
    parser.add_argument(
        "--tenancy-policy",
        choices=TENANCY_POLICIES,
        default=None,
        help="freeze-fairness policy for the tenant mix "
        "(default: the mix's own, 'fair')",
    )


def _tenancy_config(args: argparse.Namespace) -> Optional[TenancyConfig]:
    """The TenancyConfig implied by --tenants/--tenancy-policy (or None)."""
    if getattr(args, "tenants", None) is None:
        if getattr(args, "tenancy_policy", None) is not None:
            raise SystemExit("error: --tenancy-policy requires --tenants")
        return None
    config = MIXES[args.tenants]
    policy = getattr(args, "tenancy_policy", None)
    if policy is not None and policy != config.policy:
        config = replace(config, policy=policy)
    return config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ampere-repro",
        description="Reproduction of Ampere (EuroSys 2016): statistical power control",
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default=None,
        metavar="LEVEL",
        help="enable stdlib logging for the repro package "
        f"({', '.join(LOG_LEVELS)}; default: logging stays silent)",
    )
    parser.add_argument(
        "--engine-backend",
        choices=BACKENDS,
        default=None,
        help="hot-loop engine backend for every builder in this process "
        "(trajectories are byte-identical across backends; default: the "
        "REPRO_ENGINE_BACKEND environment variable, else 'object')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiment = sub.add_parser(
        "experiment",
        aliases=["run"],
        help="run one controlled A/B experiment (Section 4.2)",
    )
    _add_common(experiment)
    experiment.add_argument("--hours", type=float, default=24.0)
    experiment.add_argument("--ro", type=float, default=0.25, help="over-provision ratio")
    experiment.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="heavy"
    )
    experiment.add_argument(
        "--no-ampere", action="store_true", help="disable the controller"
    )
    experiment.add_argument(
        "--capping", action="store_true", help="enable the DVFS capping safety net"
    )
    experiment.add_argument(
        "--scale-experiment-only",
        action="store_true",
        help="Section 4.4 mode: control group keeps the rated budget",
    )
    experiment.add_argument(
        "--faults",
        choices=sorted(SCENARIOS),
        default=None,
        help="inject a named control-plane fault scenario (repro.faults)",
    )
    experiment.add_argument(
        "--safety",
        action="store_true",
        help="arm the breaker model and the emergency safety ladder "
        "(repro.core.safety)",
    )
    _add_tenancy_args(experiment)
    experiment.add_argument(
        "--save-snapshot",
        type=str,
        default=None,
        metavar="PATH",
        help="write a durable snapshot of the finished simulation state "
        "to PATH (verify it later with 'verify-snapshot')",
    )

    sweep = sub.add_parser("sweep", help="G_TPW sweep over r_O (Table 3 / Section 4.4)")
    _add_common(sweep)
    sweep.add_argument("--hours", type=float, default=12.0)
    sweep.add_argument(
        "--ratios", type=float, nargs="+", default=[0.13, 0.17, 0.21, 0.25]
    )
    sweep.add_argument("--workload", choices=sorted(WORKLOADS), default="typical")

    calibrate = sub.add_parser(
        "calibrate", help="measure f(u) and fit k_r (Section 3.4 / Figure 5)"
    )
    _add_common(calibrate)
    calibrate.add_argument("--hours", type=float, default=12.0)

    interactive = sub.add_parser(
        "interactive", help="capping vs Ampere tail latency (Figure 11)"
    )
    _add_common(interactive)
    interactive.add_argument("--hours", type=float, default=2.0)

    trace = sub.add_parser(
        "trace", help="multi-row power characterization (Section 2.2)"
    )
    trace.add_argument("--seed", type=int, default=9)
    trace.add_argument("--days", type=float, default=1.0)
    trace.add_argument("--rows", type=int, default=5)

    advise = sub.add_parser(
        "advise", help="recommend r_O from a simulated power history (Section 4.4)"
    )
    _add_common(advise)
    advise.add_argument("--hours", type=float, default=12.0)
    advise.add_argument("--workload", choices=sorted(WORKLOADS), default="typical")
    advise.add_argument(
        "--ratios", type=float, nargs="+", default=[0.13, 0.17, 0.21, 0.25]
    )

    campaign = sub.add_parser(
        "campaign", help="run a grid of Section 4.4 cells (the Table 3 study)"
    )
    _add_common(campaign)
    campaign.add_argument("--hours", type=float, default=12.0)
    campaign.add_argument(
        "--ratios", type=float, nargs="+", default=[0.13, 0.17, 0.21, 0.25]
    )
    campaign.add_argument("--seeds", type=int, nargs="+", default=[13])
    campaign.add_argument("--csv", type=str, default=None, help="write rows to CSV")
    campaign.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run cells on a process pool of N workers (results are "
        "bit-identical to the serial run)",
    )
    campaign.add_argument(
        "--parallel",
        action="store_true",
        help="shorthand for --workers <cpu count>",
    )
    campaign.add_argument(
        "--faults",
        choices=sorted(SCENARIOS),
        default=None,
        help="apply a named fault scenario to every cell (chaos sweeps)",
    )
    campaign.add_argument(
        "--safety",
        action="store_true",
        help="arm the breaker model and emergency safety ladder in every cell",
    )
    campaign.add_argument(
        "--fleet-policy",
        choices=POLICY_NAMES,
        default=None,
        metavar="POLICY",
        help="run every cell on the two-row fleet harness under this "
        f"budget-reallocation policy ({', '.join(POLICY_NAMES)})",
    )
    campaign.add_argument(
        "--fleet-skew",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="cold-row intensity as a fraction of the cell workload "
        "(fleet cells only)",
    )
    _add_tenancy_args(campaign)
    campaign.add_argument(
        "--checkpoint-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="durably record every finished cell in DIR (atomic writes); "
        "a killed campaign can then be continued with --resume",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="continue a checkpointed campaign: cells already recorded "
        "in --checkpoint-dir are restored instead of re-run",
    )
    campaign.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="parallel runs only: re-dispatch a cell whose worker has "
        "been silent for this long (straggler speculation)",
    )
    campaign.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="parallel runs only: resubmit a failing cell N times "
        "before quarantining it as a failed row (default 1)",
    )

    verify = sub.add_parser(
        "verify-snapshot",
        help="restore a durable snapshot and run the full state-invariant "
        "audit suite against it (repro.sim.audit)",
    )
    verify.add_argument("path", help="snapshot file written by --save-snapshot")
    verify.add_argument(
        "--checks",
        nargs="+",
        choices=AUDIT_CHECKS,
        default=None,
        metavar="CHECK",
        help=f"restrict to specific checks ({', '.join(AUDIT_CHECKS)}; "
        "default: all)",
    )

    fleet = sub.add_parser(
        "fleet",
        help="multi-row facility A/B: static split vs dynamic "
        "budget reallocation (repro.fleet)",
    )
    fleet.add_argument("--seed", type=int, default=7, help="master RNG seed")
    fleet.add_argument(
        "--servers-per-row",
        type=int,
        default=80,
        help="row size (multiple of 40); the fleet has one hot and one cold row",
    )
    fleet.add_argument("--hours", type=float, default=6.0)
    fleet.add_argument("--ro", type=float, default=0.25, help="over-provision ratio")
    fleet.add_argument(
        "--policies",
        nargs="+",
        choices=POLICY_NAMES,
        default=["static", "demand-following"],
        help="reallocation policies to A/B against each other",
    )
    fleet.add_argument(
        "--hot-util",
        type=float,
        default=0.40,
        help="target utilization of the hot row",
    )
    fleet.add_argument(
        "--cold-util",
        type=float,
        default=0.06,
        help="target utilization of the cold (donor) row",
    )
    fleet.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="write the per-policy result documents to PATH",
    )
    _add_tenancy_args(fleet)

    tenancy_ab = sub.add_parser(
        "tenancy-ab",
        help="seeded A/B of the blind vs fair freeze policies on one "
        "tenant mix (repro.tenancy)",
    )
    _add_common(tenancy_ab)
    tenancy_ab.add_argument("--hours", type=float, default=3.0)
    tenancy_ab.add_argument(
        "--warmup-hours", type=float, default=0.5,
        help="warm-up before monitoring/control begin",
    )
    tenancy_ab.add_argument(
        "--ro", type=float, default=0.25, help="over-provision ratio"
    )
    tenancy_ab.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="heavy"
    )
    tenancy_ab.add_argument(
        "--tenants",
        choices=sorted(MIXES),
        default="critical-batch",
        metavar="MIX",
        help=f"tenant mix to A/B on ({', '.join(sorted(MIXES))})",
    )

    metrics = sub.add_parser(
        "metrics",
        help="run a telemetry-enabled experiment and print its metrics "
        "(Prometheus text format)",
    )
    _add_telemetry_run_args(metrics)
    metrics.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the JSON snapshot to PATH",
    )
    metrics.add_argument(
        "--prom",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the Prometheus exposition to PATH",
    )

    spans = sub.add_parser(
        "spans",
        help="run a telemetry-enabled experiment and summarize its "
        "control-loop span traces",
    )
    _add_telemetry_run_args(spans)
    spans.add_argument(
        "--name",
        type=str,
        default=None,
        help="restrict to one span name (e.g. controller.tick)",
    )
    spans.add_argument(
        "--last",
        type=int,
        default=0,
        metavar="N",
        help="also print the last N raw span records",
    )

    serve = sub.add_parser(
        "serve",
        help="run one experiment as a live service: REST API, SSE event "
        "stream and HTML dashboard (repro.service)",
    )
    _add_common(serve)
    serve.add_argument("--hours", type=float, default=2.0)
    serve.add_argument(
        "--warmup-hours",
        type=float,
        default=0.5,
        help="warm-up before monitoring/control begin",
    )
    serve.add_argument("--ro", type=float, default=0.25, help="over-provision ratio")
    serve.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="heavy"
    )
    serve.add_argument(
        "--faults",
        choices=sorted(SCENARIOS),
        default=None,
        help="build-time fault scenario (more can be armed via the API)",
    )
    serve.add_argument(
        "--safety",
        action="store_true",
        help="arm the breaker model and the emergency safety ladder",
    )
    serve.add_argument(
        "--capping", action="store_true", help="enable the DVFS capping net"
    )
    serve.add_argument(
        "--audit",
        action="store_true",
        help="arm the online invariant auditor on the live run",
    )
    serve.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable the metrics registry (empties /metrics; required "
        "for byte-identity with the telemetry-free batch goldens)",
    )
    serve.add_argument(
        "--fleet",
        action="store_true",
        help="serve a two-row fleet experiment (budget ledger + "
        "coordinator) instead of the single-row A/B",
    )
    serve.add_argument(
        "--fleet-policy",
        choices=POLICY_NAMES,
        default="demand-following",
        help="reallocation policy of the served fleet run",
    )
    _add_tenancy_args(serve)
    serve.add_argument(
        "--golden",
        action="store_true",
        help="serve exactly the pinned golden-regression configuration "
        "(80 servers, 2 h, seed 42, telemetry off); a --step-mode run "
        "driven to the horizon matches tests/golden byte for byte",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8321,
        help="listen port (0 picks an ephemeral port and prints it)",
    )
    serve.add_argument(
        "--step-mode",
        action="store_true",
        help="no wall-clock pacing: simulated time moves only on "
        "POST /api/step (byte-identical to a batch run)",
    )
    serve.add_argument(
        "--speedup",
        type=float,
        default=60.0,
        metavar="N",
        help="simulated seconds per wall second (1 = real time); "
        "ignored with --step-mode",
    )
    serve.add_argument(
        "--final-snapshot",
        type=str,
        default=None,
        metavar="PATH",
        help="write a durable snapshot on SIGTERM/SIGINT before exiting "
        "(verify it later with 'verify-snapshot')",
    )
    serve.add_argument(
        "--state-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="durable service state: verified auto-snapshots, rotation "
        "manifest and the act write-ahead log live here; a killed serve "
        "process can then be continued with 'serve --resume'",
    )
    serve.add_argument(
        "--auto-snapshot-every",
        type=float,
        default=10.0,
        metavar="SIM_MINUTES",
        help="sim-minutes between auditor-verified auto-snapshots "
        "(0 disables them; recovery then only has the genesis frame)",
    )
    serve.add_argument(
        "--auto-snapshot-min-wall",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="wall-clock floor between auto-snapshot offers (checkpoints "
        "bound wall-time recovery loss, so a step-mode run racing "
        "through simulated time is not charged one frame encode per "
        "sim-cadence tick; 0 disables the throttle)",
    )
    serve.add_argument(
        "--serve-resume",
        "--resume",
        dest="serve_resume",
        action="store_true",
        help="resume from --state-dir (newest verified snapshot + WAL "
        "replay); experiment-building flags are ignored",
    )
    return parser


def _add_telemetry_run_args(parser: argparse.ArgumentParser) -> None:
    """Shared arguments of the ``metrics`` and ``spans`` commands."""
    _add_common(parser)
    parser.add_argument("--hours", type=float, default=2.0)
    parser.add_argument("--ro", type=float, default=0.25, help="over-provision ratio")
    parser.add_argument("--workload", choices=sorted(WORKLOADS), default="heavy")
    parser.add_argument(
        "--faults",
        choices=sorted(SCENARIOS),
        default=None,
        help="inject a named control-plane fault scenario",
    )


def _print_facility_line(result: ExperimentResult) -> None:
    """Facility-level roll-up of one run (absolute watts)."""
    facility = result.facility
    if facility is None:
        return
    print(
        f"facility: budget={facility.budget_watts:.0f} W  "
        f"P_mean={facility.p_mean_watts:.0f} W  "
        f"P_max={facility.p_max_watts:.0f} W  "
        f"violations={facility.violations}"
    )


def _print_fault_report(result: ExperimentResult) -> None:
    """Fault-injection and controller-health summary of one run."""
    stats = result.fault_stats
    if stats is None:
        return
    print(f"\nfault injection ({stats.scenario}):")
    print(
        f"  blackouts={stats.blackouts_injected}  "
        f"suppressed samples={stats.samples_suppressed}  "
        f"rpc calls={stats.rpc_calls}  rpc failures={stats.rpc_failures}  "
        f"crashes={stats.crashes_injected}"
    )
    if (
        stats.surge_windows
        or stats.sensor_bias_windows
        or stats.server_failures
    ):
        print(
            f"  data plane: surges={stats.surge_windows}  "
            f"sensor bias windows={stats.sensor_bias_windows}  "
            f"server failures={stats.server_failures}  "
            f"repairs={stats.server_repairs}  "
            f"jobs killed={stats.jobs_killed_by_failures}"
        )
    health = result.controller_health
    if health is not None:
        s = health.summary()
        print(
            "  controller: "
            f"degraded ticks={s['degraded_ticks']}  "
            f"skipped ticks={s['skipped_ticks']}  "
            f"rpc retries={s['rpc_retries']}  "
            f"rpc giveups={s['rpc_giveups']}  "
            f"reconciliations={s['reconciliations']} "
            f"({s['reconciliation_diff_total']} servers)  "
            f"recoveries={s['recoveries']}"
        )


def _print_safety_report(result: ExperimentResult) -> None:
    """Breaker and emergency-ladder summary of one run (if armed)."""
    breaker = result.breaker_stats
    if breaker is not None:
        print(
            f"\nbreaker: trips={breaker.trips}  resets={breaker.resets}  "
            f"jobs killed={breaker.jobs_killed}  "
            f"servers de-energized={breaker.servers_deenergized}  "
            f"peak thermal={breaker.max_thermal_fraction:.0%}"
        )
    safety = result.safety_stats
    if safety is not None:
        print(
            f"safety ladder: escalations={safety.escalations}  "
            f"de-escalations={safety.deescalations}  "
            f"freezes={safety.freezes_issued}  slams={safety.slams}  "
            f"jobs shed={safety.jobs_shed}"
        )


def _print_tenancy_report(stats) -> None:
    """Per-tenant fairness summary of one run (if tenanted)."""
    if stats is None:
        return
    print(
        f"\ntenancy ({stats.policy}): "
        f"Jain fairness index = {stats.jain_index:.4f}"
    )
    rows = [
        [
            tenant.name,
            tenant.sla,
            f"{tenant.share:.2f}",
            str(tenant.n_servers),
            f"{tenant.frozen_server_minutes:.0f}",
            f"{tenant.normalized_frozen:.0f}",
            str(tenant.freeze_events),
            str(tenant.shed_events),
        ]
        for tenant in stats.tenants
    ]
    print(
        render_table(
            ["tenant", "sla", "share", "servers", "frozen (srv-min)",
             "normalized", "freezes", "shed"],
            rows,
        )
    )


# ---------------------------------------------------------------------------
def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.core.safety import SafetyConfig

    config = ExperimentConfig(
        n_servers=args.servers,
        duration_hours=args.hours,
        over_provision_ratio=args.ro,
        workload=WORKLOADS[args.workload](),
        ampere_enabled=not args.no_ampere,
        capping_enabled=args.capping,
        scale_control_budget=not args.scale_experiment_only,
        seed=args.seed,
        faults=SCENARIOS[args.faults] if args.faults else None,
        safety=SafetyConfig() if args.safety else None,
        tenancy=_tenancy_config(args),
    )
    experiment = ControlledExperiment(config)
    result = experiment.run()
    print(
        render_table(
            ["group", "u_mean", "u_max", "P_mean", "P_max", "violations"],
            [result.experiment.summary.as_row(), result.control.summary.as_row()],
        )
    )
    print(f"\nr_T = {result.r_t:.3f}   G_TPW = {format_percent(result.g_tpw)}")
    _print_facility_line(result)
    _print_fault_report(result)
    _print_safety_report(result)
    _print_tenancy_report(result.tenancy)
    if args.save_snapshot:
        experiment.save_snapshot(args.save_snapshot)
        print(f"snapshot written to {args.save_snapshot}", file=sys.stderr)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    rows = []
    for r_o in args.ratios:
        config = ExperimentConfig(
            n_servers=args.servers,
            duration_hours=args.hours,
            over_provision_ratio=r_o,
            scale_control_budget=False,
            workload=WORKLOADS[args.workload](),
            seed=args.seed,
        )
        result = ControlledExperiment(config).run()
        summary = result.experiment.summary
        rows.append(
            [
                f"{r_o:.2f}",
                f"{summary.p_mean:.3f}",
                format_percent(summary.u_mean),
                f"{result.r_t:.3f}",
                format_percent(result.g_tpw),
                str(summary.violations),
            ]
        )
    print(render_table(["r_O", "P_mean", "u_mean", "r_T", "G_TPW", "violations"], rows))
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.sim.calibration import run_freeze_effect_calibration

    result = run_freeze_effect_calibration(
        hours=args.hours, n_servers=args.servers, seed=args.seed
    )
    summary = result.model.binned_percentiles(bin_width=0.1)
    rows = [
        [f"{c:.2f}", f"{p[25.0]:+.4f}", f"{p[50.0]:+.4f}", f"{p[75.0]:+.4f}"]
        for c, p in summary.items()
    ]
    print(render_table(["u", "p25", "median", "p75"], rows))
    print(f"\nk_r = {result.k_r:.4f}")
    return 0


def cmd_interactive(args: argparse.Namespace) -> int:
    from repro.sim.interactive_experiment import (
        InteractiveExperimentConfig,
        run_interactive_comparison,
    )

    config = InteractiveExperimentConfig(
        n_servers=args.servers,
        duration_hours=args.hours,
        warmup_hours=0.5,
        seed=args.seed,
    )
    results = run_interactive_comparison(config)
    rows = []
    for op in results["capping"].reports:
        c = results["capping"].reports[op].p999 * 1e6
        a = results["ampere"].reports[op].p999 * 1e6
        rows.append([op, f"{c:.0f}", f"{a:.0f}", f"{c / a:.2f}x"])
    print(render_table(["operation", "capping p99.9 (us)", "ampere p99.9 (us)", "ratio"], rows))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.workload.traces import MultiRowTraceConfig, run_multi_row_trace

    trace = run_multi_row_trace(
        MultiRowTraceConfig(n_rows=args.rows, days=args.days, seed=args.seed)
    )
    rows = []
    for level in ("rack", "row", "datacenter"):
        samples = trace.pooled_utilization_samples(level)
        rows.append([level, f"{samples.mean():.3f}", f"{samples.std():.4f}"])
    print(render_table(["level", "mean utilization", "std"], rows))
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    from repro.core.advisor import recommend_over_provision_ratio

    history = ControlledExperiment(
        ExperimentConfig(
            n_servers=args.servers,
            duration_hours=args.hours,
            over_provision_ratio=0.0,
            ampere_enabled=False,
            workload=WORKLOADS[args.workload](),
            seed=args.seed,
        )
    ).run()
    advice = recommend_over_provision_ratio(
        history.control.normalized_power, candidate_ratios=tuple(args.ratios)
    )
    rows = [
        [
            f"{a.ratio:.2f}",
            f"{a.scaled_percentile_power:.3f}",
            format_percent(a.fraction_time_over_threshold),
            format_percent(a.fraction_time_over_budget, digits=2),
            format_percent(a.expected_min_gain),
        ]
        for a in advice.assessments
    ]
    print(
        render_table(
            ["r_O", "p95 power (scaled)", "time over threshold",
             "time over budget", "expected min gain"],
            rows,
        )
    )
    print(f"\nrecommended over-provision ratio: {advice.recommended_ratio:.2f}")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.core.safety import SafetyConfig
    from repro.fleet.config import FleetConfig
    from repro.sim.campaign import Campaign, CampaignCell, CampaignRow
    from repro.sim.checkpoint import CheckpointError

    fleet = (
        FleetConfig(policy=args.fleet_policy)
        if args.fleet_policy is not None
        else None
    )
    campaign = Campaign(
        ratios=tuple(args.ratios),
        seeds=tuple(args.seeds),
        n_servers=args.servers,
        duration_hours=args.hours,
        faults=SCENARIOS[args.faults] if args.faults else None,
        safety=SafetyConfig() if args.safety else None,
        fleet=fleet,
        fleet_skew=args.fleet_skew,
        tenancy=_tenancy_config(args),
    )
    workers: Optional[int] = args.workers
    if workers is not None and workers < 1:
        print(f"error: --workers must be >= 1, got {workers}", file=sys.stderr)
        return 2
    if workers is None and args.parallel:
        import os

        workers = os.cpu_count() or 1
    total = len(campaign)
    done = [0]

    def progress(cell: CampaignCell, row: CampaignRow) -> None:
        done[0] += 1
        if not row.ok:
            status = f"FAILED ({row.error})"
        elif fleet is not None:
            status = f"frozen = {row.frozen_server_minutes:.0f} server-min"
        else:
            status = f"G_TPW = {format_percent(row.g_tpw)}"
        print(f"  [{done[0]}/{total}] {cell.label()}: {status}", flush=True)

    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    try:
        if workers is not None:
            print(f"running {total} cells on {workers} workers ...")
            result = campaign.run_parallel(
                max_workers=workers,
                on_cell=progress,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                cell_timeout=args.cell_timeout,
                retries=args.retries,
            )
        else:
            print(f"running {total} cells ...")
            result = campaign.run(
                on_cell=progress,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
            )
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if result.failed_rows:
        print(f"warning: {len(result.failed_rows)} cells failed; see rows below")
    if fleet is not None:
        # Fleet cells have no uncontrolled twin, so r_T / G_TPW do not
        # exist; the capacity story is frozen time and budget moves.
        headers = [
            "r_O", "workload", "P_mean", "u_mean", "frozen (srv-min)",
            "reallocs", "violations", "trips",
        ]
        if args.tenants:
            headers.append("jain")
        rows = []
        for row in result.rows:
            cells = [
                f"{row.cell.over_provision_ratio:.2f}",
                row.cell.workload_name,
                f"{row.p_mean:.3f}",
                format_percent(row.u_mean),
                f"{row.frozen_server_minutes:.0f}",
                str(row.reallocations),
                str(row.violations),
                str(row.trips),
            ]
            if args.tenants:
                cells.append(
                    f"{row.jain_index:.4f}"
                    if row.jain_index is not None else "n/a"
                )
            rows.append(cells)
        print(render_table(headers, rows))
    else:
        headers = ["r_O", "workload", "P_mean", "u_mean", "r_T", "G_TPW", "violations"]
        if args.safety:
            headers += ["trips", "shed"]
        if args.tenants:
            headers.append("jain")
        rows = []
        for row in result.rows:
            cells = [
                f"{row.cell.over_provision_ratio:.2f}",
                row.cell.workload_name,
                f"{row.p_mean:.3f}",
                format_percent(row.u_mean),
                f"{row.r_t:.3f}",
                format_percent(row.g_tpw),
                str(row.violations),
            ]
            if args.safety:
                cells += [str(row.trips), str(row.jobs_shed)]
            if args.tenants:
                cells.append(
                    f"{row.jain_index:.4f}"
                    if row.jain_index is not None else "n/a"
                )
            rows.append(cells)
        print(render_table(headers, rows))
        try:
            print(f"\nworst-case-optimal r_O: {result.best_ratio('worst_case'):.2f}")
        except KeyError:
            # Some (ratio, workload) combinations have only failed rows; a
            # partial sweep still prints its table.
            print("\nworst-case-optimal r_O: n/a (failed cells)")
    if args.csv:
        result.save_csv(args.csv)
        print(f"rows written to {args.csv}")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.sim.fleet_experiment import (
        FleetExperimentConfig,
        FleetRowSpec,
        run_fleet_ab,
    )

    config = FleetExperimentConfig(
        rows=(
            FleetRowSpec(
                n_servers=args.servers_per_row,
                workload=WorkloadSpec(
                    target_utilization=args.hot_util,
                    bursts_per_day=4.0,
                    burst_factor=1.3,
                ),
            ),
            FleetRowSpec(
                n_servers=args.servers_per_row,
                workload=WorkloadSpec(target_utilization=args.cold_util),
            ),
        ),
        duration_hours=args.hours,
        warmup_hours=min(1.0, args.hours / 4.0),
        over_provision_ratio=args.ro,
        seed=args.seed,
        tenancy=_tenancy_config(args),
    )
    results = run_fleet_ab(config, policies=tuple(args.policies))
    rows = []
    for policy, result in results.items():
        stats = result.coordinator_stats
        rows.append(
            [
                policy,
                f"{result.total_frozen_server_minutes:.0f}",
                str(result.total_violations),
                str(result.total_breaker_trips),
                str(stats.reallocations if stats is not None else 0),
                f"{stats.watts_moved:.0f}" if stats is not None else "0",
                str(result.total_throughput),
            ]
        )
    print(
        render_table(
            ["policy", "frozen (srv-min)", "violations", "trips",
             "reallocs", "W moved", "jobs done"],
            rows,
        )
    )
    print()
    for policy, result in results.items():
        facility = result.facility
        print(
            f"{policy}: facility P_mean={facility.p_mean_watts:.0f} W  "
            f"P_max={facility.p_max_watts:.0f} W  "
            f"budget={facility.budget_watts:.0f} W  "
            f"violations={facility.violations}"
        )
        if result.tenancy is not None:
            print(
                f"  tenancy ({result.tenancy.policy}): "
                f"Jain index = {result.tenancy.jain_index:.4f}"
            )
    if args.json:
        import json

        from repro.analysis.serialize import fleet_result_to_dict

        payload = {
            policy: fleet_result_to_dict(result)
            for policy, result in results.items()
        }
        atomic_write_text(args.json, json.dumps(payload, indent=2))
        print(f"results written to {args.json}", file=sys.stderr)
    return 0


def cmd_tenancy_ab(args: argparse.Namespace) -> int:
    from repro.core.safety import SafetyConfig

    config = ExperimentConfig(
        n_servers=args.servers,
        duration_hours=args.hours,
        warmup_hours=args.warmup_hours,
        over_provision_ratio=args.ro,
        workload=WORKLOADS[args.workload](),
        scale_control_budget=False,
        seed=args.seed,
        # The breaker ladder is armed so "fairness did not cost safety"
        # is part of the printed comparison, matching the pinned test.
        safety=SafetyConfig(),
        tenancy=MIXES[args.tenants],
    )
    results = run_tenancy_ab(config)
    for policy, result in results.items():
        trips = (
            result.breaker_stats.trips
            if result.breaker_stats is not None
            else 0
        )
        print(
            f"policy={policy}: r_T={result.r_t:.3f}  "
            f"G_TPW={format_percent(result.g_tpw)}  trips={trips}"
        )
        _print_tenancy_report(result.tenancy)
        print()
    delta = (
        results["fair"].tenancy.jain_index
        - results["blind"].tenancy.jain_index
    )
    print(f"Jain index delta (fair - blind): {delta:+.4f}")
    return 0


def _run_telemetry_experiment(args: argparse.Namespace) -> ControlledExperiment:
    """Build and run the telemetry-enabled experiment behind
    ``metrics``/``spans``. Returns the experiment (registry + tracer)."""
    config = ExperimentConfig(
        n_servers=args.servers,
        duration_hours=args.hours,
        over_provision_ratio=args.ro,
        workload=WORKLOADS[args.workload](),
        seed=args.seed,
        faults=SCENARIOS[args.faults] if args.faults else None,
        telemetry_enabled=True,
    )
    experiment = ControlledExperiment(config)
    experiment.run()
    return experiment


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.telemetry import (
        PROMETHEUS_CONTENT_TYPE,
        render_prometheus,
        save_snapshot,
    )

    experiment = _run_telemetry_experiment(args)
    registry = experiment.telemetry.registry
    text = render_prometheus(registry)
    print(text, end="")
    if args.prom:
        atomic_write_text(args.prom, text)
        print(
            f"# exposition written to {args.prom} "
            f"(serve as {PROMETHEUS_CONTENT_TYPE!r})",
            file=sys.stderr,
        )
    if args.json:
        save_snapshot(registry, args.json)
        print(f"# snapshot written to {args.json}", file=sys.stderr)
    return 0


def cmd_spans(args: argparse.Namespace) -> int:
    experiment = _run_telemetry_experiment(args)
    tracer = experiment.telemetry.tracer
    summary = tracer.summary()
    if args.name is not None:
        summary = {k: v for k, v in summary.items() if k == args.name}
        if not summary:
            print(f"no spans named {args.name!r}", file=sys.stderr)
            return 1
    rows = [
        [
            name,
            str(int(stats["count"])),
            f"{stats['sim_total']:.1f}",
            f"{stats['wall_total'] * 1e3:.2f}",
            f"{stats['wall_mean'] * 1e6:.1f}",
            f"{stats['wall_max'] * 1e6:.1f}",
        ]
        for name, stats in sorted(summary.items())
    ]
    print(
        render_table(
            ["span", "count", "sim total (s)", "wall total (ms)",
             "wall mean (us)", "wall max (us)"],
            rows,
        )
    )
    if tracer.dropped:
        print(f"\n({tracer.dropped} spans dropped by the ring buffer)")
    if args.last > 0:
        records = list(tracer.spans(name=args.name))[-args.last :]
        print()
        for record in records:
            print(
                f"  t={record.start_sim:10.1f}s  {record.name:<16s} "
                f"wall={record.wall_duration * 1e6:8.1f}us "
                f"attrs={record.attributes}"
            )
    return 0


def cmd_verify_snapshot(args: argparse.Namespace) -> int:
    from repro.sim.verify import verify_snapshot_file

    report = verify_snapshot_file(
        args.path, checks=tuple(args.checks) if args.checks else None
    )
    if report.error is not None:
        print(f"error: {report.error}", file=sys.stderr)
        return report.exit_code
    described = "  ".join(
        f"{k}={report.meta[k]}" for k in sorted(report.meta)
    )
    print(f"snapshot: kind={report.kind}  {described}")
    for check, count in report.check_counts.items():
        status = "ok" if count == 0 else f"{count} violation(s)"
        print(f"  {check:<12s} {status}")
        for vcheck, message in report.violations:
            if vcheck == check:
                print(f"    - {message}")
    if report.violations:
        print(f"FAILED: {len(report.violations)} invariant violation(s)")
    else:
        print("all invariants hold")
    return report.exit_code


def cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.core.safety import SafetyConfig
    from repro.service import SupervisorConfig, build_service
    from repro.sim.audit import AuditorConfig

    supervisor_config = SupervisorConfig(
        state_dir=args.state_dir,
        auto_snapshot_every=(
            args.auto_snapshot_every * 60.0
            if args.auto_snapshot_every else None
        ),
        auto_snapshot_min_wall_seconds=args.auto_snapshot_min_wall,
    )

    if args.serve_resume:
        if args.state_dir is None:
            print("error: --resume requires --state-dir", file=sys.stderr)
            return 2
        experiment = None
    elif args.golden:
        # The pinned regression configuration (tests/test_golden.py):
        # a --step-mode run driven to the horizon via the API returns
        # the golden result document byte for byte.
        config = ExperimentConfig(
            n_servers=80,
            duration_hours=2.0,
            warmup_hours=0.5,
            over_provision_ratio=0.25,
            workload=WorkloadSpec(
                target_utilization=0.33, modulation_sigma=0.05
            ),
            seed=42,
        )
        experiment = ControlledExperiment(config)
    elif args.fleet:
        from repro.sim.fleet_experiment import (
            FleetExperiment,
            FleetExperimentConfig,
            FleetRowSpec,
        )
        from repro.fleet.config import FleetConfig

        fleet_config = FleetExperimentConfig(
            rows=(
                FleetRowSpec(
                    n_servers=args.servers,
                    workload=WorkloadSpec(
                        target_utilization=0.40,
                        bursts_per_day=4.0,
                        burst_factor=1.3,
                    ),
                ),
                FleetRowSpec(
                    n_servers=args.servers,
                    workload=WorkloadSpec(target_utilization=0.06),
                ),
            ),
            duration_hours=args.hours,
            warmup_hours=args.warmup_hours,
            over_provision_ratio=args.ro,
            fleet=FleetConfig(policy=args.fleet_policy),
            seed=args.seed,
            safety=SafetyConfig() if args.safety else None,
            faults=SCENARIOS[args.faults] if args.faults else None,
            telemetry_enabled=not args.no_telemetry,
            auditor=AuditorConfig() if args.audit else None,
            tenancy=_tenancy_config(args),
        )
        experiment = FleetExperiment(fleet_config)
    else:
        config = ExperimentConfig(
            n_servers=args.servers,
            duration_hours=args.hours,
            warmup_hours=args.warmup_hours,
            over_provision_ratio=args.ro,
            workload=WORKLOADS[args.workload](),
            capping_enabled=args.capping,
            seed=args.seed,
            faults=SCENARIOS[args.faults] if args.faults else None,
            safety=SafetyConfig() if args.safety else None,
            telemetry_enabled=not args.no_telemetry,
            auditor=AuditorConfig() if args.audit else None,
            tenancy=_tenancy_config(args),
        )
        experiment = ControlledExperiment(config)

    mode = "manual" if args.step_mode else (
        "realtime" if args.speedup == 1.0 else "accelerated"
    )
    service = build_service(
        experiment,
        mode=mode,
        speedup=args.speedup,
        host=args.host,
        port=args.port,
        supervisor_config=supervisor_config,
        resume=args.serve_resume,
    )
    service.start()
    host, port = service.address
    # One parseable line on stdout so headless harnesses (CI smoke) can
    # discover an ephemeral port; everything else goes through logging.
    print(f"serving on http://{host}:{port} (mode={mode})", flush=True)

    stop = threading.Event()

    def _on_signal(signum, frame):
        print(f"received {signal.Signals(signum).name}, shutting down",
              file=sys.stderr, flush=True)
        stop.set()

    # Handlers must be installed on the main thread; the HTTP and sim
    # loops run on daemon threads, so the main thread just waits here.
    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        while not stop.is_set():
            stop.wait(0.5)
    finally:
        written = service.stop(snapshot_path=args.final_snapshot)
        if args.final_snapshot:
            print(
                f"final snapshot written to {args.final_snapshot} "
                f"({written} bytes)",
                file=sys.stderr,
                flush=True,
            )
    return 0


COMMANDS = {
    "experiment": cmd_experiment,
    "run": cmd_experiment,  # alias registered on the subparser
    "sweep": cmd_sweep,
    "calibrate": cmd_calibrate,
    "interactive": cmd_interactive,
    "trace": cmd_trace,
    "advise": cmd_advise,
    "campaign": cmd_campaign,
    "fleet": cmd_fleet,
    "tenancy-ab": cmd_tenancy_ab,
    "metrics": cmd_metrics,
    "spans": cmd_spans,
    "verify-snapshot": cmd_verify_snapshot,
    "serve": cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level is not None:
        configure_logging(args.log_level)
    if args.engine_backend is not None:
        # Via the environment (not just the process default) so campaign
        # worker processes inherit the choice too.
        os.environ[BACKEND_ENV_VAR] = args.engine_backend
        set_default_backend(args.engine_backend)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
