"""Multi-row fleet experiment: the facility-level A/B harness.

The single-row :class:`~repro.sim.experiment.ControlledExperiment`
answers the paper's question (does Ampere hold one row under one
budget?). This harness answers the next one: with several rows under
*one facility budget*, does re-dividing that budget between rows beat
the paper's static per-row split?

Layout: each row is an independent cluster -- its own scheduler,
workload stream and Ampere controller -- because demand skew between
rows is exactly the phenomenon budget reallocation exploits; a shared
scheduling pool would arbitrage the skew away before the power plane
ever saw it. The rows share three things: the simulation engine, the
monitoring plane (one sweep covers every row plus the facility
roll-up), and the facility budget divided by the
:class:`~repro.fleet.ledger.BudgetLedger`.

Physical ratings: every row's feed is rated at ``rating_headroom``
times its static budget (the static split deliberately leaves headroom
below the hardware limit -- that headroom is what the coordinator is
allowed to hand out). Breakers are always armed and pinned to the
rating, so a coordinator bug that over-allocates a row shows up as a
trip, not as a silently absorbed error.

Fault support: monitor blackouts, demand surges and coordinator
blackouts compose with the fleet harness. Controller-crash and
scheduler-RPC hazards remain single-row-harness features (they attach
to exactly one controller/scheduler).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.metrics import (
    FacilitySummary,
    GroupRunSummary,
    summarize_facility_series,
    summarize_power_series,
)
from repro.cluster.breaker import BreakerCurve, BreakerStats, RowBreaker
from repro.cluster.capping import CappingEngine
from repro.cluster.datacenter import DataCenter, build_row
from repro.cluster.row import Row
from repro.core.config import AmpereConfig
from repro.core.controller import AmpereController
from repro.core.demand import ConstantDemandEstimator
from repro.core.freeze_model import DEFAULT_K_R, FreezeEffectModel
from repro.core.safety import SafetyConfig, SafetySupervisor
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.scenario import FaultScenario
from repro.fleet import BudgetLedger, FleetConfig, FleetCoordinator, RowBudget
from repro.fleet.coordinator import CoordinatorStats
from repro.monitor.power_monitor import PowerMonitor
from repro.monitor.tsdb import TimeSeriesDatabase
from repro.scheduler.base import InstrumentedScheduler
from repro.scheduler.omega import OmegaScheduler
from repro.sim.audit import AuditStats, AuditorConfig, StateAuditor
from repro.sim.engine import Engine
from repro.sim.eventlog import ControlEventLog
from repro.sim.testbed import (
    ThroughputTracker,
    WorkloadSpec,
    build_rate_profile,
)
from repro.telemetry import MetricsRegistry, Telemetry
from repro.tenancy import (
    TenancyAccountant,
    TenancyConfig,
    TenancyStats,
    assign_to_tenants,
)
from repro.workload.distributions import (
    JobDurationDistribution,
    ResourceDemandDistribution,
)
from repro.workload.generator import BatchWorkloadGenerator

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class FleetRowSpec:
    """Size and workload of one row in a fleet experiment."""

    n_servers: int = 200
    workload: WorkloadSpec = WorkloadSpec()

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ValueError(f"n_servers must be positive, got {self.n_servers}")


@dataclass(frozen=True)
class FleetExperimentConfig:
    """Configuration of one multi-row fleet run."""

    rows: Tuple[FleetRowSpec, ...] = (FleetRowSpec(), FleetRowSpec())
    duration_hours: float = 8.0
    warmup_hours: float = 1.0
    over_provision_ratio: float = 0.25
    fleet: FleetConfig = FleetConfig()
    ampere: AmpereConfig = AmpereConfig()
    k_r: float = DEFAULT_K_R
    monitor_noise_sigma: float = 0.01
    seed: int = 0
    #: emergency-ladder config; breakers are armed regardless, this adds
    #: the supervisor (and its curve/interval overrides) when set
    safety: Optional[SafetyConfig] = None
    faults: Optional[FaultScenario] = None
    servers_per_rack: int = 40
    telemetry_enabled: bool = False
    #: False runs the same fleet with no coordinator at all -- the
    #: reference the `static` policy must be bit-identical to
    coordinator_enabled: bool = True
    #: hot-loop engine backend ("object"/"vectorized"/None = process
    #: default); trajectories are byte-identical across backends
    engine_backend: Optional[str] = None
    #: online state-invariant auditor (None = off); fleet runs audit the
    #: budget ledger in addition to the single-row checks
    auditor: Optional[AuditorConfig] = None
    #: multi-tenant mix (None = untenanted). Rows are assigned to
    #: tenants by position via the share-weighted interleave; the
    #: ``fair`` fleet policy then water-fills tenant entitlements
    #: before rows.
    tenancy: Optional[TenancyConfig] = None

    def __post_init__(self) -> None:
        if not self.rows:
            raise ValueError("fleet experiment needs at least one row")
        object.__setattr__(self, "rows", tuple(self.rows))
        if self.duration_hours <= 0:
            raise ValueError(
                f"duration_hours must be positive, got {self.duration_hours}"
            )
        if self.warmup_hours < 0:
            raise ValueError(
                f"warmup_hours must be non-negative, got {self.warmup_hours}"
            )
        if self.over_provision_ratio < 0:
            raise ValueError(
                "over_provision_ratio must be non-negative, got "
                f"{self.over_provision_ratio}"
            )
        for spec in self.rows:
            if spec.n_servers % self.servers_per_rack != 0:
                raise ValueError(
                    f"row sizes must be multiples of {self.servers_per_rack}, "
                    f"got {spec.n_servers}"
                )

    @property
    def warmup_seconds(self) -> float:
        return self.warmup_hours * SECONDS_PER_HOUR

    @property
    def end_seconds(self) -> float:
        return (self.warmup_hours + self.duration_hours) * SECONDS_PER_HOUR


@dataclass
class FleetRowOutcome:
    """Measured behaviour of one row during the measurement window."""

    name: str
    summary: GroupRunSummary
    static_budget_watts: float
    final_allocation_watts: float
    rating_watts: float
    #: server-minutes of frozen capacity commanded by the row controller
    #: (exact over the full run even with a bounded history window)
    frozen_server_minutes: float
    breaker_trips: int
    mean_wait_seconds: float
    p99_wait_seconds: float


@dataclass
class FleetResult:
    """Everything the fleet evaluation needs from one run (picklable)."""

    config: FleetExperimentConfig
    rows: List[FleetRowOutcome]
    facility: FacilitySummary
    ledger: Dict[str, object]
    coordinator_stats: Optional[CoordinatorStats] = None
    fault_stats: Optional[FaultStats] = None
    breaker_stats: Dict[str, BreakerStats] = field(default_factory=dict)
    telemetry: Optional[MetricsRegistry] = None
    #: what the online auditor saw (None when the auditor was off)
    audit_stats: Optional[AuditStats] = None
    #: per-tenant fairness accounting (None for untenanted runs)
    tenancy: Optional[TenancyStats] = None

    @property
    def total_throughput(self) -> int:
        return sum(row.summary.throughput for row in self.rows)

    @property
    def total_violations(self) -> int:
        return sum(row.summary.violations for row in self.rows)

    @property
    def total_frozen_server_minutes(self) -> float:
        return sum(row.frozen_server_minutes for row in self.rows)

    @property
    def total_breaker_trips(self) -> int:
        return sum(row.breaker_trips for row in self.rows)

    def without_series(self) -> "FleetResult":
        """Alias for campaign symmetry (rows carry no bulky series)."""
        return self


class FleetExperiment:
    """Build, run and summarize one multi-row fleet experiment."""

    def __init__(self, config: FleetExperimentConfig = FleetExperimentConfig()):
        self.config = config
        self.telemetry = (
            Telemetry.create() if config.telemetry_enabled else Telemetry.disabled()
        )
        self.engine = Engine(telemetry=self.telemetry)
        root = np.random.SeedSequence(config.seed)
        children = root.spawn(1 + 3 * len(config.rows))
        monitor_seed = children[0]

        # --- topology: one row per spec, ids globally unique ----------
        # All rows share one columnar store, so facility-level rollups
        # vectorize across the whole fleet in a single slice.
        from repro.cluster.state import ClusterState

        self.state = ClusterState(
            capacity=sum(spec.n_servers for spec in config.rows),
            backend=config.engine_backend,
        )
        self.rows: List[Row] = []
        first_id = 0
        for index, spec in enumerate(config.rows):
            row = build_row(
                index,
                racks=spec.n_servers // config.servers_per_rack,
                servers_per_rack=config.servers_per_rack,
                first_server_id=first_id,
                state=self.state,
            )
            row.set_over_provision_ratio(config.over_provision_ratio)
            self.rows.append(row)
            first_id += spec.n_servers
        self.datacenter = DataCenter(self.rows)

        # --- shared monitoring plane ----------------------------------
        self.db = TimeSeriesDatabase()
        self.monitor = PowerMonitor(
            self.engine,
            db=self.db,
            noise_sigma=config.monitor_noise_sigma,
            rng=np.random.default_rng(monitor_seed),
            telemetry=self.telemetry,
        )
        self.monitor.register_groups(self.rows)
        self.monitor.set_facility_budget(self.datacenter.power_budget_watts)

        self.event_log = ControlEventLog(self.engine, telemetry=self.telemetry)
        self.throughput = ThroughputTracker(self.engine)

        self.injector: Optional[FaultInjector] = None
        if config.faults is not None:
            self.injector = FaultInjector(self.engine, config.faults)
            self.injector.attach_monitor(self.monitor)

        # --- per-row control planes -----------------------------------
        self.schedulers: List[OmegaScheduler] = []
        self.controllers: Dict[str, AmpereController] = {}
        self.breakers: Dict[str, RowBreaker] = {}
        self.supervisors: Dict[str, SafetySupervisor] = {}
        self._workload_rngs: List[np.random.Generator] = []
        self._modulation_seeds: List[int] = []
        ledger_rows: List[RowBudget] = []
        for index, (row, spec) in enumerate(zip(self.rows, config.rows)):
            sched_seed = children[1 + 3 * index]
            workload_seed = children[2 + 3 * index]
            modulation_seed = children[3 + 3 * index]
            scheduler = OmegaScheduler(
                self.engine, row.servers, rng=np.random.default_rng(sched_seed)
            )
            self.schedulers.append(scheduler)
            self._workload_rngs.append(np.random.default_rng(workload_seed))
            self._modulation_seeds.append(
                int(modulation_seed.generate_state(1)[0])
            )
            self.throughput.track(row)
            scheduler.placement_listeners.append(self.throughput.on_placement)
            self.event_log.attach_scheduler(scheduler)
            controller = AmpereController(
                self.engine,
                InstrumentedScheduler(scheduler, self.telemetry),
                self.monitor,
                [row],
                config=config.ampere,
                freeze_model=FreezeEffectModel(config.k_r),
                demand_estimator=ConstantDemandEstimator(
                    config.ampere.default_e_t
                ),
                telemetry=self.telemetry,
            )
            self.controllers[row.name] = controller

            rating = row.power_budget_watts * config.fleet.rating_headroom
            ledger_rows.append(
                RowBudget(
                    name=row.name,
                    rating_watts=rating,
                    static_watts=row.power_budget_watts,
                )
            )
            safety = config.safety
            self.breakers[row.name] = RowBreaker(
                row,
                self.engine,
                scheduler,
                curve=safety.breaker if safety is not None else BreakerCurve(),
                interval=(
                    safety.breaker_interval_seconds if safety is not None else 5.0
                ),
                reset_delay_seconds=(
                    safety.breaker_reset_minutes * 60.0
                    if safety is not None
                    else 900.0
                ),
                event_log=self.event_log,
                telemetry=self.telemetry,
                rating_watts=rating,
            )
            if safety is not None and safety.supervisor_enabled:
                self.supervisors[row.name] = SafetySupervisor(
                    self.engine,
                    row,
                    scheduler,
                    CappingEngine(row, self.engine),
                    config=safety,
                    breaker=self.breakers[row.name],
                    event_log=self.event_log,
                    telemetry=self.telemetry,
                    rating_watts=rating,
                )

        # --- multi-tenancy: rows -> tenants, tagged down to servers ----
        # Rows are assigned by position with the same share-weighted
        # interleave used for servers in the single-row harness; every
        # server inherits its row's tenant. Pure bookkeeping (no RNG).
        self.tenant_of_row: Dict[str, str] = {}
        self.tenant_of: Dict[int, str] = {}
        self.accountant: Optional[TenancyAccountant] = None
        if config.tenancy is not None:
            ordinal = {
                name: index + 1 for index, name in enumerate(config.tenancy.names)
            }
            self.tenant_of_row = assign_to_tenants(
                [row.name for row in self.rows], config.tenancy
            )
            for row in self.rows:
                tenant = self.tenant_of_row[row.name]
                for server in row.servers:
                    self.tenant_of[server.server_id] = tenant
                    server.tenant_id = ordinal[tenant]
            self.accountant = TenancyAccountant(
                self.engine,
                config.tenancy,
                self.tenant_of,
                telemetry=self.telemetry,
            )
            for scheduler in self.schedulers:
                scheduler.control_listeners.append(
                    self.accountant.on_control_event
                )
            self.event_log.attach_tenant_resolver(self.accountant.resolve)

        # --- the facility budget plane --------------------------------
        self.ledger = BudgetLedger(
            self.datacenter.power_budget_watts, ledger_rows
        )
        self.coordinator: Optional[FleetCoordinator] = None
        if config.coordinator_enabled:
            self.coordinator = FleetCoordinator(
                self.engine,
                self.monitor,
                self.ledger,
                self.controllers,
                config=config.fleet,
                telemetry=self.telemetry,
                event_log=self.event_log,
                tenancy=config.tenancy,
                tenant_of_row=self.tenant_of_row or None,
            )
            if self.injector is not None:
                self.injector.attach_coordinator(self.coordinator)
        self.auditor: Optional[StateAuditor] = None
        if config.auditor is not None:
            self.auditor = self.build_auditor(config.auditor)
        self._started = False
        self._ran = False
        self._result: Optional[FleetResult] = None

    # ------------------------------------------------------------------
    # Staged execution (mirrors ControlledExperiment: start/advance/finish
    # compose into run(), and any advance() boundary is snapshotable).
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm workload, monitoring, control and safety services."""
        if self._started:
            raise RuntimeError("experiment already started")
        self._started = True
        config = self.config
        end = config.end_seconds
        warmup = config.warmup_seconds
        interval = config.ampere.control_interval

        for index, (row, spec) in enumerate(zip(self.rows, config.rows)):
            profile = build_rate_profile(
                spec.n_servers,
                row.servers[0].cores,
                spec.workload,
                end,
                self._modulation_seeds[index],
            )
            tenant = self.tenant_of_row.get(row.name)
            if self.injector is not None:
                profile = self.injector.wrap_rate_profile(profile)
                if tenant is not None:
                    profile = self.injector.wrap_rate_profile_for_tenant(
                        profile, tenant
                    )
            generator = BatchWorkloadGenerator(
                self.engine,
                self.schedulers[index],
                profile,
                rng=self._workload_rngs[index],
                duration=JobDurationDistribution(),
                demand=ResourceDemandDistribution(),
                job_id_offset=index * 10_000_000,
                tenant=tenant,
            )
            generator.start(end)
        self.monitor.start(end, first_at=warmup)
        for controller in self.controllers.values():
            controller.start(end, first_at=warmup)
        for breaker in self.breakers.values():
            breaker.start(end, first_at=warmup)
        for supervisor in self.supervisors.values():
            supervisor.start(end, first_at=warmup)
        if self.auditor is not None:
            self.auditor.start(end, first_at=warmup)
        if self.coordinator is not None:
            # First tick one full cadence after control begins, so the
            # demand window has data before the first reallocation.
            self.coordinator.start(
                end,
                interval,
                first_at=warmup + config.fleet.cadence_intervals * interval,
            )
        if self.injector is not None:
            self.injector.arm(end)

    def advance(self, until: Optional[float] = None) -> None:
        """Run simulated time forward to ``until`` (default: the horizon)."""
        if not self._started:
            self.start()
        end = self.config.end_seconds
        target = end if until is None else min(float(until), end)
        self.engine.run(until=target)

    def finish(self) -> FleetResult:
        """Run any remaining simulated time and collect the outcomes.

        Idempotent like :meth:`ControlledExperiment.finish`: repeated
        calls return the cached result without re-collecting.
        """
        if self._ran:
            return self._result
        self.advance()
        self._ran = True
        self._result = self._collect(
            self.config.warmup_seconds, self.config.end_seconds
        )
        return self._result

    def run(self) -> FleetResult:
        """Execute the fleet experiment and return measured outcomes."""
        if self._ran or self._started:
            raise RuntimeError("experiment already ran; build a new instance")
        self.start()
        return self.finish()

    # ------------------------------------------------------------------
    # Durable snapshots (see repro.durability for the frame format)
    # ------------------------------------------------------------------
    SNAPSHOT_KIND = "fleet"

    def _snapshot_meta(self) -> dict:
        return {
            "sim_now": self.engine.now,
            "backend": self.state.backend,
            "n_rows": len(self.rows),
            "seed": self.config.seed,
            "started": self._started,
        }

    def snapshot(self) -> bytes:
        """Serialize the complete live fleet run into a versioned frame."""
        if self.engine._running:
            raise RuntimeError(
                "cannot snapshot while the engine is running; snapshot "
                "between advance() calls"
            )
        from repro.durability import encode_snapshot

        return encode_snapshot(self, self.SNAPSHOT_KIND, self._snapshot_meta())

    def save_snapshot(self, path: Union[str, Path]) -> int:
        """Atomically write :meth:`snapshot` to ``path``; returns bytes."""
        from repro.durability import atomic_write_bytes

        frame = self.snapshot()
        atomic_write_bytes(path, frame)
        return len(frame)

    @classmethod
    def restore(cls, source: Union[bytes, str, Path]) -> "FleetExperiment":
        """Rebuild a live fleet experiment from a snapshot."""
        from repro.durability import SnapshotError, decode_snapshot, read_snapshot

        if isinstance(source, (bytes, bytearray)):
            obj, _ = decode_snapshot(bytes(source), expected_kind=cls.SNAPSHOT_KIND)
        else:
            obj, _ = read_snapshot(source, expected_kind=cls.SNAPSHOT_KIND)
        if not isinstance(obj, cls):
            raise SnapshotError(
                f"snapshot payload is {type(obj).__name__}, not {cls.__name__}"
            )
        return obj

    # ------------------------------------------------------------------
    def build_auditor(self, config: Optional[AuditorConfig] = None) -> StateAuditor:
        """A :class:`StateAuditor` wired to every fleet surface."""
        return StateAuditor(
            self.engine,
            state=self.state,
            schedulers=list(self.schedulers),
            ledger=self.ledger,
            supervisors=[self.supervisors[name] for name in sorted(self.supervisors)],
            config=config if config is not None else AuditorConfig(),
            telemetry=self.telemetry,
        )

    # ------------------------------------------------------------------
    def _collect(self, warmup: float, end: float) -> FleetResult:
        config = self.config
        interval = config.ampere.control_interval
        outcomes: List[FleetRowOutcome] = []
        breaker_stats: Dict[str, BreakerStats] = {}
        for row, spec in zip(self.rows, config.rows):
            times, norm = self.monitor.normalized_power_series(
                row.name, start=warmup, end=end
            )
            throughput = self.throughput.window_total(row.name, warmup, end)
            state = self.controllers[row.name].state_of(row.name)
            summary = summarize_power_series(
                row.name,
                norm,
                u_history=np.asarray(state.u_history),
                throughput=throughput,
                budget=1.0,
            )
            record = self.throughput.records[row.name]
            stats = self.breakers[row.name].stats_snapshot()
            breaker_stats[row.name] = stats
            outcomes.append(
                FleetRowOutcome(
                    name=row.name,
                    summary=summary,
                    static_budget_watts=self.ledger.row(row.name).static_watts,
                    final_allocation_watts=self.ledger.row(
                        row.name
                    ).allocation_watts,
                    rating_watts=self.ledger.row(row.name).rating_watts,
                    frozen_server_minutes=(
                        state.u_integral * spec.n_servers * interval / 60.0
                    ),
                    breaker_trips=stats.trips,
                    mean_wait_seconds=record.mean_wait(),
                    p99_wait_seconds=record.wait_percentile(99.0),
                )
            )
        _, facility_power = self.monitor.facility_power_series(
            start=warmup, end=end
        )
        facility = summarize_facility_series(
            self.monitor.facility_budget_watts, facility_power
        )
        return FleetResult(
            config=config,
            rows=outcomes,
            facility=facility,
            ledger=self.ledger.snapshot(),
            coordinator_stats=(
                self.coordinator.stats_snapshot()
                if self.coordinator is not None
                else None
            ),
            fault_stats=(
                self.injector.stats_snapshot()
                if self.injector is not None
                else None
            ),
            breaker_stats=breaker_stats,
            telemetry=self.telemetry.registry if self.telemetry.enabled else None,
            audit_stats=(
                self.auditor.stats_snapshot() if self.auditor is not None else None
            ),
            tenancy=(
                self.accountant.stats_snapshot()
                if self.accountant is not None
                else None
            ),
        )


def run_fleet_ab(
    config: FleetExperimentConfig,
    policies: Sequence[str] = ("static", "demand-following"),
) -> Dict[str, FleetResult]:
    """Run the same seeded fleet under each policy (the A/B harness).

    Every run shares the seed, topology and workload; only the
    coordinator's policy differs, so any divergence in frozen
    server-minutes, violations or trips is the policy's doing.
    """
    results: Dict[str, FleetResult] = {}
    for policy in policies:
        cell = replace(config, fleet=replace(config.fleet, policy=policy))
        results[policy] = FleetExperiment(cell).run()
    return results


__all__ = [
    "FleetExperiment",
    "FleetExperimentConfig",
    "FleetResult",
    "FleetRowOutcome",
    "FleetRowSpec",
    "run_fleet_ab",
]
