"""Testbed: the standard single-row cluster every experiment builds on.

Reproduces the paper's evaluation environment (Section 4.1): one row of
400+ homogeneous servers in a shared scheduling pool, a per-minute power
monitor, a batch workload with the published duration/arrival statistics,
and the virtual experiment/control split by server-id parity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.datacenter import build_row
from repro.cluster.group import ServerGroup
from repro.cluster.power import PowerModelParams
from repro.cluster.row import Row
from repro.monitor.power_monitor import PowerMonitor
from repro.monitor.tsdb import TimeSeriesDatabase
from repro.scheduler.omega import OmegaScheduler
from repro.scheduler.policies import PlacementPolicy
from repro.sim.engine import Engine
from repro.telemetry import Telemetry
from repro.workload.distributions import (
    JobDurationDistribution,
    ResourceDemandDistribution,
    rate_for_target_utilization,
)
from repro.workload.generator import (
    BatchWorkloadGenerator,
    BurstyRateProfile,
    DiurnalRateProfile,
    ModulatedRateProfile,
    RateProfile,
)
from repro.workload.job import Job


@dataclass(frozen=True)
class WorkloadSpec:
    """Batch-workload intensity and variability.

    ``target_utilization`` is the mean fraction of cluster cores occupied
    by tasks (production CPU utilization is modest; the paper's row power
    figures back out to task utilization around 0.05-0.35 depending on
    workload level -- see DESIGN.md).
    """

    target_utilization: float = 0.18
    diurnal_amplitude: float = 0.15
    diurnal_phase_seconds: float = 0.0
    modulation_sigma: float = 0.06
    modulation_step_seconds: float = 120.0
    modulation_rho: float = 0.85
    bursts_per_day: float = 0.0
    burst_factor: float = 2.0
    mean_burst_minutes: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target_utilization <= 1.0:
            raise ValueError(
                f"target_utilization must be in (0, 1], got {self.target_utilization}"
            )

    @staticmethod
    def light() -> "WorkloadSpec":
        """Power mostly well under the limit, with occasional excursions
        toward it (Figure 10a conditions: u_mean ~1.5% but u_max ~44%)."""
        return WorkloadSpec(
            target_utilization=0.08,
            diurnal_amplitude=0.10,
            bursts_per_day=3.0,
            burst_factor=3.4,
            mean_burst_minutes=75.0,
        )

    @staticmethod
    def typical() -> "WorkloadSpec":
        """The representative production mix (Table 3 bold rows)."""
        return WorkloadSpec(
            target_utilization=0.17,
            bursts_per_day=2.0,
            burst_factor=1.6,
        )

    @staticmethod
    def heavy() -> "WorkloadSpec":
        """Demand that would breach the budget without control (Fig 10b)."""
        return WorkloadSpec(
            target_utilization=0.31,
            diurnal_amplitude=0.12,
            bursts_per_day=5.0,
            burst_factor=1.25,
            mean_burst_minutes=45.0,
        )

    def scaled(self, factor: float) -> "WorkloadSpec":
        return replace(self, target_utilization=self.target_utilization * factor)


def build_rate_profile(
    n_servers: int,
    cores: int,
    spec: WorkloadSpec,
    horizon_seconds: float,
    modulation_seed: int,
    demand: Optional[ResourceDemandDistribution] = None,
) -> RateProfile:
    """Deterministic arrival-rate profile for ``spec`` over the horizon.

    Module-level so multi-row harnesses (the fleet experiment) can build
    one independent profile per row without constructing a
    :class:`Testbed` per row; the Testbed method delegates here.
    """
    base_rate = rate_for_target_utilization(
        n_servers,
        cores,
        spec.target_utilization,
        demand=demand if demand is not None else ResourceDemandDistribution(),
    )
    profile: RateProfile = DiurnalRateProfile(
        base_rate,
        amplitude=spec.diurnal_amplitude,
        phase_seconds=spec.diurnal_phase_seconds,
    )
    if spec.bursts_per_day > 0:
        profile = BurstyRateProfile(
            profile,
            horizon_seconds=horizon_seconds,
            seed=modulation_seed + 1,
            bursts_per_day=spec.bursts_per_day,
            burst_factor=spec.burst_factor,
            mean_burst_seconds=spec.mean_burst_minutes * 60.0,
        )
    if spec.modulation_sigma > 0:
        profile = ModulatedRateProfile(
            profile,
            horizon_seconds=horizon_seconds,
            seed=modulation_seed,
            step_seconds=spec.modulation_step_seconds,
            rho=spec.modulation_rho,
            sigma=spec.modulation_sigma,
        )
    return profile


@dataclass
class ThroughputRecord:
    """Per-group placement counting with a per-minute series.

    Also accumulates scheduling *wait times* (placement minus arrival):
    freezing servers makes jobs wait in the queue rather than hurting
    running jobs, so queue wait is where Ampere's cost shows up for batch
    work.
    """

    total: int = 0
    minute_bins: Dict[int, int] = field(default_factory=dict)
    wait_times: List[float] = field(default_factory=list)

    def record(self, minute: int, wait_seconds: float = 0.0) -> None:
        self.total += 1
        self.minute_bins[minute] = self.minute_bins.get(minute, 0) + 1
        self.wait_times.append(wait_seconds)

    def mean_wait(self) -> float:
        return float(np.mean(self.wait_times)) if self.wait_times else 0.0

    def wait_percentile(self, percentile: float) -> float:
        if not self.wait_times:
            return 0.0
        return float(np.percentile(np.asarray(self.wait_times), percentile))

    def series(self, start_minute: int, end_minute: int) -> np.ndarray:
        """Jobs placed in each minute of ``[start, end)``."""
        return np.array(
            [self.minute_bins.get(m, 0) for m in range(start_minute, end_minute)],
            dtype=int,
        )


class ThroughputTracker:
    """Counts job placements per named server group.

    Throughput in the paper is "the number of jobs accepted during the
    time period"; a job is accepted by a group when it is placed on one of
    the group's servers.
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._group_of_server: Dict[int, str] = {}
        self.records: Dict[str, ThroughputRecord] = {}

    def track(self, group: ServerGroup) -> None:
        self.records[group.name] = ThroughputRecord()
        for server in group.servers:
            self._group_of_server[server.server_id] = group.name

    def on_placement(self, job: Job, server) -> None:
        group_name = self._group_of_server.get(server.server_id)
        if group_name is not None:
            self.records[group_name].record(
                int(self.engine.now // 60.0),
                wait_seconds=self.engine.now - job.arrival_time,
            )

    def total(self, group_name: str) -> int:
        return self.records[group_name].total

    def window_total(self, group_name: str, start_seconds: float, end_seconds: float) -> int:
        record = self.records[group_name]
        return int(
            record.series(int(start_seconds // 60), int(end_seconds // 60)).sum()
        )


class Testbed:
    """A ready-to-run single-row cluster with workload and monitoring.

    Parameters
    ----------
    n_servers:
        Fleet size; must be divisible by ``servers_per_rack``.
    seed:
        Master seed; all component generators derive from it.
    monitor_interval / monitor_noise_sigma:
        Power-monitor configuration (60 s / 1% like the paper's).
    """

    SERVERS_PER_RACK = 40
    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        n_servers: int = 400,
        cores: int = 16,
        memory_gb: float = 64.0,
        power_params: PowerModelParams = PowerModelParams(),
        seed: int = 0,
        monitor_interval: float = 60.0,
        monitor_noise_sigma: float = 0.01,
        placement_policy: Optional[PlacementPolicy] = None,
        store_per_server_power: bool = False,
        telemetry: Optional[Telemetry] = None,
        engine_backend: Optional[str] = None,
    ) -> None:
        if n_servers % self.SERVERS_PER_RACK != 0:
            raise ValueError(
                f"n_servers must be a multiple of {self.SERVERS_PER_RACK}, got {n_servers}"
            )
        self.seed = seed
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.engine = Engine(telemetry=self.telemetry)
        self.row: Row = build_row(
            0,
            racks=n_servers // self.SERVERS_PER_RACK,
            servers_per_rack=self.SERVERS_PER_RACK,
            power_params=power_params,
            cores=cores,
            memory_gb=memory_gb,
            engine_backend=engine_backend,
        )
        #: the columnar store behind the row (all servers share it)
        self.state = self.row.state
        self.engine_backend = self.state.backend
        self.cores = cores
        root = np.random.SeedSequence(seed)
        sched_seed, monitor_seed, workload_seed, modulation_seed = root.spawn(4)
        self.scheduler = OmegaScheduler(
            self.engine,
            self.row.servers,
            rng=np.random.default_rng(sched_seed),
            default_policy=placement_policy,
        )
        self.db = TimeSeriesDatabase()
        self.monitor = PowerMonitor(
            self.engine,
            db=self.db,
            interval=monitor_interval,
            noise_sigma=monitor_noise_sigma,
            rng=np.random.default_rng(monitor_seed),
            store_per_server=store_per_server_power,
            telemetry=self.telemetry,
        )
        self._workload_rng = np.random.default_rng(workload_seed)
        self._modulation_seed = int(modulation_seed.generate_state(1)[0])
        self.throughput = ThroughputTracker(self.engine)
        self.scheduler.placement_listeners.append(self.throughput.on_placement)
        self.generators: List[BatchWorkloadGenerator] = []
        self.duration_distribution = JobDurationDistribution()
        self.demand_distribution = ResourceDemandDistribution()

    # ------------------------------------------------------------------
    # Groups
    # ------------------------------------------------------------------
    def split_by_parity(self) -> Tuple[ServerGroup, ServerGroup]:
        """The paper's A/B split: even ids -> experiment, odd -> control."""
        experiment = ServerGroup(
            "experiment", [s for s in self.row.servers if s.server_id % 2 == 0]
        )
        control = ServerGroup(
            "control", [s for s in self.row.servers if s.server_id % 2 == 1]
        )
        return experiment, control

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------
    def build_rate_profile(self, spec: WorkloadSpec, horizon_seconds: float) -> RateProfile:
        """Deterministic rate profile for ``spec`` over the horizon."""
        return build_rate_profile(
            len(self.row.servers),
            self.cores,
            spec,
            horizon_seconds,
            self._modulation_seed,
            demand=self.demand_distribution,
        )

    def add_batch_workload(
        self,
        spec: WorkloadSpec,
        horizon_seconds: float,
        product: str = "batch",
        profile: Optional[RateProfile] = None,
        tenant: Optional[str] = None,
    ) -> BatchWorkloadGenerator:
        """Attach (but do not start) a batch workload generator.

        ``profile`` overrides the spec-derived rate profile -- the seam
        the fault injector uses to layer demand surges over the standard
        workload without disturbing its RNG stream. ``tenant`` stamps
        every generated job with an owning tenant name (multi-tenant
        runs attach one generator per tenant, all sharing the testbed's
        single workload RNG so the merged arrival stream stays a
        deterministic function of the seed).
        """
        generator = BatchWorkloadGenerator(
            self.engine,
            self.scheduler,
            profile
            if profile is not None
            else self.build_rate_profile(spec, horizon_seconds),
            rng=self._workload_rng,
            duration=self.duration_distribution,
            demand=self.demand_distribution,
            product=product,
            job_id_offset=len(self.generators) * 10_000_000,
            tenant=tenant,
        )
        self.generators.append(generator)
        return generator

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def start_services(self, until: float) -> None:
        """Start monitor and workload generators up to ``until``."""
        self.monitor.start(until)
        for generator in self.generators:
            generator.start(until)

    def run(self, until: float) -> None:
        self.engine.run(until=until)

    def warm_up(
        self, spec: WorkloadSpec, seconds: float = 3600.0, horizon_seconds: float = 0.0
    ) -> None:
        """Pre-fill the cluster so measurements start in steady state.

        Runs the workload without monitoring for ``seconds``; the paper's
        production cluster is never empty, so experiments should not start
        from an idle fleet.
        """
        horizon = max(horizon_seconds, seconds)
        generator = self.add_batch_workload(spec, horizon)
        generator.start(until=self.engine.now + seconds)
        self.engine.run(until=self.engine.now + seconds)


__all__ = [
    "Testbed",
    "WorkloadSpec",
    "ThroughputTracker",
    "ThroughputRecord",
    "build_rate_profile",
]
