"""Heap-based discrete-event simulation engine.

The engine owns simulated time and a priority queue of pending events. An
event is an arbitrary callback scheduled at an absolute simulated time with
an :class:`~repro.sim.events.EventPriority` tie-breaker; among events with
identical ``(time, priority)`` the insertion order decides, which makes runs
deterministic for a fixed seed.

Time is measured in **seconds** as a float. One simulated minute (the
paper's monitoring and control interval) is 60.0.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.sim.events import EventPriority
from repro.telemetry import Telemetry

Callback = Callable[..., None]


class _SimClock:
    """Picklable sim-clock binding handed to the tracer.

    A named class (not a lambda) so a live engine -- and everything that
    holds a reference to its clock -- can cross a pickle boundary for
    durable snapshots (:mod:`repro.durability`).
    """

    __slots__ = ("engine",)

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine

    def __call__(self) -> float:
        return self.engine._now


class _PeriodicTask:
    """Self-rescheduling callable behind :meth:`Engine.schedule_periodic`.

    Replaces the historical closure with a picklable object: the heap
    entry it lives in must survive a snapshot/restore round trip
    byte-identically. Behaviour is unchanged -- the callback fires, then
    the next occurrence is scheduled one interval after *now* while it
    stays strictly before ``until``.
    """

    __slots__ = ("engine", "interval", "priority", "callback", "until")

    def __init__(
        self,
        engine: "Engine",
        interval: float,
        priority: EventPriority,
        callback: Callback,
        until: Optional[float],
    ) -> None:
        self.engine = engine
        self.interval = interval
        self.priority = priority
        self.callback = callback
        self.until = until

    def __call__(self) -> None:
        self.callback()
        next_time = self.engine._now + self.interval
        if self.until is None or next_time < self.until:
            self.engine.schedule(next_time, self.priority, self)


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the entry stays in the heap but is skipped when it
    surfaces. This is the standard idiom for binary-heap schedulers and is
    what lets job-completion events be invalidated cheaply when DVFS capping
    changes a server's execution speed.
    """

    __slots__ = ("time", "cancelled")

    def __init__(self, time: float) -> None:
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is popped."""
        self.cancelled = True


class Engine:
    """Discrete-event simulation loop.

    Example
    -------
    >>> engine = Engine()
    >>> seen = []
    >>> _ = engine.schedule(5.0, EventPriority.GENERIC, seen.append, "late")
    >>> _ = engine.schedule(1.0, EventPriority.GENERIC, seen.append, "early")
    >>> engine.run()
    >>> seen
    ['early', 'late']
    >>> engine.now
    5.0
    """

    def __init__(
        self, start_time: float = 0.0, telemetry: Optional[Telemetry] = None
    ) -> None:
        self._now = float(start_time)
        self._heap: list = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._running = False
        # The engine drives the run, so it owns the sim-clock binding;
        # instruments resolve here once and the run loop only touches
        # pre-resolved handles (no-ops when telemetry is disabled).
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.telemetry.bind_sim_clock(_SimClock(self))
        self._events_counter = self.telemetry.counter(
            "repro_engine_events_total", "Event callbacks executed by the engine"
        )
        self._queue_depth_gauge = self.telemetry.gauge(
            "repro_engine_queue_depth",
            "Pending heap entries (including lazily-cancelled ones)",
        )
        self._cancelled_counter = self.telemetry.counter(
            "repro_engine_cancelled_events_total",
            "Heap entries skipped because their handle was cancelled",
        )

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    def schedule(
        self,
        time: float,
        priority: EventPriority,
        callback: Callback,
        *args: Any,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Scheduling in the past raises ``ValueError`` -- a past-dated event is
        always a logic bug in the caller, and silently reordering it would
        corrupt causality.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at t={time:.3f} before current "
                f"time t={self._now:.3f}"
            )
        handle = EventHandle(time)
        heapq.heappush(
            self._heap,
            (time, int(priority), next(self._sequence), handle, callback, args),
        )
        return handle

    def schedule_in(
        self,
        delay: float,
        priority: EventPriority,
        callback: Callback,
        *args: Any,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, priority, callback, *args)

    def schedule_periodic(
        self,
        interval: float,
        priority: EventPriority,
        callback: Callback,
        *,
        first_at: Optional[float] = None,
        until: Optional[float] = None,
    ) -> None:
        """Run ``callback()`` every ``interval`` seconds.

        The callback receives no arguments. ``first_at`` defaults to one
        interval from now; ``until`` (exclusive) stops the chain. The chain
        also stops naturally when the run horizon passes.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        start = self._now + interval if first_at is None else first_at
        task = _PeriodicTask(self, interval, priority, callback, until)
        if until is None or start < until:
            self.schedule(start, priority, task)

    def run(self, until: Optional[float] = None) -> None:
        """Process events in order until the heap empties or ``until``.

        When ``until`` is given, all events strictly before it are processed
        and the clock is left exactly at ``until`` (events at ``until``
        itself remain pending, so consecutive ``run`` calls compose).
        """
        if self._running:
            raise RuntimeError("engine is already running (re-entrant run())")
        self._running = True
        started = self._events_processed
        try:
            with self.telemetry.span("engine.run") as span:
                while self._heap:
                    time, _priority, _seq, handle, callback, args = self._heap[0]
                    if until is not None and time >= until:
                        break
                    heapq.heappop(self._heap)
                    if handle.cancelled:
                        self._cancelled_counter.inc()
                        continue
                    self._now = time
                    callback(*args)
                    self._events_processed += 1
                    self._events_counter.inc()
                    self._queue_depth_gauge.set(len(self._heap))
                if until is not None and until > self._now:
                    self._now = until
                span.set_attribute(
                    "events_processed", self._events_processed - started
                )
        finally:
            self._running = False

    def peek_next_time(self) -> Optional[float]:
        """Return the timestamp of the next live event, or ``None``."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def pending_count(self) -> int:
        """Number of heap entries, including lazily-cancelled ones."""
        return len(self._heap)


__all__ = ["Engine", "EventHandle", "Callback"]
