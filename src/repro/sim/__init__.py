"""Discrete-event simulation engine and controlled-experiment harness."""

from repro.sim.engine import Engine
from repro.sim.events import EventPriority

#: Campaign-layer names resolved lazily: ``repro.sim.campaign`` pulls in
#: the whole experiment stack (cluster, controller, scheduler), which
#: itself imports ``repro.sim.engine`` -- an eager import here would be
#: circular and would make ``import repro.sim`` heavyweight.
_LAZY = {
    "Campaign": "repro.sim.campaign",
    "CampaignCell": "repro.sim.campaign",
    "CampaignResult": "repro.sim.campaign",
    "CampaignRow": "repro.sim.campaign",
    "CampaignRunConfig": "repro.sim.campaign",
    "run_cell": "repro.sim.campaign",
    "run_cells_parallel": "repro.sim.parallel",
}

__all__ = ["Engine", "EventPriority", *sorted(_LAZY)]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
