"""Discrete-event simulation engine and controlled-experiment harness."""

from repro.sim.engine import Engine
from repro.sim.events import EventPriority

__all__ = ["Engine", "EventPriority"]
