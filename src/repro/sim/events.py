"""Event types and deterministic ordering for the simulation engine.

Events scheduled for the same simulated instant are executed in a fixed,
documented order so that simulations are bit-for-bit reproducible and so
that the causality the paper assumes holds: job completions release
resources *before* new arrivals try to claim them, the power monitor samples
*before* the controller reads it, and the controller acts *before* the
reactive capping safety-net re-evaluates the row.
"""

from __future__ import annotations

import enum


class EventPriority(enum.IntEnum):
    """Tie-break order for events scheduled at the same simulated time.

    Lower values run first. The ordering encodes the measurement and control
    pipeline of the paper: state changes (completions, then arrivals and
    placements) settle first, the monitor then observes the settled state,
    the Ampere controller consumes the fresh observation, and the hardware
    capping safety-net runs last so it only engages when the statistical
    controller has failed to keep power under the budget.
    """

    JOB_COMPLETION = 0
    JOB_ARRIVAL = 10
    SCHEDULE_PASS = 20
    INTERACTIVE = 30
    #: control-plane fault transitions (blackout begin/end, controller
    #: crash/restart) take effect *before* the monitor and controller run
    #: at the same instant, so a fault scheduled for minute t already
    #: shapes minute t's observation and control action.
    FAULT = 35
    MONITOR_SAMPLE = 40
    #: the fleet coordinator re-divides the facility budget *between* the
    #: monitor's observation and the per-row controllers' reactions, so a
    #: budget moved at minute t already shapes minute t's control action.
    COORDINATOR_TICK = 45
    CONTROLLER_TICK = 50
    #: the safety supervisor arbitrates between the statistical controller
    #: (which has already acted this instant) and the reactive layers below
    #: it, so it runs between them.
    SAFETY_TICK = 55
    CAPPING_TICK = 60
    #: breaker physics integrate the *settled* electrical state -- after
    #: every control and capping action at this instant has landed.
    BREAKER_TICK = 65
    #: the state auditor verifies invariants over the *fully settled*
    #: instant -- after controllers, capping and breakers have all acted
    #: -- so a violation it reports is a real inconsistency, not a
    #: mid-transaction intermediate. The auditor consumes no RNG and
    #: mutates nothing; attaching it never perturbs trajectories.
    AUDIT_TICK = 68
    EXPERIMENT_HOOK = 70
    GENERIC = 100


__all__ = ["EventPriority"]
