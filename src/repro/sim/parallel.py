"""Process-pool campaign execution with deterministic fan-out.

The paper's Table 3 is a 20-day grid of independent experiment "days";
:class:`~repro.sim.campaign.Campaign` reproduces the grid but the serial
path pays for it one cell at a time. This module fans cells out across a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping the result
*indistinguishable* from the serial run:

- **Determinism.** The unit of work is the pure function
  :func:`repro.sim.campaign.run_cell`, whose only randomness is derived
  from the cell's own seed. Workers therefore compute bit-identical rows
  no matter how cells are distributed, and results are re-sorted into
  cell order before aggregation, so worker count and completion order are
  unobservable in the output.
- **Picklable boundary.** Workers receive ``(cell, config)`` dataclasses
  and return lightweight :class:`~repro.sim.campaign.CampaignRow`
  records -- never live engines, monitors or numpy-heavy results.
- **Fault isolation.** A cell that raises inside a worker is retried
  (bounded, with optional exponential backoff -- transient failures:
  OOM kills, flaky imports) and, when it keeps failing, *quarantined*
  as a failed row carrying the exception message. One bad day must not
  abort a 20-day sweep. ``cell_timeout`` adds straggler re-dispatch: a
  chunk whose worker goes silent gets one speculative duplicate, and
  the first result per cell wins (duplicates are byte-identical because
  cells are pure functions of their seed). If the pool itself breaks
  (e.g. a worker process dies hard), the affected cells fall back to
  in-process execution rather than losing the campaign.

Every future distributed feature (sharded datacenters, multi-row
steering sweeps) should reuse this discipline: pure picklable work
units, lightweight row records back, deterministic re-assembly.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.sim.campaign import (
    CampaignCell,
    CampaignRow,
    CampaignRunConfig,
    run_cell,
)
from repro.cluster.state import resolve_backend

logger = logging.getLogger(__name__)

#: ``runner(cell, config) -> CampaignRow``; must be a picklable
#: module-level callable (workers import it by reference).
CellRunner = Callable[[CampaignCell, CampaignRunConfig], CampaignRow]

#: ``on_row(cell, row)`` progress hook, fired in completion order.
RowCallback = Callable[[CampaignCell, CampaignRow], None]

#: (cell index, row or None, error message or None)
_ChunkItem = Tuple[int, Optional[CampaignRow], Optional[str]]


def default_worker_count(n_cells: int) -> int:
    """Pool size when the caller does not pin one: every core, but never
    more processes than cells."""
    return max(1, min(os.cpu_count() or 1, n_cells))


def _execute_chunk(
    runner: CellRunner,
    config: CampaignRunConfig,
    indexed_cells: Sequence[Tuple[int, CampaignCell]],
) -> List[_ChunkItem]:
    """Worker-side loop: run each cell, trapping per-cell exceptions.

    Trapping inside the worker keeps one bad cell from poisoning its
    chunk-mates and gives the parent a per-cell error message instead of
    an opaque broken future.
    """
    out: List[_ChunkItem] = []
    for index, cell in indexed_cells:
        try:
            out.append((index, runner(cell, config), None))
        except Exception as exc:  # noqa: BLE001 - isolate arbitrary cell failures
            out.append((index, None, f"{type(exc).__name__}: {exc}"))
    return out


def _chunked(
    items: Sequence[Tuple[int, CampaignCell]], chunksize: int
) -> List[List[Tuple[int, CampaignCell]]]:
    return [list(items[i : i + chunksize]) for i in range(0, len(items), chunksize)]


#: Cap on exponential retry backoff so a high retry count cannot stall
#: the dispatch loop for minutes per cell.
_MAX_BACKOFF_SECONDS = 60.0


def run_cells_parallel(
    cells: Sequence[CampaignCell],
    config: CampaignRunConfig,
    max_workers: Optional[int] = None,
    on_row: Optional[RowCallback] = None,
    chunksize: int = 1,
    cell_runner: CellRunner = run_cell,
    retries: int = 1,
    retry_backoff: float = 0.0,
    cell_timeout: Optional[float] = None,
) -> List[CampaignRow]:
    """Run every cell on a process pool; return rows in *cell order*.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to :func:`default_worker_count`.
    on_row:
        Progress callback fired as results arrive (completion order --
        the only place worker scheduling is observable).
    chunksize:
        Cells submitted per task. 1 maximizes load balance; larger
        values amortize submission overhead for very short cells.
    cell_runner:
        The work function; override only with another picklable
        module-level function (tests use this for fault injection).
    retries:
        How many times a failing cell is resubmitted before being
        quarantined as a failed row.
    retry_backoff:
        Base delay in seconds before a retry resubmission; doubles per
        attempt (capped at 60s). 0 retries immediately.
    cell_timeout:
        Seconds a dispatched chunk may run before a speculative
        duplicate is submitted (straggler re-dispatch: lost workers,
        stuck cells). The first result per cell wins -- :func:`run_cell`
        is a pure function of the cell seed, so duplicates are
        byte-identical and the race is benign. At most one speculative
        copy per chunk; ``None`` disables.
    """
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if retry_backoff < 0:
        raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
    if cell_timeout is not None and cell_timeout <= 0:
        raise ValueError(f"cell_timeout must be > 0, got {cell_timeout}")
    cells = list(cells)
    if not cells:
        return []
    workers = (
        default_worker_count(len(cells)) if max_workers is None else int(max_workers)
    )
    if workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")

    # Pin the engine backend *now*, in the parent: workers and any
    # retry/re-dispatch attempts then agree on it even if the
    # environment changes mid-campaign, and rows match what a serial
    # run in this process would produce.
    config = replace(config, engine_backend=resolve_backend(config.engine_backend))

    rows: Dict[int, CampaignRow] = {}
    attempts: Dict[int, int] = {}
    indexed = list(enumerate(cells))

    def record(index: int, row: CampaignRow) -> None:
        # First result wins: a straggler finishing after its speculative
        # duplicate (or vice versa) is dropped here.
        if index in rows:
            return
        rows[index] = row
        if on_row is not None:
            on_row(cells[index], row)

    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        pending: Dict[Future, List[Tuple[int, CampaignCell]]] = {}
        dispatched_at: Dict[Future, float] = {}

        def submit(chunk: List[Tuple[int, CampaignCell]]) -> None:
            future = pool.submit(_execute_chunk, cell_runner, config, chunk)
            pending[future] = chunk
            dispatched_at[future] = time.monotonic()

        for chunk in _chunked(indexed, chunksize):
            submit(chunk)
        #: index-tuples of chunks that already have a speculative copy
        speculated: Set[Tuple[int, ...]] = set()
        pool_broken = False
        while pending and len(rows) < len(cells):
            done, _ = wait(
                pending, timeout=cell_timeout, return_when=FIRST_COMPLETED
            )
            if cell_timeout is not None and not pool_broken:
                now = time.monotonic()
                for future, chunk in list(pending.items()):
                    if future in done or now - dispatched_at[future] < cell_timeout:
                        continue
                    key = tuple(index for index, _ in chunk)
                    if key in speculated:
                        continue
                    remaining = [
                        (index, cell) for index, cell in chunk if index not in rows
                    ]
                    if not remaining:
                        continue
                    speculated.add(key)
                    logger.warning(
                        "chunk %s exceeded cell_timeout=%.1fs; dispatching "
                        "speculative duplicate for %d unfinished cell(s)",
                        key,
                        cell_timeout,
                        len(remaining),
                    )
                    submit(remaining)
            for future in done:
                chunk = pending.pop(future)
                dispatched_at.pop(future, None)
                try:
                    items: List[_ChunkItem] = future.result()
                except Exception:  # pool-level failure (crashed worker, ...)
                    # The pool may be unusable now; run the chunk in-process
                    # so the campaign still completes deterministically.
                    pool_broken = True
                    logger.warning(
                        "process pool broke; running %d cell(s) in-process",
                        len(chunk),
                    )
                    items = _execute_chunk(cell_runner, config, chunk)
                for index, row, error in items:
                    if index in rows:
                        continue  # a duplicate already delivered this cell
                    if error is None:
                        record(index, row)
                        continue
                    attempts[index] = attempts.get(index, 0) + 1
                    if attempts[index] <= retries and not pool_broken:
                        delay = min(
                            retry_backoff * (2 ** (attempts[index] - 1)),
                            _MAX_BACKOFF_SECONDS,
                        )
                        logger.info(
                            "cell %s failed (%s); retry %d/%d%s",
                            cells[index].label(),
                            error,
                            attempts[index],
                            retries,
                            f" after {delay:.1f}s" if delay > 0 else "",
                        )
                        if delay > 0:
                            time.sleep(delay)
                        submit([(index, cells[index])])
                    else:
                        logger.warning(
                            "cell %s quarantined after %d attempt(s): %s",
                            cells[index].label(),
                            attempts[index],
                            error,
                        )
                        record(index, CampaignRow.failed(cells[index], error))
    finally:
        # A straggler whose speculative duplicate already delivered every
        # cell may still be running; don't block the campaign on it.
        pool.shutdown(wait=not pending, cancel_futures=bool(pending))

    # Completion order is nondeterministic; cell order is the contract.
    return [rows[i] for i in range(len(cells))]


__all__ = [
    "CellRunner",
    "RowCallback",
    "default_worker_count",
    "run_cells_parallel",
]
