"""Process-pool campaign execution with deterministic fan-out.

The paper's Table 3 is a 20-day grid of independent experiment "days";
:class:`~repro.sim.campaign.Campaign` reproduces the grid but the serial
path pays for it one cell at a time. This module fans cells out across a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping the result
*indistinguishable* from the serial run:

- **Determinism.** The unit of work is the pure function
  :func:`repro.sim.campaign.run_cell`, whose only randomness is derived
  from the cell's own seed. Workers therefore compute bit-identical rows
  no matter how cells are distributed, and results are re-sorted into
  cell order before aggregation, so worker count and completion order are
  unobservable in the output.
- **Picklable boundary.** Workers receive ``(cell, config)`` dataclasses
  and return lightweight :class:`~repro.sim.campaign.CampaignRow`
  records -- never live engines, monitors or numpy-heavy results.
- **Fault isolation.** A cell that raises inside a worker is retried
  once (transient failures: OOM kills, flaky imports) and, if it fails
  again, recorded as a *failed row* carrying the exception message. One
  bad day must not abort a 20-day sweep. If the pool itself breaks
  (e.g. a worker process dies hard), the affected cells fall back to
  in-process execution rather than losing the campaign.

Every future distributed feature (sharded datacenters, multi-row
steering sweeps) should reuse this discipline: pure picklable work
units, lightweight row records back, deterministic re-assembly.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.campaign import (
    CampaignCell,
    CampaignRow,
    CampaignRunConfig,
    run_cell,
)

logger = logging.getLogger(__name__)

#: ``runner(cell, config) -> CampaignRow``; must be a picklable
#: module-level callable (workers import it by reference).
CellRunner = Callable[[CampaignCell, CampaignRunConfig], CampaignRow]

#: ``on_row(cell, row)`` progress hook, fired in completion order.
RowCallback = Callable[[CampaignCell, CampaignRow], None]

#: (cell index, row or None, error message or None)
_ChunkItem = Tuple[int, Optional[CampaignRow], Optional[str]]


def default_worker_count(n_cells: int) -> int:
    """Pool size when the caller does not pin one: every core, but never
    more processes than cells."""
    return max(1, min(os.cpu_count() or 1, n_cells))


def _execute_chunk(
    runner: CellRunner,
    config: CampaignRunConfig,
    indexed_cells: Sequence[Tuple[int, CampaignCell]],
) -> List[_ChunkItem]:
    """Worker-side loop: run each cell, trapping per-cell exceptions.

    Trapping inside the worker keeps one bad cell from poisoning its
    chunk-mates and gives the parent a per-cell error message instead of
    an opaque broken future.
    """
    out: List[_ChunkItem] = []
    for index, cell in indexed_cells:
        try:
            out.append((index, runner(cell, config), None))
        except Exception as exc:  # noqa: BLE001 - isolate arbitrary cell failures
            out.append((index, None, f"{type(exc).__name__}: {exc}"))
    return out


def _chunked(
    items: Sequence[Tuple[int, CampaignCell]], chunksize: int
) -> List[List[Tuple[int, CampaignCell]]]:
    return [list(items[i : i + chunksize]) for i in range(0, len(items), chunksize)]


def run_cells_parallel(
    cells: Sequence[CampaignCell],
    config: CampaignRunConfig,
    max_workers: Optional[int] = None,
    on_row: Optional[RowCallback] = None,
    chunksize: int = 1,
    cell_runner: CellRunner = run_cell,
    retries: int = 1,
) -> List[CampaignRow]:
    """Run every cell on a process pool; return rows in *cell order*.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to :func:`default_worker_count`.
    on_row:
        Progress callback fired as results arrive (completion order --
        the only place worker scheduling is observable).
    chunksize:
        Cells submitted per task. 1 maximizes load balance; larger
        values amortize submission overhead for very short cells.
    cell_runner:
        The work function; override only with another picklable
        module-level function (tests use this for fault injection).
    retries:
        How many times a failing cell is resubmitted before being
        recorded as a failed row.
    """
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    cells = list(cells)
    if not cells:
        return []
    workers = (
        default_worker_count(len(cells)) if max_workers is None else int(max_workers)
    )
    if workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")

    rows: Dict[int, CampaignRow] = {}
    attempts: Dict[int, int] = {}
    indexed = list(enumerate(cells))

    def record(index: int, row: CampaignRow) -> None:
        rows[index] = row
        if on_row is not None:
            on_row(cells[index], row)

    with ProcessPoolExecutor(max_workers=workers) as pool:
        pending: Dict[Future, List[Tuple[int, CampaignCell]]] = {
            pool.submit(_execute_chunk, cell_runner, config, chunk): chunk
            for chunk in _chunked(indexed, chunksize)
        }
        pool_broken = False
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                chunk = pending.pop(future)
                try:
                    items: List[_ChunkItem] = future.result()
                except Exception:  # pool-level failure (crashed worker, ...)
                    # The pool may be unusable now; run the chunk in-process
                    # so the campaign still completes deterministically.
                    pool_broken = True
                    logger.warning(
                        "process pool broke; running %d cell(s) in-process",
                        len(chunk),
                    )
                    items = _execute_chunk(cell_runner, config, chunk)
                for index, row, error in items:
                    if error is None:
                        record(index, row)
                        continue
                    attempts[index] = attempts.get(index, 0) + 1
                    if attempts[index] <= retries and not pool_broken:
                        logger.info(
                            "cell %s failed (%s); retry %d/%d",
                            cells[index].label(),
                            error,
                            attempts[index],
                            retries,
                        )
                        retry_chunk = [(index, cells[index])]
                        pending[
                            pool.submit(
                                _execute_chunk, cell_runner, config, retry_chunk
                            )
                        ] = retry_chunk
                    else:
                        logger.warning(
                            "cell %s failed permanently: %s",
                            cells[index].label(),
                            error,
                        )
                        record(index, CampaignRow.failed(cells[index], error))

    # Completion order is nondeterministic; cell order is the contract.
    return [rows[i] for i in range(len(cells))]


__all__ = [
    "CellRunner",
    "RowCallback",
    "default_worker_count",
    "run_cells_parallel",
]
