"""Server failure injection.

At data-center scale, machines fail constantly; a power controller that
assumes a static fleet breaks in production. The injector draws failures
as a Poisson process over the fleet (exponential per-server lifetimes)
and repairs each machine after an exponential repair time, exercising:

- the scheduler's kill-and-resubmit path,
- the resource tracker's failed mask,
- the controller's stateless tolerance of servers that vanish from the
  power snapshot (a failed server reads 0 W).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.scheduler.omega import OmegaScheduler
from repro.sim.engine import Engine
from repro.sim.events import EventPriority

SECONDS_PER_HOUR = 3600.0


@dataclass
class FailureLogEntry:
    server_id: int
    failed_at: float
    repaired_at: Optional[float] = None
    jobs_killed: int = 0


@dataclass
class FailureStats:
    failures: int = 0
    repairs: int = 0
    jobs_killed: int = 0
    log: List[FailureLogEntry] = field(default_factory=list)


class ServerFailureInjector:
    """Random server crash/repair process.

    Parameters
    ----------
    engine / scheduler:
        Simulation engine and the scheduler owning the fleet.
    rng:
        Explicit random source.
    mtbf_hours:
        Mean time between failures *per server*. Fleet failure rate is
        ``n_servers / mtbf``.
    mttr_minutes:
        Mean time to repair one machine.
    """

    def __init__(
        self,
        engine: Engine,
        scheduler: OmegaScheduler,
        rng: np.random.Generator,
        mtbf_hours: float = 1000.0,
        mttr_minutes: float = 60.0,
    ) -> None:
        if mtbf_hours <= 0 or mttr_minutes <= 0:
            raise ValueError("mtbf_hours and mttr_minutes must be positive")
        self.engine = engine
        self.scheduler = scheduler
        self.rng = rng
        self.mtbf_seconds = mtbf_hours * SECONDS_PER_HOUR
        self.mttr_seconds = mttr_minutes * 60.0
        self.stats = FailureStats()
        self._until: Optional[float] = None
        self._pending = None  # handle of the next scheduled failure

    @property
    def fleet_failure_rate(self) -> float:
        """Failures per second across the whole fleet."""
        return len(self.scheduler.tracker) / self.mtbf_seconds

    def start(self, until: float) -> None:
        self._until = until
        self._schedule_next_failure()

    def set_mtbf_hours(self, mtbf_hours: float) -> None:
        """Change the failure rate mid-run (a crash storm begins/ends).

        The pending failure was drawn at the old rate, so it is cancelled
        and a fresh gap drawn at the new one -- the memoryless property
        makes the resample statistically clean, and drawing from the same
        RNG stream keeps the run deterministic.
        """
        if mtbf_hours <= 0:
            raise ValueError(f"mtbf_hours must be positive, got {mtbf_hours}")
        self.mtbf_seconds = mtbf_hours * SECONDS_PER_HOUR
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        if self._until is not None:
            self._schedule_next_failure()

    # ------------------------------------------------------------------
    def _schedule_next_failure(self) -> None:
        gap = self.rng.exponential(1.0 / self.fleet_failure_rate)
        t = self.engine.now + gap
        if self._until is not None and t >= self._until:
            self._pending = None
            return
        self._pending = self.engine.schedule(
            t, EventPriority.GENERIC, self._fail_one
        )

    def _fail_one(self) -> None:
        alive = [s for s in self.scheduler.tracker.servers if not s.failed]
        if alive:
            victim = alive[self.rng.integers(len(alive))]
            killed = self.scheduler.fail_server(victim.server_id)
            entry = FailureLogEntry(
                server_id=victim.server_id,
                failed_at=self.engine.now,
                jobs_killed=killed,
            )
            self.stats.failures += 1
            self.stats.jobs_killed += killed
            self.stats.log.append(entry)
            repair_at = self.engine.now + self.rng.exponential(self.mttr_seconds)
            self.engine.schedule(
                repair_at, EventPriority.GENERIC, self._repair, victim.server_id, entry
            )
        self._schedule_next_failure()

    def _repair(self, server_id: int, entry: FailureLogEntry) -> None:
        self.scheduler.repair_server(server_id)
        entry.repaired_at = self.engine.now
        self.stats.repairs += 1


__all__ = ["ServerFailureInjector", "FailureStats", "FailureLogEntry"]
