"""The controlled A/B experiment of Section 4.1.2.

Servers are split into an *experiment* group and a *control* group by the
parity of their ids, both fed by the same scheduler, so the groups see
statistically identical workload. Over-provisioning is emulated by scaling
the power budget down (Eq. 16): with budget ``P'_M = rated/(1 + r_O)`` the
group behaves exactly as if ``r_O`` extra servers had been packed into a
fixed budget. Ampere controls only the experiment group; any divergence
between the groups is therefore the effect of the control.

Two scaling modes match the paper's two uses of the harness:

- ``scale_control_budget=True`` (Section 4.2): both groups' budgets are
  scaled, so violation counts can be compared like-for-like.
- ``scale_control_budget=False`` (Section 4.4): only the experiment
  group's budget is scaled; the control group represents conservative
  rated-power provisioning and the throughput ratio ``r_T`` feeds the
  G_TPW estimate of Eq. 18.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.analysis.metrics import (
    FacilitySummary,
    GroupRunSummary,
    gain_in_tpw,
    summarize_facility_series,
    summarize_power_series,
    throughput_ratio,
)
from repro.cluster.breaker import BreakerStats, RowBreaker
from repro.cluster.capping import CappingEngine, CappingStats
from repro.cluster.group import ServerGroup
from repro.core.config import AmpereConfig
from repro.core.controller import AmpereController, ControllerHealth
from repro.core.demand import ConstantDemandEstimator, DemandEstimator
from repro.core.freeze_model import DEFAULT_K_R, FreezeEffectModel
from repro.core.safety import SafetyConfig, SafetyStats, SafetySupervisor
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.scenario import FaultScenario
from repro.scheduler.base import InstrumentedScheduler, SchedulerInterface
from repro.scheduler.policies import PlacementPolicy
from repro.sim.audit import AuditStats, AuditorConfig, StateAuditor
from repro.sim.eventlog import ControlEventLog
from repro.sim.testbed import Testbed, WorkloadSpec
from repro.telemetry import MetricsRegistry, Telemetry
from repro.tenancy import (
    FairShareFreezePolicy,
    TenancyAccountant,
    TenancyConfig,
    TenancyStats,
    assign_to_tenants,
)
from repro.workload.generator import ScaledRateProfile

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one controlled experiment run."""

    n_servers: int = 400
    duration_hours: float = 24.0
    warmup_hours: float = 1.0
    over_provision_ratio: float = 0.25
    scale_control_budget: bool = True
    workload: WorkloadSpec = WorkloadSpec()
    ampere_enabled: bool = True
    capping_enabled: bool = False
    ampere: AmpereConfig = AmpereConfig()
    k_r: float = DEFAULT_K_R
    capping_interval_seconds: float = 5.0
    monitor_noise_sigma: float = 0.01
    placement_policy: Optional[PlacementPolicy] = None
    seed: int = 0
    #: control-plane fault schedule (None = the perfect control plane)
    faults: Optional[FaultScenario] = None
    #: breaker physics + emergency ladder (None = no breaker model, the
    #: pre-PR-4 behaviour where overload is only counted, never punished)
    safety: Optional[SafetyConfig] = None
    #: collect metrics and spans for this run (off by default; the
    #: disabled path is a shared no-op and never perturbs trajectories)
    telemetry_enabled: bool = False
    #: hot-loop engine backend: "object", "vectorized", or None to defer
    #: to the process default / REPRO_ENGINE_BACKEND environment variable.
    #: Both backends produce byte-identical trajectories (see
    #: tests/test_backend_equivalence.py); the switch only changes speed.
    engine_backend: Optional[str] = None
    #: online state-invariant auditor (None = off). The auditor observes
    #: only -- enabling it at any sampling rate leaves trajectories
    #: byte-identical (see tests/test_auditor.py).
    auditor: Optional[AuditorConfig] = None
    #: multi-tenant mix and freeze-fairness policy (None = untenanted;
    #: the legacy single-tenant path stays bit-identical, see
    #: tests/test_tenancy.py)
    tenancy: Optional[TenancyConfig] = None

    def __post_init__(self) -> None:
        if self.duration_hours <= 0:
            raise ValueError(f"duration_hours must be positive, got {self.duration_hours}")
        if self.warmup_hours < 0:
            raise ValueError(f"warmup_hours must be non-negative, got {self.warmup_hours}")
        if self.over_provision_ratio < 0:
            raise ValueError(
                f"over_provision_ratio must be non-negative, got {self.over_provision_ratio}"
            )

    @property
    def warmup_seconds(self) -> float:
        return self.warmup_hours * SECONDS_PER_HOUR

    @property
    def end_seconds(self) -> float:
        return (self.warmup_hours + self.duration_hours) * SECONDS_PER_HOUR


@dataclass
class GroupOutcome:
    """Measured behaviour of one group during the measurement window.

    Plain dataclass of scalars and numpy arrays, so it pickles and can
    cross a process boundary; :meth:`without_series` drops the bulky
    arrays when only the summary needs to travel (the campaign worker
    boundary ships rows, not series).
    """

    summary: GroupRunSummary
    power_times: np.ndarray
    normalized_power: np.ndarray
    throughput: int
    u_times: np.ndarray = field(default_factory=lambda: np.empty(0))
    u_values: np.ndarray = field(default_factory=lambda: np.empty(0))
    #: scheduling-queue wait of jobs accepted by this group (seconds);
    #: freezing shows up here, never in running jobs
    mean_wait_seconds: float = 0.0
    p99_wait_seconds: float = 0.0

    def without_series(self) -> "GroupOutcome":
        """A copy with the per-sample series dropped (cheap to pickle)."""
        return replace(
            self,
            power_times=np.empty(0),
            normalized_power=np.empty(0),
            u_times=np.empty(0),
            u_values=np.empty(0),
        )


@dataclass
class ExperimentResult:
    """Everything the evaluation needs from one run.

    Both the config and the result are built purely from dataclasses,
    scalars and numpy arrays, so they round-trip through ``pickle`` --
    the contract the parallel campaign runner relies on. Workers should
    still prefer :meth:`without_series` (or campaign rows) to keep the
    inter-process payload small.
    """

    config: ExperimentConfig
    experiment: GroupOutcome
    control: GroupOutcome
    r_t: float
    g_tpw: float
    capping_stats: Optional[CappingStats] = None
    #: what the fault injector actually did (None for fault-free runs)
    fault_stats: Optional[FaultStats] = None
    #: breaker activity (None when no safety config was set)
    breaker_stats: Optional[BreakerStats] = None
    #: what the emergency ladder did (None when the supervisor was off)
    safety_stats: Optional[SafetyStats] = None
    #: the controller's defensive-action telemetry (None when disabled)
    controller_health: Optional[ControllerHealth] = None
    #: metrics registry of the run (None unless ``telemetry_enabled``);
    #: holds only sim-deterministic series, so it pickles and merges
    telemetry: Optional[MetricsRegistry] = None
    #: facility-level power vs the summed group budgets (additive field;
    #: None only for results deserialized from older payloads)
    facility: Optional[FacilitySummary] = None
    #: what the online auditor saw (None when the auditor was off)
    audit_stats: Optional[AuditStats] = None
    #: per-tenant fairness accounting (None for untenanted runs)
    tenancy: Optional[TenancyStats] = None

    def violations(self) -> dict:
        return {
            "experiment": self.experiment.summary.violations,
            "control": self.control.summary.violations,
        }

    def without_series(self) -> "ExperimentResult":
        """A lightweight copy for process boundaries: summaries and
        scalar metrics survive, the per-sample series are dropped."""
        return replace(
            self,
            experiment=self.experiment.without_series(),
            control=self.control.without_series(),
        )


class ControlledExperiment:
    """Build, run and summarize one controlled experiment."""

    def __init__(
        self,
        config: ExperimentConfig = ExperimentConfig(),
        demand_estimator: Optional[DemandEstimator] = None,
    ) -> None:
        self.config = config
        self.telemetry = (
            Telemetry.create() if config.telemetry_enabled else Telemetry.disabled()
        )
        self.testbed = Testbed(
            n_servers=config.n_servers,
            seed=config.seed,
            monitor_noise_sigma=config.monitor_noise_sigma,
            placement_policy=config.placement_policy,
            telemetry=self.telemetry,
            engine_backend=config.engine_backend,
        )
        self.experiment_group, self.control_group = self.testbed.split_by_parity()
        self.experiment_group.set_over_provision_ratio(config.over_provision_ratio)
        if config.scale_control_budget:
            self.control_group.set_over_provision_ratio(config.over_provision_ratio)
        self.testbed.monitor.register_groups(
            [self.experiment_group, self.control_group]
        )
        self.testbed.throughput.track(self.experiment_group)
        self.testbed.throughput.track(self.control_group)

        # Multi-tenancy: tag servers with owning tenants (per group, so
        # each group's tenant mix matches the configured shares exactly
        # -- assigning across the parity split would alias the share
        # interleave against even/odd ids) and attach the accountant.
        # Pure bookkeeping: no RNG, no scheduled events.
        self.tenant_of: Dict[int, str] = {}
        self.accountant: Optional[TenancyAccountant] = None
        freeze_policy: Optional[FairShareFreezePolicy] = None
        if config.tenancy is not None:
            ordinal = {
                name: index + 1 for index, name in enumerate(config.tenancy.names)
            }
            for group in (self.experiment_group, self.control_group):
                servers = sorted(group.servers, key=lambda s: s.server_id)
                assigned = assign_to_tenants(
                    [s.server_id for s in servers], config.tenancy
                )
                for server in servers:
                    tenant = assigned[server.server_id]
                    self.tenant_of[server.server_id] = tenant
                    server.tenant_id = ordinal[tenant]
            self.accountant = TenancyAccountant(
                self.testbed.engine,
                config.tenancy,
                self.tenant_of,
                telemetry=self.telemetry,
            )
            self.testbed.scheduler.control_listeners.append(
                self.accountant.on_control_event
            )
            if config.tenancy.policy == "fair":
                freeze_policy = FairShareFreezePolicy(
                    self.tenant_of,
                    config.tenancy.weights(),
                    config.tenancy.names,
                )

        # The controller talks to the scheduler through the fault layer
        # when a scenario is configured; everything else (workload
        # submission, completion events) uses the real scheduler, since
        # the injected faults model the *control* path.
        self.injector: Optional[FaultInjector] = None
        controller_scheduler: SchedulerInterface = self.testbed.scheduler
        if config.faults is not None:
            self.injector = FaultInjector(self.testbed.engine, config.faults)
            controller_scheduler = self.injector.wrap_scheduler(
                self.testbed.scheduler
            )
            self.injector.attach_monitor(self.testbed.monitor)
            # Data-plane hazards (server failures) act on the real
            # scheduler: hardware does not fail "in transit".
            self.injector.attach_cluster(self.testbed.scheduler)
        # Instrumentation wraps the fault layer so the RPC metrics see
        # exactly what the controller experiences, including injected
        # failures. A no-op when telemetry is disabled.
        controller_scheduler = InstrumentedScheduler(
            controller_scheduler, self.telemetry
        )

        self.controller: Optional[AmpereController] = None
        if config.ampere_enabled:
            self.controller = AmpereController(
                self.testbed.engine,
                controller_scheduler,
                self.testbed.monitor,
                [self.experiment_group],
                config=config.ampere,
                freeze_model=FreezeEffectModel(config.k_r),
                demand_estimator=(
                    demand_estimator
                    if demand_estimator is not None
                    else ConstantDemandEstimator(config.ampere.default_e_t)
                ),
                telemetry=self.telemetry,
                freeze_policy=freeze_policy,
            )
        if self.injector is not None and self.controller is not None:
            self.injector.attach_controller(self.controller)
        self.capping: Optional[CappingEngine] = None
        if config.capping_enabled:
            self.capping = CappingEngine(
                self.experiment_group,
                self.testbed.engine,
                interval=config.capping_interval_seconds,
            )

        # The audit trail: control actions (freeze/fail/shed/...) plus
        # breaker trips, timestamped on the simulation clock. Listeners
        # consume no randomness, so attaching it never perturbs runs.
        self.event_log = ControlEventLog(
            self.testbed.engine, telemetry=self.telemetry
        )
        self.event_log.attach_scheduler(self.testbed.scheduler)
        if self.accountant is not None:
            self.event_log.attach_tenant_resolver(self.accountant.resolve)

        # Breaker physics + the emergency ladder protect the experiment
        # group only: it is the one whose scaled budget emulates the row
        # feed Ampere controls; the control group is the measurement
        # baseline and must stay consequence-free to remain comparable.
        self.breaker: Optional[RowBreaker] = None
        self.safety: Optional[SafetySupervisor] = None
        if config.safety is not None:
            self.breaker = RowBreaker(
                self.experiment_group,
                self.testbed.engine,
                self.testbed.scheduler,
                curve=config.safety.breaker,
                interval=config.safety.breaker_interval_seconds,
                reset_delay_seconds=config.safety.breaker_reset_minutes * 60.0,
                event_log=self.event_log,
                telemetry=self.telemetry,
            )
            if config.safety.supervisor_enabled:
                # The supervisor needs a capping engine for its CRITICAL
                # slam even when reactive capping is not running; an
                # unstarted engine provides slam/restore surfaces only.
                emergency_capping = self.capping or CappingEngine(
                    self.experiment_group,
                    self.testbed.engine,
                    interval=config.capping_interval_seconds,
                )
                self.safety = SafetySupervisor(
                    self.testbed.engine,
                    self.experiment_group,
                    self.testbed.scheduler,
                    emergency_capping,
                    config=config.safety,
                    breaker=self.breaker,
                    event_log=self.event_log,
                    telemetry=self.telemetry,
                )
        # The online auditor is built here (not lazily) so a durable
        # snapshot carries it like every other component.
        self.auditor: Optional[StateAuditor] = None
        if config.auditor is not None:
            self.auditor = self.build_auditor(config.auditor)
        self._started = False
        self._ran = False
        self._result: Optional[ExperimentResult] = None

    # ------------------------------------------------------------------
    # Staged execution: start() arms everything, advance() moves simulated
    # time, finish() collects. run() composes the three; the split exists
    # so a run can be snapshotted at any advance() boundary and resumed
    # byte-identically (see repro.durability).
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm workload, monitoring, control and safety services.

        Consumes no simulated time; call :meth:`advance` to move the
        clock. Idempotence is refused -- services must not double-arm.
        """
        if self._started:
            raise RuntimeError("experiment already started")
        self._started = True
        config = self.config
        end = config.end_seconds
        warmup = config.warmup_seconds

        profile = self.testbed.build_rate_profile(config.workload, end)
        if self.injector is not None:
            # Demand surges wrap the profile (pure, RNG-free): without
            # surges in the scenario the workload stream is bit-identical
            # to a fault-free run.
            profile = self.injector.wrap_rate_profile(profile)
        if config.tenancy is None:
            generators = [
                self.testbed.add_batch_workload(config.workload, end, profile=profile)
            ]
        else:
            # One generator per tenant, each reading the same shaped
            # profile scaled by the tenant's entitlement: the summed
            # arrival rate matches the untenanted run, and because every
            # profile is a pure function of time, both A/B arms (blind
            # vs fair) see the exact same job stream.
            entitlements = config.tenancy.entitlements()
            generators = []
            for spec in config.tenancy.tenants:
                tenant_profile: object = ScaledRateProfile(
                    profile, entitlements[spec.name]
                )
                if self.injector is not None:
                    tenant_profile = self.injector.wrap_rate_profile_for_tenant(
                        tenant_profile, spec.name
                    )
                generators.append(
                    self.testbed.add_batch_workload(
                        config.workload,
                        end,
                        profile=tenant_profile,
                        tenant=spec.name,
                    )
                )
        for generator in generators:
            generator.start(end)
        # Monitoring, control, safety and capping begin after warm-up so
        # the measurement window starts from steady state.
        self.testbed.monitor.start(end, first_at=warmup)
        if self.controller is not None:
            self.controller.start(end, first_at=warmup)
        if self.safety is not None:
            self.safety.start(end, first_at=warmup)
        if self.capping is not None:
            self.capping.start(end, first_at=warmup)
        if self.breaker is not None:
            self.breaker.start(end, first_at=warmup)
        if self.auditor is not None:
            self.auditor.start(end, first_at=warmup)
        if self.injector is not None:
            self.injector.arm(end)

    def advance(self, until: Optional[float] = None) -> None:
        """Run simulated time forward to ``until`` (default: the horizon).

        Consecutive calls compose exactly (events *at* the boundary stay
        pending), so ``advance(T); advance(end)`` is byte-identical to
        ``advance(end)`` -- the property snapshots rely on.
        """
        if not self._started:
            self.start()
        end = self.config.end_seconds
        target = end if until is None else min(float(until), end)
        self.testbed.engine.run(until=target)

    def finish(self) -> ExperimentResult:
        """Run any remaining simulated time and collect the outcomes.

        Idempotent: repeated calls return the same cached result without
        re-collecting (no double-emitted report rows), so a graceful
        shutdown can always call ``finish()`` regardless of whether the
        run already completed. Works from any :meth:`advance` point.
        """
        if self._ran:
            return self._result
        self.advance()
        self._ran = True
        self._result = self._collect(
            self.config.warmup_seconds, self.config.end_seconds
        )
        return self._result

    def run(self) -> ExperimentResult:
        """Execute the experiment and return measured outcomes."""
        if self._ran or self._started:
            raise RuntimeError("experiment already ran; build a new instance")
        self.start()
        return self.finish()

    # ------------------------------------------------------------------
    # Durable snapshots (see repro.durability for the frame format)
    # ------------------------------------------------------------------
    #: frame kind tag; restore() refuses frames of any other kind
    SNAPSHOT_KIND = "experiment"

    def _snapshot_meta(self) -> dict:
        # Deterministic descriptors only -- no wall-clock -- so the same
        # state always frames to the same bytes.
        return {
            "sim_now": self.testbed.engine.now,
            "backend": self.testbed.engine_backend,
            "n_servers": self.config.n_servers,
            "seed": self.config.seed,
            "started": self._started,
        }

    def snapshot(self) -> bytes:
        """Serialize the complete live run into a versioned frame.

        Captures everything: cluster-state columns, RNG streams, the
        event heap, controller/supervisor state and telemetry. Restoring
        and running to the horizon is byte-identical to never having
        stopped (proven in tests/test_durability.py, both backends,
        under chaos). Must be called between :meth:`advance` calls, not
        from inside an event callback.
        """
        if self.testbed.engine._running:
            raise RuntimeError(
                "cannot snapshot while the engine is running; snapshot "
                "between advance() calls"
            )
        from repro.durability import encode_snapshot

        return encode_snapshot(self, self.SNAPSHOT_KIND, self._snapshot_meta())

    def save_snapshot(self, path: Union[str, Path]) -> int:
        """Atomically write :meth:`snapshot` to ``path``; returns bytes."""
        from repro.durability import atomic_write_bytes

        frame = self.snapshot()
        atomic_write_bytes(path, frame)
        return len(frame)

    @classmethod
    def restore(cls, source: Union[bytes, str, Path]) -> "ControlledExperiment":
        """Rebuild a live experiment from a snapshot (bytes or a path).

        The result continues exactly where the original stood: call
        :meth:`advance`/:meth:`finish` to complete the run.
        """
        from repro.durability import SnapshotError, decode_snapshot, read_snapshot

        if isinstance(source, (bytes, bytearray)):
            obj, _ = decode_snapshot(bytes(source), expected_kind=cls.SNAPSHOT_KIND)
        else:
            obj, _ = read_snapshot(source, expected_kind=cls.SNAPSHOT_KIND)
        if not isinstance(obj, cls):
            raise SnapshotError(
                f"snapshot payload is {type(obj).__name__}, not {cls.__name__}"
            )
        return obj

    # ------------------------------------------------------------------
    def build_auditor(self, config: Optional[AuditorConfig] = None) -> StateAuditor:
        """A :class:`StateAuditor` wired to this run's surfaces.

        Used both for the in-run auditor (``config.auditor``) and by
        ``repro verify-snapshot`` to audit a restored run on demand.
        """
        return StateAuditor(
            self.testbed.engine,
            state=self.testbed.state,
            schedulers=[self.testbed.scheduler],
            supervisors=[self.safety] if self.safety is not None else [],
            config=config if config is not None else AuditorConfig(),
            telemetry=self.telemetry,
        )

    # ------------------------------------------------------------------
    def _collect(self, warmup: float, end: float) -> ExperimentResult:
        experiment = self._collect_group(self.experiment_group, warmup, end)
        control = self._collect_group(self.control_group, warmup, end)
        r_t = throughput_ratio(experiment.throughput, control.throughput)
        g_tpw = gain_in_tpw(r_t, self.config.over_provision_ratio)
        facility: Optional[FacilitySummary] = None
        try:
            _, facility_power = self.testbed.monitor.facility_power_series(
                start=warmup, end=end
            )
        except KeyError:
            facility_power = np.empty(0)
        if len(facility_power):
            facility = summarize_facility_series(
                self.testbed.monitor.facility_budget_watts, facility_power
            )
        return ExperimentResult(
            config=self.config,
            experiment=experiment,
            control=control,
            r_t=r_t,
            g_tpw=g_tpw,
            capping_stats=self.capping.stats if self.capping is not None else None,
            fault_stats=(
                self.injector.stats_snapshot() if self.injector is not None else None
            ),
            breaker_stats=(
                self.breaker.stats_snapshot() if self.breaker is not None else None
            ),
            safety_stats=(
                self.safety.stats_snapshot() if self.safety is not None else None
            ),
            controller_health=(
                self.controller.health if self.controller is not None else None
            ),
            telemetry=self.telemetry.registry if self.telemetry.enabled else None,
            facility=facility,
            audit_stats=(
                self.auditor.stats_snapshot() if self.auditor is not None else None
            ),
            tenancy=(
                self.accountant.stats_snapshot()
                if self.accountant is not None
                else None
            ),
        )

    def _collect_group(
        self, group: ServerGroup, warmup: float, end: float
    ) -> GroupOutcome:
        times, norm = self.testbed.monitor.normalized_power_series(
            group.name, start=warmup, end=end
        )
        throughput = self.testbed.throughput.window_total(group.name, warmup, end)
        u_times = np.empty(0)
        u_values = np.empty(0)
        if self.controller is not None and group.name in self.controller.states:
            state = self.controller.state_of(group.name)
            u_times = np.asarray(state.u_times)
            u_values = np.asarray(state.u_history)
        summary = summarize_power_series(
            group.name,
            norm,
            u_history=u_values,
            throughput=throughput,
            budget=1.0,
        )
        record = self.testbed.throughput.records[group.name]
        return GroupOutcome(
            summary=summary,
            power_times=times,
            normalized_power=norm,
            throughput=throughput,
            u_times=u_times,
            u_values=u_values,
            mean_wait_seconds=record.mean_wait(),
            p99_wait_seconds=record.wait_percentile(99.0),
        )


def run_tenancy_ab(
    config: ExperimentConfig,
    policies: tuple = ("blind", "fair"),
) -> Dict[str, ExperimentResult]:
    """Run the same tenancy-enabled experiment once per freeze policy.

    All arms share the seed, the tenant mix and therefore (because
    arrivals are policy-independent) the exact same job stream -- the
    only difference is how the controller picks freeze victims. Returns
    ``{policy: result}``; compare ``result.tenancy.jain_index`` across
    arms for the fairness effect and ``result.g_tpw`` to check the
    capacity gain was not traded away.
    """
    if config.tenancy is None:
        raise ValueError("run_tenancy_ab needs config.tenancy set")
    results: Dict[str, ExperimentResult] = {}
    for policy in policies:
        cell = replace(config, tenancy=replace(config.tenancy, policy=policy))
        results[policy] = ControlledExperiment(cell).run()
    return results


__all__ = [
    "ExperimentConfig",
    "ControlledExperiment",
    "ExperimentResult",
    "GroupOutcome",
    "run_tenancy_ab",
]
