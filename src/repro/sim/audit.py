"""Online state-invariant auditing: the simulation checks itself.

A power-control system must never become the outage it prevents -- and a
*reproduction harness* must never let silent state corruption propagate
into goldens and A/B conclusions. The :class:`StateAuditor` runs inside
the simulation on its own event priority
(:attr:`~repro.sim.events.EventPriority.AUDIT_TICK`, after every control
and physics action of an instant has settled) and re-derives what the
live state claims from first principles:

``event_queue``
    The engine heap still satisfies the binary-heap ordering property
    and holds no event dated before *now* (time monotonicity).
``numeric``
    No NaN/negative power, core/memory usage within physical bounds,
    DVFS frequency in ``(0, 1]``.
``power_cache``
    Wherever the shared power cache claims validity, a fresh recompute
    from the state columns reproduces the cached watts bit-for-bit.
``masks``
    The scheduler's authoritative frozen set matches the store's
    ``frozen`` column; failed servers hold the post-``fail()`` contract
    (full frequency, zero cached power if cached).
``ledger``
    Fleet budget conservation: allocations sum within the facility
    budget and each row sits in ``[floor, rating]``.

The auditor is strictly an *observer*: it consumes no randomness and
mutates nothing, so enabling it -- at any sampling rate -- leaves
trajectories byte-identical (asserted in ``tests/test_auditor.py``).
Expensive per-server checks are *sampled*: each pass examines a rotating
stratum of slots (``sample_fraction`` of the fleet, rotation driven by
the deterministic pass counter, never an RNG), so every server is
audited within ``1/sample_fraction`` passes while each pass stays cheap.

On violation the auditor raises a structured :class:`InvariantViolation`
(``on_violation="raise"``, the default for CI chaos legs), records it
(``"record"``), or additionally escalates the safety ladder to WARNING
via :meth:`~repro.core.safety.SafetySupervisor.raise_alarm`
(``"escalate"``) -- corrupted control state is treated like any other
emergency: freeze first, diagnose second. Every outcome increments the
``repro_auditor_*`` telemetry counters.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.events import EventPriority

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.state import ClusterState
    from repro.core.safety import SafetySupervisor
    from repro.fleet.ledger import BudgetLedger
    from repro.scheduler.omega import OmegaScheduler
    from repro.sim.engine import Engine
    from repro.telemetry import Telemetry

logger = logging.getLogger(__name__)

#: Every check the auditor knows, in execution order.
ALL_CHECKS = ("event_queue", "numeric", "power_cache", "masks", "ledger")

#: What to do when a pass finds violations.
ON_VIOLATION_MODES = ("raise", "record", "escalate")


class InvariantViolation(RuntimeError):
    """A state invariant does not hold; structured for telemetry/tooling."""

    def __init__(
        self,
        check: str,
        message: str,
        time: float = 0.0,
        details: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(f"[{check}] t={time:.1f}s: {message}")
        self.check = check
        self.message = message
        self.time = time
        self.details = dict(details or {})

    def __reduce__(self):
        # Multi-argument exceptions need explicit reconstruction args
        # (default exception pickling would replay only the formatted
        # message into ``check``).
        return (
            InvariantViolation,
            (self.check, self.message, self.time, self.details),
        )

    def as_record(self) -> Dict[str, object]:
        """Plain-types form for result payloads and reports."""
        return {
            "check": self.check,
            "message": self.message,
            "time": self.time,
            "details": dict(self.details),
        }


@dataclass(frozen=True)
class AuditorConfig:
    """Knobs of the online auditor.

    Attributes
    ----------
    interval_seconds:
        Audit cadence (default every 5 simulated minutes -- five control
        intervals).
    sample_fraction:
        Fraction of server slots examined per pass by the per-server
        checks (cache coherence, numeric sanity, mask consistency). The
        stratum rotates deterministically so full coverage is reached
        every ``ceil(1/fraction)`` passes. ``1.0`` audits everything
        every pass (chaos-leg setting).
    on_violation:
        ``"raise"`` aborts the run with :class:`InvariantViolation`;
        ``"record"`` keeps running and accumulates; ``"escalate"``
        records *and* drives attached safety supervisors to WARNING.
    checks:
        Subset of :data:`ALL_CHECKS` to run.
    max_recorded:
        Bound on retained violation records (oldest kept; the counter
        keeps counting).
    """

    interval_seconds: float = 300.0
    sample_fraction: float = 0.25
    on_violation: str = "raise"
    checks: Tuple[str, ...] = ALL_CHECKS
    max_recorded: int = 100

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got {self.interval_seconds}"
            )
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ValueError(
                f"sample_fraction must be in (0, 1], got {self.sample_fraction}"
            )
        if self.on_violation not in ON_VIOLATION_MODES:
            raise ValueError(
                f"on_violation must be one of {ON_VIOLATION_MODES}, "
                f"got {self.on_violation!r}"
            )
        unknown = set(self.checks) - set(ALL_CHECKS)
        if unknown:
            raise ValueError(f"unknown checks {sorted(unknown)}; know {ALL_CHECKS}")
        if self.max_recorded < 1:
            raise ValueError(
                f"max_recorded must be >= 1, got {self.max_recorded}"
            )


@dataclass
class AuditStats:
    """Picklable account of what the auditor saw (ships in results)."""

    passes: int = 0
    checks_run: int = 0
    servers_audited: int = 0
    violations: int = 0
    violations_by_check: Dict[str, int] = field(default_factory=dict)
    #: bounded list of violation records (``InvariantViolation.as_record``)
    recorded: List[Dict[str, object]] = field(default_factory=list)
    last_pass_time: float = float("nan")

    def snapshot(self) -> "AuditStats":
        return replace(
            self,
            violations_by_check=dict(self.violations_by_check),
            recorded=list(self.recorded),
        )


class StateAuditor:
    """Samplable online verifier of simulation-state invariants.

    Wire it to whatever a harness has: a single-row experiment passes
    one scheduler and (maybe) one supervisor; the fleet harness passes
    all of them plus the budget ledger. Absent surfaces skip their
    checks silently.
    """

    def __init__(
        self,
        engine: "Engine",
        state: Optional["ClusterState"] = None,
        schedulers: Sequence["OmegaScheduler"] = (),
        ledger: Optional["BudgetLedger"] = None,
        supervisors: Sequence["SafetySupervisor"] = (),
        config: AuditorConfig = AuditorConfig(),
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        self.engine = engine
        self.state = state
        self.schedulers = list(schedulers)
        self.ledger = ledger
        self.supervisors = list(supervisors)
        self.config = config
        self.stats = AuditStats()
        if telemetry is None:
            from repro.telemetry import Telemetry

            telemetry = getattr(engine, "telemetry", None) or Telemetry.disabled()
        self._passes_counter = telemetry.counter(
            "repro_auditor_passes_total", "Audit passes executed"
        )
        self._violations_counter = telemetry.counter(
            "repro_auditor_violations_total", "Invariant violations detected"
        )
        self._escalation_hooks: List[Callable[[InvariantViolation], None]] = []

    def add_escalation_hook(
        self, hook: Callable[[InvariantViolation], None]
    ) -> None:
        """Notify ``hook`` whenever an ``"escalate"``-mode pass violates.

        The service supervisor registers here to drop the API into
        read-only degraded mode and trigger checkpoint recovery on
        corrupted control state. Hooks are process-local runtime wiring:
        they are excluded from pickled snapshots (see ``__getstate__``)
        and must be re-registered on any restored auditor.
        """
        self._escalation_hooks.append(hook)

    def __getstate__(self):
        state = self.__dict__.copy()
        # Hooks reference live supervisor machinery (threads, locks) and
        # are re-registered after restore; dropping them keeps snapshot
        # bytes identical whether or not a supervisor was attached.
        state["_escalation_hooks"] = []
        return state

    # ------------------------------------------------------------------
    def start(self, until: float, first_at: Optional[float] = None) -> None:
        """Begin periodic auditing on the engine."""
        self.engine.schedule_periodic(
            self.config.interval_seconds,
            EventPriority.AUDIT_TICK,
            self.tick,
            first_at=first_at,
            until=until,
        )

    def tick(self) -> None:
        """One sampled pass (the periodic entry point)."""
        self.audit(sample=True)

    # ------------------------------------------------------------------
    def audit(self, sample: bool = False) -> List[InvariantViolation]:
        """Run the configured checks; returns this pass's violations.

        ``sample=True`` restricts per-server checks to the rotating
        stratum; ``sample=False`` (the ``verify-snapshot`` / test path)
        audits every slot.
        """
        violations: List[InvariantViolation] = []
        indices = self._sample_indices(sample)
        for check in self.config.checks:
            self.stats.checks_run += 1
            if check == "event_queue":
                self._check_event_queue(violations, sample)
            elif check == "numeric" and indices is not None:
                self._check_numeric(indices, violations)
            elif check == "power_cache" and indices is not None:
                self._check_power_cache(indices, violations)
            elif check == "masks":
                self._check_masks(indices, violations)
            elif check == "ledger":
                self._check_ledger(violations)
        self.stats.passes += 1
        self.stats.last_pass_time = self.engine.now
        if indices is not None:
            self.stats.servers_audited += int(indices.size)
        self._passes_counter.inc()
        if violations:
            self._handle(violations)
        return violations

    # ------------------------------------------------------------------
    def _sample_indices(self, sample: bool) -> Optional[np.ndarray]:
        """Slot indices for this pass's per-server checks (or ``None``)."""
        if self.state is None or self.state.n == 0:
            return None
        n = self.state.n
        if not sample or self.config.sample_fraction >= 1.0:
            return np.arange(n, dtype=np.intp)
        stride = max(1, int(round(1.0 / self.config.sample_fraction)))
        offset = self.stats.passes % stride  # deterministic rotation, no RNG
        return np.arange(offset, n, stride, dtype=np.intp)

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def _check_event_queue(
        self, out: List[InvariantViolation], sample: bool = False
    ) -> None:
        heap = self.engine._heap
        now = self.engine.now
        entries = range(len(heap))
        if sample and self.config.sample_fraction < 1.0:
            # The heap check is O(entries) in Python; sample it with the
            # same deterministic rotation as the per-server checks.
            stride = max(1, int(round(1.0 / self.config.sample_fraction)))
            entries = range(self.stats.passes % stride, len(heap), stride)
        for k in entries:
            entry = heap[k]
            for child in (2 * k + 1, 2 * k + 2):
                if child < len(heap) and heap[child][:3] < entry[:3]:
                    out.append(
                        self._violation(
                            "event_queue",
                            f"heap property broken at entry {k}",
                            {"parent": entry[:3], "child": heap[child][:3]},
                        )
                    )
                    return  # one structural report is enough
            if entry[0] < now:
                out.append(
                    self._violation(
                        "event_queue",
                        f"event dated t={entry[0]:.3f}s is before now",
                        {"event_time": entry[0], "now": now},
                    )
                )
                return

    def _check_numeric(
        self, indices: np.ndarray, out: List[InvariantViolation]
    ) -> None:
        state = self.state
        assert state is not None
        powers = state.server_powers(indices)
        bad_nan = ~np.isfinite(powers)
        bad_neg = powers < 0.0
        used = state.used_cores[indices]
        cores = state.cores[indices]
        bad_cores = (used < 0.0) | (used > cores + 1e-9)
        freq = state.frequency[indices]
        bad_freq = (freq <= 0.0) | (freq > 1.0)
        bad_mem = state.used_memory_gb[indices] < 0.0
        for mask, label in (
            (bad_nan, "non-finite power"),
            (bad_neg, "negative power"),
            (bad_cores, "used_cores outside [0, cores]"),
            (bad_freq, "frequency outside (0, 1]"),
            (bad_mem, "negative used_memory_gb"),
        ):
            if mask.any():
                slots = indices[mask][:8]
                out.append(
                    self._violation(
                        "numeric",
                        f"{label} on {int(mask.sum())} server(s)",
                        {
                            "server_ids": state.server_ids[slots].tolist(),
                            "count": int(mask.sum()),
                        },
                    )
                )

    def _check_power_cache(
        self, indices: np.ndarray, out: List[InvariantViolation]
    ) -> None:
        state = self.state
        assert state is not None
        valid = state.power_valid[indices]
        if not valid.any():
            return
        cached_slots = indices[valid]
        fresh = state.server_powers(cached_slots)
        # Dark servers legitimately cache their last lit power (reads
        # short-circuit to 0.0 W without consulting the cache), so
        # coherence is asserted for lit servers only.
        lit = state.live_mask(cached_slots)
        mismatch = lit & (state.power_cache[cached_slots] != fresh)
        if mismatch.any():
            slots = cached_slots[mismatch][:8]
            out.append(
                self._violation(
                    "power_cache",
                    f"cached power diverges from recompute on "
                    f"{int(mismatch.sum())} server(s)",
                    {
                        "server_ids": state.server_ids[slots].tolist(),
                        "cached": state.power_cache[slots].tolist(),
                        "recomputed": fresh[mismatch][:8].tolist(),
                    },
                )
            )

    def _check_masks(
        self, indices: Optional[np.ndarray], out: List[InvariantViolation]
    ) -> None:
        state = self.state
        # Scheduler frozen set vs the store's frozen column: the
        # scheduler's set is authoritative (PR 2's recovery contract), so
        # any drift means a mutation bypassed the freeze bookkeeping.
        for scheduler in self.schedulers:
            frozen_ids = scheduler.frozen_server_ids()
            for server in scheduler.tracker.servers:
                if server.frozen != (server.server_id in frozen_ids):
                    out.append(
                        self._violation(
                            "masks",
                            f"server {server.server_id}: frozen flag "
                            f"{server.frozen} disagrees with scheduler set",
                            {"server_id": server.server_id},
                        )
                    )
                    break  # one report per scheduler
        if state is None or indices is None:
            return
        failed = state.failed[indices]
        if failed.any():
            # fail() contract: a failed machine will POST at full
            # frequency -- capped-time accounting must not leak (PR 4).
            bad = failed & (state.frequency[indices] != 1.0)
            if bad.any():
                slots = indices[bad][:8]
                out.append(
                    self._violation(
                        "masks",
                        f"{int(bad.sum())} failed server(s) hold a capped "
                        "DVFS frequency",
                        {"server_ids": state.server_ids[slots].tolist()},
                    )
                )

    def _check_ledger(self, out: List[InvariantViolation]) -> None:
        ledger = self.ledger
        if ledger is None:
            return
        from repro.fleet.ledger import LEDGER_RTOL

        slack = ledger.facility_budget_watts * LEDGER_RTOL
        total = ledger.total_allocated()
        if total > ledger.facility_budget_watts + slack:
            out.append(
                self._violation(
                    "ledger",
                    f"allocations sum to {total:.1f} W, above the facility "
                    f"budget {ledger.facility_budget_watts:.1f} W",
                    {"total": total, "budget": ledger.facility_budget_watts},
                )
            )
        for row in ledger.rows():
            if row.allocation_watts < row.floor_watts - slack:
                out.append(
                    self._violation(
                        "ledger",
                        f"row {row.name!r} allocated {row.allocation_watts:.1f} W, "
                        f"below its floor {row.floor_watts:.1f} W",
                        {"row": row.name},
                    )
                )
            if row.allocation_watts > row.rating_watts + slack:
                out.append(
                    self._violation(
                        "ledger",
                        f"row {row.name!r} allocated {row.allocation_watts:.1f} W, "
                        f"above its feed rating {row.rating_watts:.1f} W",
                        {"row": row.name},
                    )
                )

    # ------------------------------------------------------------------
    def _violation(
        self, check: str, message: str, details: Dict[str, object]
    ) -> InvariantViolation:
        return InvariantViolation(
            check, message, time=self.engine.now, details=details
        )

    def _handle(self, violations: List[InvariantViolation]) -> None:
        for violation in violations:
            self.stats.violations += 1
            by_check = self.stats.violations_by_check
            by_check[violation.check] = by_check.get(violation.check, 0) + 1
            if len(self.stats.recorded) < self.config.max_recorded:
                self.stats.recorded.append(violation.as_record())
            self._violations_counter.inc()
            logger.error("invariant violation: %s", violation)
        if self.config.on_violation == "raise":
            raise violations[0]
        if self.config.on_violation == "escalate":
            for supervisor in self.supervisors:
                supervisor.raise_alarm(str(violations[0]))
            for hook in self._escalation_hooks:
                try:
                    hook(violations[0])
                except Exception:  # a broken hook must not mask auditing
                    logger.exception("auditor escalation hook failed")

    def stats_snapshot(self) -> AuditStats:
        return self.stats.snapshot()


__all__ = [
    "ALL_CHECKS",
    "AuditStats",
    "AuditorConfig",
    "InvariantViolation",
    "StateAuditor",
]
