"""Figure 11: interactive tail latency under capping vs. under Ampere.

The paper deploys a Redis cluster on an over-provisioned row
(``r_O = 0.25``) running production batch load, drives redis-benchmark
from uncontrolled clients, and compares client-side p99.9 latency when
row power is enforced by DVFS power capping versus by Ampere. Capping
almost doubles tail latency on every operation because Redis is
CPU-bound; Ampere leaves running services untouched.

This harness reproduces that comparison end-to-end on the simulator: the
same row, workload and service placement, with the enforcement mechanism
swapped between runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.cluster.capping import CappingEngine
from repro.core.config import AmpereConfig
from repro.core.controller import AmpereController
from repro.core.freeze_model import FreezeEffectModel
from repro.sim.testbed import Testbed, WorkloadSpec
from repro.workload.interactive import (
    InteractiveService,
    LatencyReport,
    RedisBenchmark,
)


@dataclass(frozen=True)
class InteractiveExperimentConfig:
    """Setup shared by both enforcement modes."""

    n_servers: int = 400
    n_services: int = 20
    service_cores: float = 8.0
    over_provision_ratio: float = 0.25
    duration_hours: float = 4.0
    warmup_hours: float = 1.0
    # The diurnal peak is phased into the middle of the measurement window
    # so the enforcement mechanism (capping or Ampere) is actually
    # exercised, as in the paper's experiment where row power repeatedly
    # reaches the budget.
    workload: WorkloadSpec = WorkloadSpec(
        target_utilization=0.30,
        diurnal_amplitude=0.12,
        diurnal_phase_seconds=-10800.0,
    )
    benchmark_utilization: float = 0.35
    max_requests_per_server: int = 500_000
    capping_interval_seconds: float = 5.0
    capping_strategy: str = "hottest-first"
    ampere: AmpereConfig = AmpereConfig()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_services <= 0 or self.n_services > self.n_servers:
            raise ValueError(
                f"n_services must be in [1, {self.n_servers}], got {self.n_services}"
            )


@dataclass
class InteractiveScenarioResult:
    """Latency reports plus capping exposure for one enforcement mode."""

    mode: str
    reports: Dict[str, LatencyReport]
    fraction_service_time_capped: float
    violations: int
    u_mean: float

    def p999(self, operation: str) -> float:
        return self.reports[operation].p999


def run_interactive_scenario(
    mode: str, config: InteractiveExperimentConfig = InteractiveExperimentConfig()
) -> InteractiveScenarioResult:
    """Run one enforcement mode: ``"capping"`` or ``"ampere"``.

    In ``"ampere"`` mode the capping safety net stays armed underneath the
    controller, exactly as in the paper's production deployment.
    """
    if mode not in ("capping", "ampere"):
        raise ValueError(f"mode must be 'capping' or 'ampere', got {mode!r}")
    testbed = Testbed(n_servers=config.n_servers, seed=config.seed)
    row = testbed.row
    row.set_over_provision_ratio(config.over_provision_ratio)
    testbed.monitor.register_group(row)

    # Pin one service per stride so services spread across racks.
    stride = config.n_servers // config.n_services
    services: List[InteractiveService] = []
    for i in range(config.n_services):
        server = row.servers[i * stride]
        services.append(
            InteractiveService(
                server, testbed.engine, testbed.scheduler, cores=config.service_cores
            )
        )

    warmup = config.warmup_hours * 3600.0
    end = warmup + config.duration_hours * 3600.0
    generator = testbed.add_batch_workload(config.workload, end)
    generator.start(end)
    testbed.monitor.start(end, first_at=warmup)

    capping = CappingEngine(
        row,
        testbed.engine,
        interval=config.capping_interval_seconds,
        strategy=config.capping_strategy,
    )
    capping.start(end, first_at=warmup)

    controller = None
    if mode == "ampere":
        controller = AmpereController(
            testbed.engine,
            testbed.scheduler,
            testbed.monitor,
            [row],
            config=config.ampere,
            freeze_model=FreezeEffectModel(),
        )
        controller.start(end, first_at=warmup)

    testbed.run(until=end)

    benchmark = RedisBenchmark(
        services,
        rng=np.random.default_rng(config.seed + 97),
        target_utilization=config.benchmark_utilization,
        max_requests_per_server=config.max_requests_per_server,
    )
    reports = benchmark.run_all(warmup, end)
    capped_fraction = float(
        np.mean([s.fraction_time_capped(warmup, end) for s in services])
    )
    u_mean = controller.state_of(row.name).u_mean if controller is not None else 0.0
    return InteractiveScenarioResult(
        mode=mode,
        reports=reports,
        fraction_service_time_capped=capped_fraction,
        violations=testbed.monitor.violation_count(row.name),
        u_mean=u_mean,
    )


def run_interactive_comparison(
    config: InteractiveExperimentConfig = InteractiveExperimentConfig(),
) -> Dict[str, InteractiveScenarioResult]:
    """Run both modes on identical setups; returns ``{mode: result}``."""
    return {
        "capping": run_interactive_scenario("capping", config),
        "ampere": run_interactive_scenario("ampere", config),
    }


__all__ = [
    "InteractiveExperimentConfig",
    "InteractiveScenarioResult",
    "run_interactive_scenario",
    "run_interactive_comparison",
]
