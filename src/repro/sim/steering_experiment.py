"""Extension experiment: cross-row power-aware job steering (Section 6).

The paper's first future-work item is to let the scheduler spread load
across rows by power condition, creating more exploitable head-room,
while keeping Ampere's freeze/unfreeze interface unchanged. This harness
builds a multi-row data center where each row carries its own pinned
product (hot / medium / cold) plus a shared *flexible* product that may
run anywhere, over-provisions every row, runs one Ampere controller over
all rows, and swaps the flexible product's placement policy between
power-oblivious (uniform random) and power-aware
(:class:`~repro.scheduler.power_aware.CoolestRowPolicy`).

Expected shape: steering flexible jobs toward cool rows relieves the hot
row, so the controller freezes less and the fleet takes fewer violations
at equal throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.cluster.datacenter import build_datacenter
from repro.core.config import AmpereConfig
from repro.core.controller import AmpereController
from repro.core.freeze_model import FreezeEffectModel
from repro.monitor.power_monitor import PowerMonitor
from repro.monitor.tsdb import TimeSeriesDatabase
from repro.scheduler.omega import Framework, OmegaScheduler
from repro.scheduler.power_aware import CoolestRowPolicy
from repro.sim.engine import Engine
from repro.workload.distributions import (
    JobDurationDistribution,
    ResourceDemandDistribution,
    rate_for_target_utilization,
)
from repro.workload.generator import (
    BatchWorkloadGenerator,
    DiurnalRateProfile,
    ModulatedRateProfile,
)


@dataclass(frozen=True)
class SteeringConfig:
    n_rows: int = 3
    racks_per_row: int = 2
    servers_per_rack: int = 40
    #: pinned per-row task utilization (hot, ..., cold)
    row_utilizations: tuple = (0.26, 0.16, 0.06)
    #: flexible product's fleet-wide utilization share
    flexible_utilization: float = 0.10
    over_provision_ratio: float = 0.20
    duration_hours: float = 8.0
    warmup_hours: float = 1.0
    cores: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.row_utilizations) != self.n_rows:
            raise ValueError(
                f"need {self.n_rows} row utilizations, got {len(self.row_utilizations)}"
            )


@dataclass
class SteeringResult:
    policy: str
    total_violations: int
    violations_by_row: Dict[str, int]
    mean_freezing_ratio: float
    throughput: int
    row_power_means: Dict[str, float]


def run_steering_scenario(
    policy: str, config: SteeringConfig = SteeringConfig()
) -> SteeringResult:
    """Run one scenario: ``policy`` is ``"random"`` or ``"coolest-row"``."""
    if policy not in ("random", "coolest-row"):
        raise ValueError(f"policy must be 'random' or 'coolest-row', got {policy!r}")
    datacenter = build_datacenter(
        rows=config.n_rows,
        racks_per_row=config.racks_per_row,
        servers_per_rack=config.servers_per_rack,
        cores=config.cores,
    )
    engine = Engine()
    seeds = np.random.SeedSequence(config.seed).spawn(4 + config.n_rows)
    scheduler = OmegaScheduler(
        engine, datacenter.servers, rng=np.random.default_rng(seeds[0])
    )
    if policy == "coolest-row":
        scheduler.register_framework(
            Framework("flexible", policy=CoolestRowPolicy(datacenter.rows))
        )
    else:
        scheduler.register_framework(Framework("flexible"))

    db = TimeSeriesDatabase()
    monitor = PowerMonitor(engine, db=db, rng=np.random.default_rng(seeds[1]))
    for row in datacenter.rows:
        row.set_over_provision_ratio(config.over_provision_ratio)
        monitor.register_group(row)

    warmup = config.warmup_hours * 3600.0
    end = warmup + config.duration_hours * 3600.0
    duration_dist = JobDurationDistribution()
    demand_dist = ResourceDemandDistribution()

    # Pinned per-row products.
    for i, row in enumerate(datacenter.rows):
        rate = rate_for_target_utilization(
            len(row.servers), config.cores, config.row_utilizations[i], demand=demand_dist
        )
        profile = ModulatedRateProfile(
            DiurnalRateProfile(rate, amplitude=0.15),
            horizon_seconds=end,
            seed=int(seeds[2 + i].generate_state(1)[0]),
        )
        BatchWorkloadGenerator(
            engine, scheduler, profile,
            rng=np.random.default_rng(seeds[2 + i]),
            duration=duration_dist, demand=demand_dist,
            product=f"pinned-{i}", allowed_rows=[row.row_id],
            job_id_offset=(i + 1) * 10_000_000,
        ).start(end)

    # The flexible product: free to run in any row.
    flexible_rate = rate_for_target_utilization(
        len(datacenter.servers), config.cores, config.flexible_utilization,
        demand=demand_dist,
    )
    flexible_seed = seeds[2 + config.n_rows]
    BatchWorkloadGenerator(
        engine, scheduler,
        ModulatedRateProfile(
            DiurnalRateProfile(flexible_rate, amplitude=0.15),
            horizon_seconds=end,
            seed=int(flexible_seed.generate_state(1)[0]),
        ),
        rng=np.random.default_rng(flexible_seed),
        duration=duration_dist, demand=demand_dist,
        product="flexible",
    ).start(end)

    controller = AmpereController(
        engine, scheduler, monitor, datacenter.rows,
        config=AmpereConfig(),
        freeze_model=FreezeEffectModel(),
    )
    monitor.start(end, first_at=warmup)
    controller.start(end, first_at=warmup)
    engine.run(until=end)

    violations = {row.name: monitor.violation_count(row.name) for row in datacenter.rows}
    u_means = [controller.state_of(row.name).u_mean for row in datacenter.rows]
    power_means = {
        row.name: float(monitor.normalized_power_series(row.name)[1].mean())
        for row in datacenter.rows
    }
    return SteeringResult(
        policy=policy,
        total_violations=sum(violations.values()),
        violations_by_row=violations,
        mean_freezing_ratio=float(np.mean(u_means)),
        throughput=scheduler.stats.placed,
        row_power_means=power_means,
    )


def run_steering_comparison(
    config: SteeringConfig = SteeringConfig(),
) -> Dict[str, SteeringResult]:
    return {
        "random": run_steering_scenario("random", config),
        "coolest-row": run_steering_scenario("coolest-row", config),
    }


__all__ = ["SteeringConfig", "SteeringResult", "run_steering_scenario", "run_steering_comparison"]
