"""Experiment campaigns: the paper's 20-day Table 3 study as a harness.

Table 3 comes from running Ampere "over an experiment period of 20 days
... using different over-provisioning ratio under varying production
workload". A :class:`Campaign` is the reusable version of that: a list of
cells (over-provision ratio x workload x seed/day), executed with the
Section 4.4 design, aggregated into rows, and exportable to CSV/JSON for
archival.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.sim.experiment import ControlledExperiment, ExperimentConfig, ExperimentResult
from repro.sim.testbed import WorkloadSpec

CellCallback = Callable[["CampaignCell", ExperimentResult], None]


@dataclass(frozen=True)
class CampaignCell:
    """One experiment day: a ratio, a workload, a seed."""

    over_provision_ratio: float
    workload_name: str
    workload: WorkloadSpec
    seed: int

    def label(self) -> str:
        return f"r_O={self.over_provision_ratio:.2f} {self.workload_name} seed={self.seed}"


@dataclass
class CampaignRow:
    """Measured outcome of one cell (a row of Table 3)."""

    cell: CampaignCell
    p_mean: float
    p_max: float
    u_mean: float
    r_t: float
    g_tpw: float
    violations: int

    def as_record(self) -> Dict[str, object]:
        return {
            "r_o": self.cell.over_provision_ratio,
            "workload": self.cell.workload_name,
            "seed": self.cell.seed,
            "p_mean": self.p_mean,
            "p_max": self.p_max,
            "u_mean": self.u_mean,
            "r_t": self.r_t,
            "g_tpw": self.g_tpw,
            "violations": self.violations,
        }


@dataclass
class CampaignResult:
    """All rows of a finished campaign plus aggregation helpers."""

    rows: List[CampaignRow] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def filter(
        self,
        r_o: Optional[float] = None,
        workload: Optional[str] = None,
    ) -> List[CampaignRow]:
        out = self.rows
        if r_o is not None:
            out = [r for r in out if abs(r.cell.over_provision_ratio - r_o) < 1e-12]
        if workload is not None:
            out = [r for r in out if r.cell.workload_name == workload]
        return out

    def mean_gtpw(self, r_o: float, workload: Optional[str] = None) -> float:
        rows = self.filter(r_o=r_o, workload=workload)
        if not rows:
            raise KeyError(f"no campaign rows for r_O={r_o}, workload={workload}")
        return sum(r.g_tpw for r in rows) / len(rows)

    def best_ratio(self, by: str = "worst_case") -> float:
        """The r_O maximizing mean G_TPW ('mean') or the minimum across
        workload levels ('worst_case', the robust choice)."""
        ratios = sorted({r.cell.over_provision_ratio for r in self.rows})
        workloads = sorted({r.cell.workload_name for r in self.rows})
        if not ratios:
            raise ValueError("empty campaign")

        def score(r_o: float) -> float:
            gains = [self.mean_gtpw(r_o, w) for w in workloads]
            return min(gains) if by == "worst_case" else sum(gains) / len(gains)

        return max(ratios, key=score)

    # ------------------------------------------------------------------
    def save_csv(self, path: Union[str, Path]) -> None:
        records = [row.as_record() for row in self.rows]
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(records[0]))
            writer.writeheader()
            writer.writerows(records)

    def save_json(self, path: Union[str, Path]) -> None:
        with open(path, "w") as handle:
            json.dump([row.as_record() for row in self.rows], handle, indent=2)


class Campaign:
    """Runs a grid of Section 4.4 experiments.

    Parameters
    ----------
    ratios / workloads / seeds:
        The grid: every combination becomes one cell ("day").
    n_servers / duration_hours / warmup_hours:
        Per-cell experiment configuration.
    """

    def __init__(
        self,
        ratios: Sequence[float] = (0.13, 0.17, 0.21, 0.25),
        workloads: Optional[Dict[str, WorkloadSpec]] = None,
        seeds: Sequence[int] = (13,),
        n_servers: int = 400,
        duration_hours: float = 12.0,
        warmup_hours: float = 1.0,
    ) -> None:
        if not ratios:
            raise ValueError("campaign needs at least one over-provision ratio")
        if not seeds:
            raise ValueError("campaign needs at least one seed")
        if workloads is None:
            workloads = {
                "light": WorkloadSpec.light(),
                "typical": WorkloadSpec.typical(),
                "heavy": WorkloadSpec.heavy(),
            }
        self.cells: List[CampaignCell] = [
            CampaignCell(r_o, name, spec, seed)
            for r_o in ratios
            for name, spec in workloads.items()
            for seed in seeds
        ]
        self.n_servers = n_servers
        self.duration_hours = duration_hours
        self.warmup_hours = warmup_hours

    def __len__(self) -> int:
        return len(self.cells)

    def run(self, on_cell: Optional[CellCallback] = None) -> CampaignResult:
        """Execute every cell; ``on_cell`` is called after each (progress)."""
        result = CampaignResult()
        for cell in self.cells:
            config = ExperimentConfig(
                n_servers=self.n_servers,
                duration_hours=self.duration_hours,
                warmup_hours=self.warmup_hours,
                over_provision_ratio=cell.over_provision_ratio,
                scale_control_budget=False,  # Section 4.4 design
                workload=cell.workload,
                seed=cell.seed,
            )
            outcome = ControlledExperiment(config).run()
            summary = outcome.experiment.summary
            row = CampaignRow(
                cell=cell,
                p_mean=summary.p_mean,
                p_max=summary.p_max,
                u_mean=summary.u_mean,
                r_t=outcome.r_t,
                g_tpw=outcome.g_tpw,
                violations=summary.violations,
            )
            result.rows.append(row)
            if on_cell is not None:
                on_cell(cell, outcome)
        return result


__all__ = ["Campaign", "CampaignCell", "CampaignRow", "CampaignResult"]
