"""Experiment campaigns: the paper's 20-day Table 3 study as a harness.

Table 3 comes from running Ampere "over an experiment period of 20 days
... using different over-provisioning ratio under varying production
workload". A :class:`Campaign` is the reusable version of that: a list of
cells (over-provision ratio x workload x seed/day), executed with the
Section 4.4 design, aggregated into rows, and exportable to CSV/JSON for
archival.

Execution comes in two flavours:

- :meth:`Campaign.run` -- the serial reference implementation, one cell
  after another in this process.
- :meth:`Campaign.run_parallel` -- fans cells out across a process pool
  (:mod:`repro.sim.parallel`). Because :func:`run_cell` derives *all*
  randomness from the cell's own seed, the parallel path returns rows
  byte-identical to the serial one regardless of worker count or
  completion order.

The unit shipped across the worker boundary is :func:`run_cell`, a pure
module-level function of picklable inputs (:class:`CampaignCell`,
:class:`CampaignRunConfig`) returning a picklable :class:`CampaignRow`
-- never a live engine object.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.safety import SafetyConfig
from repro.durability.atomic import atomic_write_text
from repro.faults.scenario import FaultScenario
from repro.fleet.config import FleetConfig
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec
from repro.telemetry import MetricsRegistry
from repro.tenancy import TenancyConfig

CellCallback = Callable[["CampaignCell", "CampaignRow"], None]


@dataclass(frozen=True)
class CampaignCell:
    """One experiment day: a ratio, a workload, a seed."""

    over_provision_ratio: float
    workload_name: str
    workload: WorkloadSpec
    seed: int

    def label(self) -> str:
        return f"r_O={self.over_provision_ratio:.2f} {self.workload_name} seed={self.seed}"


@dataclass(frozen=True)
class CampaignRunConfig:
    """Per-cell experiment configuration shared by every cell of a grid.

    Frozen and built only from plain values so it pickles cheaply across
    the worker boundary.
    """

    n_servers: int = 400
    duration_hours: float = 12.0
    warmup_hours: float = 1.0
    #: control-plane fault schedule applied identically to every cell
    #: (the fault-sweep experiments run one campaign per scenario)
    faults: Optional[FaultScenario] = None
    #: breaker physics + emergency ladder applied to every cell
    safety: Optional[SafetyConfig] = None
    #: collect per-cell metrics registries (merged campaign-wide via
    #: :meth:`CampaignResult.merged_telemetry`)
    telemetry: bool = False
    #: when set, every cell runs the multi-row fleet harness under this
    #: coordinator config instead of the single-row A/B experiment
    fleet: Optional[FleetConfig] = None
    #: cold-row intensity as a fraction of the cell workload (fleet
    #: cells split servers into a hot row at the cell's workload and a
    #: cold row at ``workload.scaled(fleet_skew)``)
    fleet_skew: float = 0.25
    #: hot-loop engine backend for every cell ("object"/"vectorized"/
    #: None = process default). Workers resolve None against the
    #: REPRO_ENGINE_BACKEND environment variable, which child processes
    #: inherit, so serial and parallel campaigns agree on the backend.
    engine_backend: Optional[str] = None
    #: multi-tenant mix applied identically to every cell (None =
    #: untenanted; rows then leave the tenancy columns blank)
    tenancy: Optional[TenancyConfig] = None


#: Canonical column order of a campaign row record. ``save_csv`` writes
#: exactly these columns even for an empty result (header-only CSV).
CAMPAIGN_RECORD_FIELDS = (
    "r_o",
    "workload",
    "seed",
    "p_mean",
    "p_max",
    "u_mean",
    "r_t",
    "g_tpw",
    "violations",
    "trips",
    "jobs_shed",
    "frozen_server_minutes",
    "reallocations",
    "tenancy_policy",
    "jain_index",
    "error",
)


@dataclass
class CampaignRow:
    """Measured outcome of one cell (a row of Table 3).

    A row either carries measurements (``error is None``) or records a
    cell that failed in a worker (metrics are NaN, ``error`` holds the
    exception message) -- a crashed cell must not abort a 20-day sweep.
    """

    cell: CampaignCell
    p_mean: float
    p_max: float
    u_mean: float
    r_t: float
    g_tpw: float
    violations: int
    #: breaker trips suffered by the cell (0 when no breaker was armed)
    trips: int = 0
    #: batch tasks dropped by emergency load shedding
    jobs_shed: int = 0
    #: server-minutes of frozen capacity commanded over the measurement
    #: window (the capacity cost Ampere pays; fleet cells sum all rows)
    frozen_server_minutes: float = 0.0
    #: fleet-coordinator budget moves (0 for non-fleet cells)
    reallocations: int = 0
    #: freeze-fairness policy of the cell (None for untenanted cells)
    tenancy_policy: Optional[str] = None
    #: Jain's index over weight-normalized per-tenant frozen time
    #: (None for untenanted cells)
    jain_index: Optional[float] = None
    error: Optional[str] = None
    #: the cell's metrics registry (None unless the run config enabled
    #: telemetry). Deliberately excluded from :meth:`as_record`: records
    #: are flat Table 3 rows; registries aggregate via
    #: :meth:`CampaignResult.merged_telemetry`.
    telemetry: Optional[MetricsRegistry] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @classmethod
    def failed(cls, cell: CampaignCell, message: str) -> "CampaignRow":
        nan = float("nan")
        return cls(
            cell=cell,
            p_mean=nan,
            p_max=nan,
            u_mean=nan,
            r_t=nan,
            g_tpw=nan,
            violations=0,
            frozen_server_minutes=nan,
            error=message,
        )

    def as_record(self) -> Dict[str, object]:
        return {
            "r_o": self.cell.over_provision_ratio,
            "workload": self.cell.workload_name,
            "seed": self.cell.seed,
            "p_mean": self.p_mean,
            "p_max": self.p_max,
            "u_mean": self.u_mean,
            "r_t": self.r_t,
            "g_tpw": self.g_tpw,
            "violations": self.violations,
            "trips": self.trips,
            "jobs_shed": self.jobs_shed,
            "frozen_server_minutes": self.frozen_server_minutes,
            "reallocations": self.reallocations,
            "tenancy_policy": self.tenancy_policy,
            "jain_index": self.jain_index,
            "error": self.error,
        }


def run_cell(cell: CampaignCell, config: CampaignRunConfig) -> CampaignRow:
    """Execute one campaign cell and return its Table 3 row.

    Pure function of its (picklable) arguments: every source of
    randomness in the experiment is derived from ``cell.seed``, so the
    same cell produces a bit-identical row no matter which process --
    or how many sibling processes -- runs it. This is the unit of work
    shipped to pool workers by :mod:`repro.sim.parallel`; keep it free
    of global state.

    With ``config.fleet`` set the cell runs the multi-row fleet harness
    instead: a hot row at the cell's workload and a cold row at
    ``workload.scaled(config.fleet_skew)``, under one facility budget.
    Fleet cells have no control group, so ``r_t``/``g_tpw`` are NaN.
    """
    if config.fleet is not None:
        return _run_fleet_cell(cell, config)
    experiment_config = ExperimentConfig(
        n_servers=config.n_servers,
        duration_hours=config.duration_hours,
        warmup_hours=config.warmup_hours,
        over_provision_ratio=cell.over_provision_ratio,
        scale_control_budget=False,  # Section 4.4 design
        workload=cell.workload,
        seed=cell.seed,
        faults=config.faults,
        safety=config.safety,
        telemetry_enabled=config.telemetry,
        engine_backend=config.engine_backend,
        tenancy=config.tenancy,
    )
    outcome = ControlledExperiment(experiment_config).run()
    summary = outcome.experiment.summary
    # Commanded freeze ratio per one-minute tick, so summing the u
    # series over the experiment group gives server-minutes directly.
    group_size = config.n_servers // 2
    interval_minutes = experiment_config.ampere.control_interval / 60.0
    frozen_minutes = float(
        np.sum(outcome.experiment.u_values) * group_size * interval_minutes
    )
    return CampaignRow(
        cell=cell,
        p_mean=summary.p_mean,
        p_max=summary.p_max,
        u_mean=summary.u_mean,
        r_t=outcome.r_t,
        g_tpw=outcome.g_tpw,
        violations=summary.violations,
        trips=(
            outcome.breaker_stats.trips if outcome.breaker_stats is not None else 0
        ),
        jobs_shed=(
            outcome.safety_stats.jobs_shed
            if outcome.safety_stats is not None
            else 0
        ),
        frozen_server_minutes=frozen_minutes,
        tenancy_policy=(
            outcome.tenancy.policy if outcome.tenancy is not None else None
        ),
        jain_index=(
            outcome.tenancy.jain_index if outcome.tenancy is not None else None
        ),
        telemetry=outcome.telemetry,
    )


def _run_fleet_cell(cell: CampaignCell, config: CampaignRunConfig) -> CampaignRow:
    """Fleet flavour of :func:`run_cell` (hot row + cold row, one budget)."""
    from repro.sim.fleet_experiment import (
        FleetExperiment,
        FleetExperimentConfig,
        FleetRowSpec,
    )

    half = config.n_servers // 2
    fleet_config = FleetExperimentConfig(
        rows=(
            FleetRowSpec(n_servers=half, workload=cell.workload),
            FleetRowSpec(
                n_servers=half,
                workload=cell.workload.scaled(config.fleet_skew),
            ),
        ),
        duration_hours=config.duration_hours,
        warmup_hours=config.warmup_hours,
        over_provision_ratio=cell.over_provision_ratio,
        fleet=config.fleet,
        seed=cell.seed,
        safety=config.safety,
        faults=config.faults,
        telemetry_enabled=config.telemetry,
        engine_backend=config.engine_backend,
        tenancy=config.tenancy,
    )
    result = FleetExperiment(fleet_config).run()
    duration_minutes = config.duration_hours * 60.0
    nan = float("nan")
    return CampaignRow(
        cell=cell,
        p_mean=result.facility.p_mean_watts / result.facility.budget_watts,
        p_max=result.facility.p_max_watts / result.facility.budget_watts,
        u_mean=result.total_frozen_server_minutes
        / (2 * half * duration_minutes),
        r_t=nan,
        g_tpw=nan,
        violations=result.total_violations,
        trips=result.total_breaker_trips,
        frozen_server_minutes=result.total_frozen_server_minutes,
        reallocations=(
            result.coordinator_stats.reallocations
            if result.coordinator_stats is not None
            else 0
        ),
        tenancy_policy=(
            result.tenancy.policy if result.tenancy is not None else None
        ),
        jain_index=(
            result.tenancy.jain_index if result.tenancy is not None else None
        ),
        telemetry=result.telemetry,
    )


@dataclass
class CampaignResult:
    """All rows of a finished campaign plus aggregation helpers."""

    rows: List[CampaignRow] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def failed_rows(self) -> List[CampaignRow]:
        return [r for r in self.rows if not r.ok]

    def filter(
        self,
        r_o: Optional[float] = None,
        workload: Optional[str] = None,
    ) -> List[CampaignRow]:
        out = self.rows
        if r_o is not None:
            out = [r for r in out if abs(r.cell.over_provision_ratio - r_o) < 1e-12]
        if workload is not None:
            out = [r for r in out if r.cell.workload_name == workload]
        return out

    def merged_telemetry(self) -> Optional[MetricsRegistry]:
        """One campaign-wide registry: every cell's registry merged.

        Merging always happens in *cell order* (``self.rows`` order), so
        serial and parallel runs -- which both return rows in cell order
        -- produce byte-identical merged snapshots. Returns ``None``
        when no row carries a registry (telemetry was off).
        """
        registries = [r.telemetry for r in self.rows if r.telemetry is not None]
        if not registries:
            return None
        return MetricsRegistry.merged(registries)

    def mean_gtpw(self, r_o: float, workload: Optional[str] = None) -> float:
        rows = [r for r in self.filter(r_o=r_o, workload=workload) if r.ok]
        if not rows:
            raise KeyError(f"no campaign rows for r_O={r_o}, workload={workload}")
        return sum(r.g_tpw for r in rows) / len(rows)

    def best_ratio(self, by: str = "worst_case") -> float:
        """The r_O maximizing mean G_TPW ('mean') or the minimum across
        workload levels ('worst_case', the robust choice)."""
        ratios = sorted({r.cell.over_provision_ratio for r in self.rows})
        workloads = sorted({r.cell.workload_name for r in self.rows})
        if not ratios:
            raise ValueError("empty campaign")

        def score(r_o: float) -> float:
            gains = [self.mean_gtpw(r_o, w) for w in workloads]
            return min(gains) if by == "worst_case" else sum(gains) / len(gains)

        return max(ratios, key=score)

    # ------------------------------------------------------------------
    def save_csv(self, path: Union[str, Path]) -> None:
        # Rendered fully in memory, then write-temp-then-rename: a crash
        # mid-save leaves the previous file intact, never a torn CSV.
        buffer = io.StringIO()
        # csv's default \r\n terminator is kept so the bytes match what
        # the previous direct-to-file writer produced.
        writer = csv.DictWriter(buffer, fieldnames=list(CAMPAIGN_RECORD_FIELDS))
        writer.writeheader()
        writer.writerows(row.as_record() for row in self.rows)
        atomic_write_text(path, buffer.getvalue())

    def save_json(self, path: Union[str, Path]) -> None:
        text = json.dumps([row.as_record() for row in self.rows], indent=2)
        atomic_write_text(path, text)


class Campaign:
    """Runs a grid of Section 4.4 experiments.

    Parameters
    ----------
    ratios / workloads / seeds:
        The grid: every combination becomes one cell ("day").
    n_servers / duration_hours / warmup_hours:
        Per-cell experiment configuration.
    """

    def __init__(
        self,
        ratios: Sequence[float] = (0.13, 0.17, 0.21, 0.25),
        workloads: Optional[Dict[str, WorkloadSpec]] = None,
        seeds: Sequence[int] = (13,),
        n_servers: int = 400,
        duration_hours: float = 12.0,
        warmup_hours: float = 1.0,
        faults: Optional[FaultScenario] = None,
        safety: Optional[SafetyConfig] = None,
        telemetry: bool = False,
        fleet: Optional[FleetConfig] = None,
        fleet_skew: float = 0.25,
        engine_backend: Optional[str] = None,
        tenancy: Optional[TenancyConfig] = None,
    ) -> None:
        if not ratios:
            raise ValueError("campaign needs at least one over-provision ratio")
        if not seeds:
            raise ValueError("campaign needs at least one seed")
        if workloads is None:
            workloads = {
                "light": WorkloadSpec.light(),
                "typical": WorkloadSpec.typical(),
                "heavy": WorkloadSpec.heavy(),
            }
        self.cells: List[CampaignCell] = [
            CampaignCell(r_o, name, spec, seed)
            for r_o in ratios
            for name, spec in workloads.items()
            for seed in seeds
        ]
        self.run_config = CampaignRunConfig(
            n_servers=n_servers,
            duration_hours=duration_hours,
            warmup_hours=warmup_hours,
            faults=faults,
            safety=safety,
            telemetry=telemetry,
            fleet=fleet,
            fleet_skew=fleet_skew,
            engine_backend=engine_backend,
            tenancy=tenancy,
        )

    # Backwards-compatible views of the per-cell configuration.
    @property
    def n_servers(self) -> int:
        return self.run_config.n_servers

    @property
    def duration_hours(self) -> float:
        return self.run_config.duration_hours

    @property
    def warmup_hours(self) -> float:
        return self.run_config.warmup_hours

    def __len__(self) -> int:
        return len(self.cells)

    def _open_checkpoint(
        self, checkpoint_dir: Optional[Union[str, Path]], resume: bool
    ):
        """Returns (checkpoint, completed-rows-by-index); (None, {}) if off."""
        if checkpoint_dir is None:
            if resume:
                raise ValueError("resume=True requires a checkpoint_dir")
            return None, {}
        from repro.sim.checkpoint import CampaignCheckpoint

        checkpoint = CampaignCheckpoint(checkpoint_dir)
        completed = checkpoint.initialize(self.cells, self.run_config, resume=resume)
        return checkpoint, completed

    def run(
        self,
        on_cell: Optional[CellCallback] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
    ) -> CampaignResult:
        """Execute every cell serially; ``on_cell`` is called after each.

        This is the reference implementation that the parallel path is
        tested against; a cell that raises propagates the exception.

        With ``checkpoint_dir`` set, every finished cell is durably
        recorded (atomic write) before the next begins; ``resume=True``
        restores previously recorded rows instead of re-running them
        (``on_cell`` fires only for freshly executed cells).
        """
        checkpoint, completed = self._open_checkpoint(checkpoint_dir, resume)
        result = CampaignResult()
        for index, cell in enumerate(self.cells):
            if index in completed:
                result.rows.append(completed[index])
                continue
            row = run_cell(cell, self.run_config)
            if checkpoint is not None:
                checkpoint.record(index, row)
            result.rows.append(row)
            if on_cell is not None:
                on_cell(cell, row)
        return result

    def run_parallel(
        self,
        max_workers: Optional[int] = None,
        on_cell: Optional[CellCallback] = None,
        chunksize: int = 1,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        cell_timeout: Optional[float] = None,
        retries: int = 1,
        retry_backoff: float = 0.0,
    ) -> CampaignResult:
        """Execute the grid on a process pool (see :mod:`repro.sim.parallel`).

        Returns rows identical to :meth:`run` for any ``max_workers``;
        ``on_cell`` fires in *completion* order (progress), while the
        returned rows are always in cell order. A cell that raises in a
        worker is retried (``retries`` times, with optional exponential
        ``retry_backoff`` seconds between attempts) and then recorded as
        a failed row (``row.error``) instead of aborting the sweep;
        ``cell_timeout`` additionally re-dispatches chunks whose worker
        has gone silent for that many seconds (stragglers, lost
        workers). Checkpointing semantics match :meth:`run`: finished
        cells are durably recorded as they complete, and ``resume=True``
        skips cells already on disk.
        """
        from repro.sim.parallel import run_cells_parallel

        checkpoint, completed = self._open_checkpoint(checkpoint_dir, resume)
        pending = [
            (index, cell)
            for index, cell in enumerate(self.cells)
            if index not in completed
        ]
        index_of = {id(cell): index for index, cell in pending}

        def record(cell: CampaignCell, row: CampaignRow) -> None:
            if checkpoint is not None:
                checkpoint.record(index_of[id(cell)], row)
            if on_cell is not None:
                on_cell(cell, row)

        fresh = run_cells_parallel(
            [cell for _, cell in pending],
            self.run_config,
            max_workers=max_workers,
            on_row=record,
            chunksize=chunksize,
            retries=retries,
            retry_backoff=retry_backoff,
            cell_timeout=cell_timeout,
        )
        rows: List[Optional[CampaignRow]] = [None] * len(self.cells)
        for index, row in completed.items():
            rows[index] = row
        for (index, _), row in zip(pending, fresh):
            rows[index] = row
        return CampaignResult(rows=rows)


__all__ = [
    "Campaign",
    "CampaignCell",
    "CampaignRow",
    "CampaignResult",
    "CampaignRunConfig",
    "CAMPAIGN_RECORD_FIELDS",
    "run_cell",
]
