"""Structured log of control-plane actions.

Production power controllers need an audit trail: who froze what, when,
and what the hardware safety net did underneath. The log subscribes to
the scheduler's control hooks (freeze/unfreeze/fail/repair) and to
per-server DVFS changes, timestamps everything against the simulation
clock, and supports range queries and CSV export for post-mortems.
"""

from __future__ import annotations

import csv
import io
from bisect import bisect_left
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.cluster.server import Server
from repro.durability.atomic import atomic_write_text
from repro.sim.engine import Engine
from repro.telemetry import Telemetry
from repro.telemetry.bridge import control_event_counter

KNOWN_KINDS = (
    "freeze",
    "unfreeze",
    "fail",
    "repair",
    "cap",
    "uncap",
    #: emergency actions: breaker open/close (group-level, server_id -1)
    #: and supervisor load shedding
    "trip",
    "reset",
    "shed",
    #: fleet-coordinator budget reallocations (group-level, server_id -2)
    "budget",
)

#: kinds whose ``detail`` gains a ``tenant=<name>`` annotation when a
#: tenant resolver is attached -- the per-server allocation actions a
#: fairness post-mortem needs to attribute
TENANT_ANNOTATED_KINDS = frozenset({"freeze", "unfreeze", "shed"})


@dataclass(frozen=True)
class ControlEvent:
    """One control action against one server."""

    time: float
    kind: str
    server_id: int
    detail: str = ""


class ControlEventLog:
    """Time-ordered record of every control action."""

    def __init__(
        self, engine: Engine, telemetry: Optional[Telemetry] = None
    ) -> None:
        self.engine = engine
        self.events: List[ControlEvent] = []
        tel = (
            telemetry
            if telemetry is not None
            else getattr(engine, "telemetry", None) or Telemetry.disabled()
        )
        self._kind_counters = {
            kind: control_event_counter(tel, kind) for kind in KNOWN_KINDS
        }
        self._tenant_resolver: Optional[Callable[[int], str]] = None

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def attach_tenant_resolver(self, resolver: Callable[[int], str]) -> None:
        """Annotate freeze/unfreeze/shed events with the owning tenant.

        ``resolver`` maps a server id to a tenant name and must return
        ``"-"`` for untagged servers. Annotation only fills an empty
        ``detail`` field, so caller-provided details always win.
        """
        self._tenant_resolver = resolver

    def record(self, kind: str, server_id: int, detail: str = "") -> None:
        if kind not in KNOWN_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        if not detail and kind in TENANT_ANNOTATED_KINDS:
            # Every freeze/shed is attributed: the tenant name when a
            # resolver is attached, "-" on untenanted runs, so the
            # operator-facing format never depends on the run's config.
            resolver = self._tenant_resolver
            detail = (
                f"tenant={resolver(server_id)}"
                if resolver is not None
                else "tenant=-"
            )
        self._kind_counters[kind].inc()
        self.events.append(
            ControlEvent(self.engine.now, kind, server_id, detail)
        )

    def attach_scheduler(self, scheduler) -> None:
        """Subscribe to a scheduler's freeze/unfreeze/fail/repair hooks."""
        scheduler.control_listeners.append(self.record)

    def attach_servers(self, servers: Iterable[Server]) -> None:
        """Subscribe to DVFS changes (capping activity) on servers."""
        for server in servers:
            server.frequency_listeners.append(self._on_frequency_change)

    def _on_frequency_change(self, server: Server, old: float, new: float) -> None:
        kind = "cap" if new < old else "uncap"
        self._kind_counters[kind].inc()
        self.events.append(
            ControlEvent(
                self.engine.now, kind, server.server_id, f"{old:.2f}->{new:.2f}"
            )
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def between(self, start: float, end: float) -> List[ControlEvent]:
        """Events with ``start <= time < end`` (log is append-ordered)."""
        times = [e.time for e in self.events]
        lo = bisect_left(times, start)
        hi = bisect_left(times, end)
        return self.events[lo:hi]

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def for_server(self, server_id: int) -> List[ControlEvent]:
        return [e for e in self.events if e.server_id == server_id]

    def freeze_durations(self) -> List[float]:
        """Completed freeze->unfreeze durations per server (diagnostics)."""
        open_freezes: Dict[int, float] = {}
        durations: List[float] = []
        for event in self.events:
            if event.kind == "freeze":
                open_freezes[event.server_id] = event.time
            elif event.kind == "unfreeze":
                started = open_freezes.pop(event.server_id, None)
                if started is not None:
                    durations.append(event.time - started)
        return durations

    # ------------------------------------------------------------------
    def dump_csv(self, path: Union[str, Path]) -> int:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["time", "kind", "server_id", "detail"])
        for event in self.events:
            writer.writerow(
                [repr(event.time), event.kind, event.server_id, event.detail]
            )
        atomic_write_text(path, buffer.getvalue())
        return len(self.events)


__all__ = [
    "ControlEvent",
    "ControlEventLog",
    "KNOWN_KINDS",
    "TENANT_ANNOTATED_KINDS",
]
