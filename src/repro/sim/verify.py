"""Snapshot verification shared by the CLI and the live service.

``ampere-repro verify-snapshot`` and the service's ``verify-snapshot``
endpoint answer the same question -- "does this durable frame restore
into a state whose invariants hold?" -- so the restore-and-audit sweep
lives here once and both front-ends format the structured report their
own way (table + exit code vs. JSON + HTTP status).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.audit import ALL_CHECKS, AuditorConfig

#: exit codes of the CLI command (and mapped onto HTTP statuses)
EXIT_OK = 0
EXIT_VIOLATIONS = 1
EXIT_UNREADABLE = 2


@dataclass
class VerifyReport:
    """Structured outcome of one snapshot verification sweep."""

    path: str
    exit_code: int
    kind: Optional[str] = None
    meta: Dict[str, object] = field(default_factory=dict)
    error: Optional[str] = None
    #: per-check violation counts, in check order (empty when unreadable)
    check_counts: Dict[str, int] = field(default_factory=dict)
    #: ``(check, message)`` pairs of every violation found
    violations: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.exit_code == EXIT_OK

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "ok": self.ok,
            "exit_code": self.exit_code,
            "kind": self.kind,
            "meta": dict(self.meta),
            "error": self.error,
            "checks": dict(self.check_counts),
            "violations": [
                {"check": check, "message": message}
                for check, message in self.violations
            ],
        }


def verify_snapshot_file(
    path: str, checks: Optional[Sequence[str]] = None
) -> VerifyReport:
    """Restore a durable snapshot and run a full invariant sweep.

    Never raises for bad input: unreadable/corrupt/unknown-kind frames
    come back with ``exit_code == EXIT_UNREADABLE`` and an ``error``
    message, invariant violations with ``exit_code == EXIT_VIOLATIONS``.
    """
    from repro.durability import SnapshotError, read_header
    from repro.sim.experiment import ControlledExperiment
    from repro.sim.fleet_experiment import FleetExperiment

    path = str(path)
    try:
        header = read_header(path)
    except (OSError, SnapshotError) as exc:
        return VerifyReport(
            path=path,
            exit_code=EXIT_UNREADABLE,
            error=f"cannot read snapshot: {exc}",
        )
    kind = header.get("kind")
    try:
        if kind == "experiment":
            experiment = ControlledExperiment.restore(path)
        elif kind == "fleet":
            experiment = FleetExperiment.restore(path)
        else:
            return VerifyReport(
                path=path,
                exit_code=EXIT_UNREADABLE,
                kind=kind,
                error=f"unknown snapshot kind {kind!r}",
            )
    except SnapshotError as exc:
        return VerifyReport(
            path=path,
            exit_code=EXIT_UNREADABLE,
            kind=kind,
            error=f"snapshot rejected: {exc}",
        )
    meta = dict(header.get("meta", {}))
    selected = tuple(checks) if checks else ALL_CHECKS
    auditor = experiment.build_auditor(
        AuditorConfig(
            sample_fraction=1.0, on_violation="record", checks=selected
        )
    )
    violations = auditor.audit(sample=False)
    report = VerifyReport(
        path=path,
        exit_code=EXIT_VIOLATIONS if violations else EXIT_OK,
        kind=kind,
        meta=meta,
        check_counts={
            check: sum(1 for v in violations if v.check == check)
            for check in selected
        },
        violations=[(v.check, v.message) for v in violations],
    )
    return report


__all__ = [
    "EXIT_OK",
    "EXIT_UNREADABLE",
    "EXIT_VIOLATIONS",
    "VerifyReport",
    "verify_snapshot_file",
]
