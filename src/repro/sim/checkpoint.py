"""Campaign checkpointing: per-cell durability for multi-day sweeps.

A 20-day campaign that loses every completed cell to one SIGKILL is not
a harness, it's a liability. The checkpoint protocol makes campaign
progress durable at cell granularity with nothing but atomic file
renames:

- ``manifest.json`` -- written once when a checkpointed campaign begins.
  Carries a fingerprint of the cell grid and run configuration, so a
  resume against a *different* campaign is refused instead of silently
  splicing unrelated rows together.
- ``cell_00042.json`` -- one file per completed cell, written atomically
  *after* the cell finishes. Contains the stable row document
  (:func:`~repro.analysis.serialize.campaign_row_to_dict`) plus, when
  telemetry was on, the cell's metrics-registry snapshot.

Because every write is write-temp-then-rename, a kill at any instant
leaves the directory in one of exactly two states per cell: complete row
file or no row file. Resume (:meth:`CampaignCheckpoint.load_completed`)
therefore never sees torn state; it re-runs any cell without a file and
replays the rest byte-identically -- row documents serialize floats
verbatim (``repr`` round-trip), so a resumed campaign's CSV is
byte-identical to an uninterrupted run's (proven in
``tests/test_crash_resume.py``).
"""

from __future__ import annotations

import hashlib
import json
import logging
from pathlib import Path
from typing import Dict, Sequence, Union

from repro.durability.atomic import atomic_write_text
from repro.sim.campaign import CampaignCell, CampaignRow, CampaignRunConfig

logger = logging.getLogger(__name__)

#: Manifest schema version; bump on incompatible layout changes.
CHECKPOINT_VERSION = 1

MANIFEST_NAME = "manifest.json"


class CheckpointError(RuntimeError):
    """The checkpoint directory is unusable for this campaign."""


def campaign_fingerprint(
    cells: Sequence[CampaignCell], run_config: CampaignRunConfig
) -> str:
    """Deterministic identity of (grid, configuration).

    Dataclass ``repr`` is stable (fixed field order, ``repr`` floats),
    covers nested configs (faults, safety, fleet, workloads) and needs
    no bespoke serializer for every config field ever added.
    """
    text = repr((list(cells), run_config))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _cell_filename(index: int) -> str:
    return f"cell_{index:05d}.json"


class CampaignCheckpoint:
    """One campaign's checkpoint directory."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    def initialize(
        self,
        cells: Sequence[CampaignCell],
        run_config: CampaignRunConfig,
        resume: bool = False,
    ) -> Dict[int, CampaignRow]:
        """Prepare the directory; returns already-completed rows by index.

        Fresh start (``resume=False``) requires a directory without a
        manifest (an existing one means a previous campaign lives here
        -- refusing beats silently clobbering durable progress). Resume
        validates the manifest fingerprint against *this* campaign and
        loads every completed cell file.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / MANIFEST_NAME
        fingerprint = campaign_fingerprint(cells, run_config)
        if manifest_path.exists():
            if not resume:
                raise CheckpointError(
                    f"{manifest_path} already exists; pass resume=True to "
                    "continue that campaign or use a fresh directory"
                )
            manifest = json.loads(manifest_path.read_text())
            if manifest.get("version") != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"checkpoint version {manifest.get('version')!r} is not "
                    f"supported (this build writes {CHECKPOINT_VERSION})"
                )
            if manifest.get("fingerprint") != fingerprint:
                raise CheckpointError(
                    "checkpoint fingerprint mismatch: the directory belongs "
                    "to a different campaign (grid or run configuration "
                    "changed since the checkpoint was written)"
                )
            completed = self.load_completed(len(cells))
            logger.info(
                "resuming campaign from %s: %d/%d cells already complete",
                self.directory,
                len(completed),
                len(cells),
            )
            return completed
        if resume:
            # A resume against an empty directory is a fresh start; write
            # the manifest and run everything (kill-before-manifest case).
            logger.info(
                "resume requested but %s has no manifest; starting fresh",
                self.directory,
            )
        manifest = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "n_cells": len(cells),
            "cells": [cell.label() for cell in cells],
        }
        atomic_write_text(manifest_path, json.dumps(manifest, indent=2) + "\n")
        return {}

    # ------------------------------------------------------------------
    def record(self, index: int, row: CampaignRow) -> None:
        """Durably record one completed cell (atomic, crash-consistent)."""
        from repro.analysis.serialize import campaign_row_to_dict

        doc = campaign_row_to_dict(row)
        if row.telemetry is not None:
            from repro.telemetry import snapshot as registry_snapshot

            doc["telemetry"] = registry_snapshot(row.telemetry)
        atomic_write_text(
            self.directory / _cell_filename(index),
            json.dumps(doc, indent=2, sort_keys=False) + "\n",
        )

    def load_completed(self, n_cells: int) -> Dict[int, CampaignRow]:
        """Rows already durably recorded, keyed by cell index."""
        from repro.analysis.serialize import campaign_row_from_dict

        completed: Dict[int, CampaignRow] = {}
        for index in range(n_cells):
            path = self.directory / _cell_filename(index)
            if not path.exists():
                continue
            doc = json.loads(path.read_text())
            row = campaign_row_from_dict(doc)
            if "telemetry" in doc:
                from repro.telemetry import registry_from_snapshot

                row.telemetry = registry_from_snapshot(doc["telemetry"])
            completed[index] = row
        return completed


__all__ = [
    "CHECKPOINT_VERSION",
    "CampaignCheckpoint",
    "CheckpointError",
    "campaign_fingerprint",
]
