"""Calibration experiments: freeze decay (Fig. 4) and freeze effect (Fig. 5).

These are the two data-driven measurements Section 3.4 of the paper
performs before deploying the controller:

- *Freeze decay*: freeze a set of high-power servers and watch their mean
  power drain toward idle as running jobs finish (~35 minutes in the
  paper, set by the job-duration distribution).
- *Freeze effect*: apply a freezing ratio ``u`` to the experiment group
  for one control interval and measure the power gap that opens against
  the control group; regressing the samples gives the linear slope
  ``k_r`` used by the SPCP controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.cluster.group import ServerGroup
from repro.core.freeze_model import FreezeEffectModel
from repro.core.policy import plan_freeze_set
from repro.sim.events import EventPriority
from repro.sim.testbed import Testbed, WorkloadSpec

MINUTE = 60.0


# ---------------------------------------------------------------------------
# Figure 4: power decay of frozen servers
# ---------------------------------------------------------------------------
@dataclass
class FreezeDecayResult:
    """Mean power of the frozen set, per minute since freezing."""

    minutes: np.ndarray
    mean_power_normalized_to_rated: np.ndarray
    n_frozen: int


def run_freeze_decay(
    n_freeze: int = 80,
    observe_minutes: int = 50,
    n_servers: int = 400,
    workload: WorkloadSpec = WorkloadSpec(target_utilization=0.30),
    warmup_hours: float = 2.0,
    seed: int = 0,
) -> FreezeDecayResult:
    """Reproduce the Figure 4 experiment.

    Builds a loaded cluster, freezes the ``n_freeze`` highest-power
    servers, and samples their mean power (normalized to rated power)
    every minute. The paper's curve decays from ~0.82 to ~0.70 of rated in
    about 35 minutes.
    """
    if n_freeze <= 0 or n_freeze > n_servers:
        raise ValueError(f"n_freeze must be in [1, {n_servers}], got {n_freeze}")
    testbed = Testbed(n_servers=n_servers, seed=seed)
    end = warmup_hours * 3600.0 + (observe_minutes + 2) * MINUTE
    generator = testbed.add_batch_workload(workload, end)
    generator.start(end)
    testbed.run(until=warmup_hours * 3600.0)

    servers = sorted(
        testbed.row.servers, key=lambda s: s.power_watts(), reverse=True
    )[:n_freeze]
    for server in servers:
        testbed.scheduler.freeze(server.server_id)

    samples: List[float] = []

    def observe() -> None:
        mean_power = float(
            np.mean([s.power_watts() / s.rated_watts for s in servers])
        )
        samples.append(mean_power)

    observe()  # t = 0, the moment of freezing
    testbed.engine.schedule_periodic(
        MINUTE,
        EventPriority.EXPERIMENT_HOOK,
        observe,
        until=testbed.engine.now + (observe_minutes + 0.5) * MINUTE,
    )
    testbed.run(until=end)
    return FreezeDecayResult(
        minutes=np.arange(len(samples), dtype=float),
        mean_power_normalized_to_rated=np.asarray(samples),
        n_frozen=n_freeze,
    )


# ---------------------------------------------------------------------------
# Figure 5: the freeze-effect function f(u) and k_r
# ---------------------------------------------------------------------------
@dataclass
class FreezeEffectResult:
    """Samples of (u, f(u)) and the fitted model."""

    model: FreezeEffectModel
    samples: List[Tuple[float, float]]

    @property
    def k_r(self) -> float:
        return self.model.k_r


class _FreezeEffectProbe:
    """State machine applying u for one minute, then recovering.

    Cycle per probe: APPLY (record the current inter-group gap and freeze
    ``u * n`` hottest experiment servers) -> MEASURE one minute later
    (record the gap again; the gap *increase* is the one-interval freeze
    effect f(u)) -> unfreeze everything and idle through a recovery period
    so the groups re-converge before the next probe.
    """

    def __init__(
        self,
        testbed: Testbed,
        experiment: ServerGroup,
        control: ServerGroup,
        u_values: List[float],
        rng: np.random.Generator,
        recovery_minutes: int = 3,
    ) -> None:
        self.testbed = testbed
        self.experiment = experiment
        self.control = control
        self.u_values = u_values
        self.rng = rng
        self.recovery_minutes = recovery_minutes
        self.samples: List[Tuple[float, float]] = []
        self._phase = "apply"
        self._recover_left = 0
        self._gap_before = 0.0
        self._current_u = 0.0

    def _gap(self) -> float:
        """Control minus experiment power, normalized to the budget."""
        control = self.control.power_watts() / self.control.power_budget_watts
        experiment = (
            self.experiment.power_watts() / self.experiment.power_budget_watts
        )
        return control - experiment

    def tick(self) -> None:
        if self._phase == "apply":
            self._apply()
        elif self._phase == "measure":
            self._measure()
        else:
            self._recover_left -= 1
            if self._recover_left <= 0:
                self._phase = "apply"

    def _apply(self) -> None:
        self._current_u = float(self.rng.choice(self.u_values))
        self._gap_before = self._gap()
        n_freeze = int(self._current_u * len(self.experiment.servers))
        powers = {s.server_id: s.power_watts() for s in self.experiment.servers}
        plan = plan_freeze_set(powers, n_freeze, set())
        for server_id in plan.to_freeze:
            self.testbed.scheduler.freeze(server_id)
        self._phase = "measure"

    def _measure(self) -> None:
        effect = self._gap() - self._gap_before
        self.samples.append((self._current_u, effect))
        for server_id in list(self.testbed.scheduler.frozen_server_ids()):
            self.testbed.scheduler.unfreeze(server_id)
        self._phase = "recover"
        self._recover_left = self.recovery_minutes


def run_freeze_effect_calibration(
    hours: float = 24.0,
    n_servers: int = 400,
    workload: WorkloadSpec = WorkloadSpec(target_utilization=0.25),
    u_values: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6),
    over_provision_ratio: float = 0.25,
    warmup_hours: float = 1.0,
    recovery_minutes: int = 3,
    seed: int = 0,
) -> FreezeEffectResult:
    """Reproduce the Section 3.4 / Figure 5 calibration experiment.

    Returns the fitted :class:`FreezeEffectModel` (its ``k_r`` is what the
    controller consumes) plus the raw samples for the Figure 5 percentile
    plot.
    """
    if hours <= 0:
        raise ValueError(f"hours must be positive, got {hours}")
    testbed = Testbed(n_servers=n_servers, seed=seed)
    experiment, control = testbed.split_by_parity()
    experiment.set_over_provision_ratio(over_provision_ratio)
    control.set_over_provision_ratio(over_provision_ratio)

    end = (warmup_hours + hours) * 3600.0
    generator = testbed.add_batch_workload(workload, end)
    generator.start(end)

    probe = _FreezeEffectProbe(
        testbed,
        experiment,
        control,
        list(u_values),
        rng=np.random.default_rng(seed + 1),
        recovery_minutes=recovery_minutes,
    )
    testbed.engine.schedule_periodic(
        MINUTE,
        EventPriority.EXPERIMENT_HOOK,
        probe.tick,
        first_at=warmup_hours * 3600.0,
        until=end,
    )
    testbed.run(until=end)

    model = FreezeEffectModel()
    model.add_samples(probe.samples)
    model.fit()
    return FreezeEffectResult(model=model, samples=probe.samples)


__all__ = [
    "run_freeze_decay",
    "FreezeDecayResult",
    "run_freeze_effect_calibration",
    "FreezeEffectResult",
]
