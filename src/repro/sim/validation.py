"""Validation of the harness: experiment design and live state.

Two layers of self-checking live behind this module:

- **Design validation** (Section 4.1.2): before trusting any A/B result,
  the paper validates that the parity split produces statistically
  identical groups -- with Ampere off, over five days the groups' mean
  power differs by less than 0.46% and their power series correlate at
  0.946. :func:`validate_group_similarity` reproduces that as a reusable
  check; run it whenever the workload model or scheduler policy changes.
- **State validation**: the online invariant auditor
  (:class:`~repro.sim.audit.StateAuditor`, re-exported here) verifies at
  run time that the live simulation state is internally consistent --
  ledger conservation, power-cache coherence, mask consistency, numeric
  sanity, event-queue monotonicity. Design validation says the harness
  *measures* fairly; state validation says it hasn't silently corrupted
  what it is measuring.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.analysis.stats import pearson_correlation
from repro.sim.audit import (
    ALL_CHECKS,
    AuditStats,
    AuditorConfig,
    InvariantViolation,
    StateAuditor,
)
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec


@dataclass(frozen=True)
class GroupSimilarityReport:
    """The two statistics the paper reports for the split's validity."""

    mean_power_difference: float
    power_correlation: float
    hours: float
    n_servers: int

    def acceptable(
        self, max_difference: float = 0.01, min_correlation: float = 0.6
    ) -> bool:
        """Whether the split is usable for controlled experiments.

        Thresholds are deliberately looser than the paper's measured
        values (0.46% / 0.946): they flag a broken harness, not normal
        statistical variation.
        """
        return (
            self.mean_power_difference < max_difference
            and self.power_correlation > min_correlation
        )


def validate_group_similarity(
    hours: float = 24.0,
    n_servers: int = 400,
    workload: WorkloadSpec = WorkloadSpec.typical(),
    seed: int = 0,
) -> GroupSimilarityReport:
    """Run the uncontrolled A/B and measure the groups' similarity.

    Ampere is off and budgets stay at rated power, so any divergence
    between the groups is harness bias, not control effect.
    """
    config = ExperimentConfig(
        n_servers=n_servers,
        duration_hours=hours,
        warmup_hours=1.0,
        over_provision_ratio=0.0,
        workload=workload,
        ampere_enabled=False,
        seed=seed,
    )
    result = ControlledExperiment(config).run()
    experiment = result.experiment.normalized_power
    control = result.control.normalized_power
    difference = abs(experiment.mean() - control.mean()) / control.mean()
    correlation = pearson_correlation(experiment, control)
    return GroupSimilarityReport(
        mean_power_difference=float(difference),
        power_correlation=float(correlation),
        hours=hours,
        n_servers=n_servers,
    )


__all__ = [
    "ALL_CHECKS",
    "AuditStats",
    "AuditorConfig",
    "GroupSimilarityReport",
    "InvariantViolation",
    "StateAuditor",
    "validate_group_similarity",
]
