"""Ampere reproduction: statistical power control for data center capacity.

This package reproduces the system described in "Increasing Large-Scale
Data Center Capacity by Statistical Power Control" (EuroSys 2016). It
contains:

- :mod:`repro.core` -- the Ampere power controller (the paper's contribution).
- :mod:`repro.cluster` -- the simulated physical substrate: servers, racks,
  rows, PDUs, circuit breakers and DVFS power capping.
- :mod:`repro.scheduler` -- a two-level, Omega-like job scheduler exposing the
  ``freeze``/``unfreeze`` API that Ampere relies on.
- :mod:`repro.workload` -- batch and interactive workload generators matching
  the distributions published in the paper.
- :mod:`repro.monitor` -- a per-minute power monitor backed by an in-memory
  time-series database (optionally through a simulated IPMI/BMC layer).
- :mod:`repro.sim` -- the discrete-event simulation engine and the controlled
  A/B experiment harness used throughout the evaluation.
- :mod:`repro.cooling` -- the workload-sensitive cooling extension
  (the paper's second future-work item).
- :mod:`repro.analysis` -- statistics (CDFs, percentiles, correlations,
  bootstrap CIs) and the paper's capacity metrics (TPW, G_TPW, violations).

The most common entry points are re-exported here.
"""

import logging

from repro.core.advisor import recommend_over_provision_ratio
from repro.core.config import AmpereConfig
from repro.core.controller import AmpereController
from repro.core.demand import (
    ConstantDemandEstimator,
    EwmaDemandEstimator,
    PowerDemandEstimator,
)
from repro.core.freeze_model import DEFAULT_K_R, FreezeEffectModel
from repro.sim.campaign import Campaign, CampaignRunConfig, run_cell
from repro.sim.experiment import ControlledExperiment, ExperimentConfig, ExperimentResult
from repro.sim.parallel import run_cells_parallel
from repro.sim.testbed import Testbed, WorkloadSpec

# Library convention: emit nothing unless the application configures
# logging (repro.telemetry.configure_logging or logging.basicConfig).
logging.getLogger(__name__).addHandler(logging.NullHandler())

__all__ = [
    "AmpereConfig",
    "AmpereController",
    "Campaign",
    "CampaignRunConfig",
    "ConstantDemandEstimator",
    "ControlledExperiment",
    "DEFAULT_K_R",
    "EwmaDemandEstimator",
    "ExperimentConfig",
    "ExperimentResult",
    "FreezeEffectModel",
    "PowerDemandEstimator",
    "Testbed",
    "WorkloadSpec",
    "recommend_over_provision_ratio",
    "run_cell",
    "run_cells_parallel",
    "__version__",
]

__version__ = "1.0.0"
