"""ASCII renderings of the paper's figures for terminal output.

The benchmark harness prints series; these helpers turn them into small
text plots -- a sparkline per series (Figures 8, 10, 12), a grayscale
heat map (Figure 2), and a column chart (Figure 11) -- so the qualitative
shape is visible without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

#: Eight-level block ramp used by sparklines.
SPARK_LEVELS = " ▁▂▃▄▅▆▇█"
#: Five-level shade ramp used by heat maps (mirrors Figure 2's grayscale).
HEAT_LEVELS = " ░▒▓█"


def _bin_means(values: np.ndarray, width: int) -> np.ndarray:
    """Downsample to ``width`` points by averaging equal chunks."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if len(values) <= width:
        return values
    edges = np.linspace(0, len(values), width + 1).astype(int)
    return np.array(
        [values[lo:hi].mean() for lo, hi in zip(edges[:-1], edges[1:]) if hi > lo]
    )


def sparkline(
    values: Sequence[float],
    width: int = 72,
    lo: float = None,
    hi: float = None,
) -> str:
    """One-line block-character plot of a series.

    ``lo``/``hi`` pin the value range (useful to share a scale across
    several sparklines); they default to the series min/max.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("sparkline requires at least one value")
    binned = _bin_means(array, width)
    low = array.min() if lo is None else lo
    high = array.max() if hi is None else hi
    if high <= low:
        return SPARK_LEVELS[1] * len(binned)
    scaled = np.clip((binned - low) / (high - low), 0.0, 1.0)
    indices = (scaled * (len(SPARK_LEVELS) - 2)).round().astype(int) + 1
    return "".join(SPARK_LEVELS[i] for i in indices)


def sparkline_with_scale(
    name: str, values: Sequence[float], width: int = 60
) -> str:
    """Labelled sparkline with min/max annotations."""
    array = np.asarray(values, dtype=float)
    line = sparkline(array, width=width)
    return f"{name:<12} {array.min():7.3f} |{line}| {array.max():7.3f}"


def heatmap(
    rows: Dict[str, Sequence[float]],
    width: int = 72,
    lo: float = None,
    hi: float = None,
) -> str:
    """Multi-row grayscale heat map (Figure 2's presentation).

    All rows share one color scale so spatial imbalance is visible.
    """
    if not rows:
        raise ValueError("heatmap requires at least one row")
    arrays = {name: np.asarray(v, dtype=float) for name, v in rows.items()}
    all_values = np.concatenate(list(arrays.values()))
    low = all_values.min() if lo is None else lo
    high = all_values.max() if hi is None else hi
    span = high - low if high > low else 1.0
    label_width = max(len(name) for name in arrays)
    lines = []
    for name, values in arrays.items():
        binned = _bin_means(values, width)
        scaled = np.clip((binned - low) / span, 0.0, 1.0)
        indices = (scaled * (len(HEAT_LEVELS) - 1)).round().astype(int)
        cells = "".join(HEAT_LEVELS[i] for i in indices)
        lines.append(f"{name:<{label_width}} |{cells}|")
    lines.append(f"{'':<{label_width}}  scale: {low:.3f} (light) .. {high:.3f} (dark)")
    return "\n".join(lines)


def column_chart(
    pairs: Dict[str, float], width: int = 48, unit: str = ""
) -> str:
    """Horizontal bar chart for categorical comparisons (Figure 11)."""
    if not pairs:
        raise ValueError("column_chart requires at least one entry")
    top = max(pairs.values())
    if top <= 0:
        raise ValueError("column_chart requires a positive maximum")
    label_width = max(len(k) for k in pairs)
    lines: List[str] = []
    for name, value in pairs.items():
        bar = "█" * max(1, int(round(width * value / top)))
        lines.append(f"{name:<{label_width}} {bar} {value:.3g}{unit}")
    return "\n".join(lines)


__all__ = ["sparkline", "sparkline_with_scale", "heatmap", "column_chart"]
