"""Statistical helpers behind the paper's figures.

These implement the exact constructions the paper describes: empirical
CDFs (Figures 1, 7, 9), first-order power differences and their multi-
scale variant (Figure 9's k-minute scale), and cross-row power
correlations (Section 2.2's "80% of the correlation coefficients are
under 0.33").
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def empirical_cdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_probabilities)``."""
    values = np.sort(np.asarray(samples, dtype=float))
    if values.size == 0:
        raise ValueError("empirical_cdf requires at least one sample")
    probs = np.arange(1, values.size + 1) / values.size
    return values, probs


def cdf_at(samples: Sequence[float], x: float) -> float:
    """Fraction of samples <= x."""
    values = np.asarray(samples, dtype=float)
    if values.size == 0:
        raise ValueError("cdf_at requires at least one sample")
    return float(np.mean(values <= x))


def first_order_differences(values: Sequence[float]) -> np.ndarray:
    """Successive differences ``v[i+1] - v[i]`` (1-minute power changes)."""
    array = np.asarray(values, dtype=float)
    if array.size < 2:
        raise ValueError("need at least two points to difference")
    return np.diff(array)


def k_scale_max_differences(values: Sequence[float], k: int) -> np.ndarray:
    """Figure 9's k-minute-scale power changes.

    "For the k-minute scale, we compute a sequence of the maximum power
    for every k minutes, and then plot the CDF of the first order
    differences of the power sequence." Trailing points that do not fill a
    complete window are dropped.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    array = np.asarray(values, dtype=float)
    n_windows = array.size // k
    if n_windows < 2:
        raise ValueError(
            f"need at least 2 complete windows of {k} points, have {array.size} points"
        )
    windows = array[: n_windows * k].reshape(n_windows, k)
    return np.diff(windows.max(axis=1))


def pearson_correlation(a: Sequence[float], b: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length series."""
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise ValueError("need at least two points")
    sx = x.std()
    sy = y.std()
    if sx == 0 or sy == 0:
        raise ValueError("correlation undefined for a constant series")
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy))


def pairwise_correlations(series: Sequence[Sequence[float]]) -> List[float]:
    """Correlation coefficient of every unordered pair of series."""
    if len(series) < 2:
        raise ValueError("need at least two series")
    out: List[float] = []
    for i in range(len(series)):
        for j in range(i + 1, len(series)):
            out.append(pearson_correlation(series[i], series[j]))
    return out


__all__ = [
    "empirical_cdf",
    "cdf_at",
    "first_order_differences",
    "k_scale_max_differences",
    "pearson_correlation",
    "pairwise_correlations",
]
