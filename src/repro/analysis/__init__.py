"""Statistics and capacity metrics used by the paper's evaluation."""

from repro.analysis.stats import (
    empirical_cdf,
    first_order_differences,
    k_scale_max_differences,
    pearson_correlation,
    pairwise_correlations,
)
from repro.analysis.metrics import (
    count_violations,
    throughput_per_watt,
    gain_in_tpw,
    GroupRunSummary,
    summarize_power_series,
)
from repro.analysis.report import render_table, render_cdf, format_percent
from repro.analysis.ascii_plots import (
    column_chart,
    heatmap,
    sparkline,
    sparkline_with_scale,
)
from repro.analysis.bootstrap import (
    ConfidenceInterval,
    bootstrap_ci,
    gtpw_ci,
    throughput_ratio_ci,
)
from repro.analysis.model import CapacityModel

# NOTE: repro.analysis.serialize is intentionally NOT imported here: it
# depends on repro.sim.experiment, which itself imports this package --
# import it as a module (``from repro.analysis.serialize import ...``).

__all__ = [
    "empirical_cdf",
    "first_order_differences",
    "k_scale_max_differences",
    "pearson_correlation",
    "pairwise_correlations",
    "count_violations",
    "throughput_per_watt",
    "gain_in_tpw",
    "GroupRunSummary",
    "summarize_power_series",
    "render_table",
    "render_cdf",
    "format_percent",
    "column_chart",
    "heatmap",
    "sparkline",
    "sparkline_with_scale",
    "ConfidenceInterval",
    "bootstrap_ci",
    "gtpw_ci",
    "throughput_ratio_ci",
    "CapacityModel",
]
