"""Serialization of experiment results to plain JSON.

A recorded :class:`~repro.sim.experiment.ExperimentResult` round-trips to
a JSON document containing the configuration, per-group summaries and the
measured series, so runs can be archived, diffed across code versions,
and post-processed without re-simulating.

Campaign rows get the same treatment: :func:`campaign_row_to_dict` /
:func:`campaign_row_from_dict` define the *stable* row representation
used at the parallel worker boundary and by the golden campaign fixture
-- key order is fixed, floats are written verbatim, and a row (including
its cell and workload spec) reconstructs exactly.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Union

import numpy as np

from repro.analysis.metrics import GroupRunSummary
from repro.durability.atomic import atomic_write_text
from repro.sim.campaign import CampaignCell, CampaignResult, CampaignRow
from repro.sim.experiment import ExperimentResult, GroupOutcome
from repro.sim.testbed import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a hard fleet import
    from repro.sim.fleet_experiment import FleetResult


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of config values to JSON-safe types."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)  # policies and other live objects


def summary_to_dict(summary: GroupRunSummary) -> Dict[str, Any]:
    return {
        "name": summary.name,
        "p_mean": summary.p_mean,
        "p_max": summary.p_max,
        "u_mean": summary.u_mean,
        "u_max": summary.u_max,
        "violations": summary.violations,
        "throughput": summary.throughput,
    }


def outcome_to_dict(outcome: GroupOutcome, include_series: bool = True) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "summary": summary_to_dict(outcome.summary),
        "throughput": outcome.throughput,
    }
    if include_series:
        payload["power_times"] = outcome.power_times.tolist()
        payload["normalized_power"] = outcome.normalized_power.tolist()
        payload["u_times"] = outcome.u_times.tolist()
        payload["u_values"] = outcome.u_values.tolist()
    return payload


def result_to_dict(
    result: ExperimentResult, include_series: bool = True
) -> Dict[str, Any]:
    """Full experiment result as a JSON-serializable dict."""
    payload: Dict[str, Any] = {
        "config": _jsonable(result.config),
        "experiment": outcome_to_dict(result.experiment, include_series),
        "control": outcome_to_dict(result.control, include_series),
        "r_t": result.r_t,
        "g_tpw": result.g_tpw,
    }
    # Safety-ladder outcomes only appear when a breaker/supervisor was
    # armed, keeping documents from safety-free runs byte-stable.
    if result.breaker_stats is not None:
        payload["breaker"] = _jsonable(result.breaker_stats.snapshot())
    if result.safety_stats is not None:
        payload["safety"] = _jsonable(result.safety_stats.snapshot())
    if result.facility is not None:
        payload["facility"] = _jsonable(result.facility)
    # Tenancy stats only appear for multi-tenant runs, keeping documents
    # from untenanted runs byte-stable (the config's ``tenancy: null`` is
    # additive and serializes via _jsonable like every other field).
    if result.tenancy is not None:
        payload["tenancy"] = _jsonable(result.tenancy)
    return payload


def fleet_result_to_dict(result: "FleetResult") -> Dict[str, Any]:
    """A fleet run as a JSON-serializable dict (stable key order).

    Imported lazily so loading this module never pulls the fleet
    package in for single-row workflows.
    """
    return {
        "config": _jsonable(result.config),
        "rows": [
            {
                "name": row.name,
                "summary": summary_to_dict(row.summary),
                "static_budget_watts": row.static_budget_watts,
                "final_allocation_watts": row.final_allocation_watts,
                "rating_watts": row.rating_watts,
                "frozen_server_minutes": row.frozen_server_minutes,
                "breaker_trips": row.breaker_trips,
                "mean_wait_seconds": row.mean_wait_seconds,
                "p99_wait_seconds": row.p99_wait_seconds,
            }
            for row in result.rows
        ],
        "facility": _jsonable(result.facility),
        "ledger": _jsonable(result.ledger),
        "coordinator": _jsonable(result.coordinator_stats),
        "faults": _jsonable(result.fault_stats),
        **(
            {"tenancy": _jsonable(result.tenancy)}
            if result.tenancy is not None
            else {}
        ),
    }


def save_result_json(
    result: ExperimentResult,
    path: Union[str, Path],
    include_series: bool = True,
) -> None:
    """Write a result to ``path`` as indented JSON (atomically)."""
    atomic_write_text(path, json.dumps(result_to_dict(result, include_series), indent=2))


def load_result_dict(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a saved result document (as a dict; the live objects are not
    reconstructed -- archived runs are data, not simulations)."""
    with open(path) as handle:
        return json.load(handle)


# ---------------------------------------------------------------------------
# Campaign rows: the stable record format of the worker boundary
# ---------------------------------------------------------------------------

def campaign_cell_to_dict(cell: CampaignCell) -> Dict[str, Any]:
    return {
        "over_provision_ratio": cell.over_provision_ratio,
        "workload_name": cell.workload_name,
        "workload": _jsonable(cell.workload),
        "seed": cell.seed,
    }


def campaign_cell_from_dict(doc: Dict[str, Any]) -> CampaignCell:
    return CampaignCell(
        over_provision_ratio=doc["over_provision_ratio"],
        workload_name=doc["workload_name"],
        workload=WorkloadSpec(**doc["workload"]),
        seed=doc["seed"],
    )


def campaign_row_to_dict(row: CampaignRow) -> Dict[str, Any]:
    """Stable JSON form of one campaign row, cell included.

    Fixed key order and verbatim floats: serial and parallel execution
    of the same campaign must produce byte-identical documents.
    """
    return {
        "cell": campaign_cell_to_dict(row.cell),
        "p_mean": row.p_mean,
        "p_max": row.p_max,
        "u_mean": row.u_mean,
        "r_t": row.r_t,
        "g_tpw": row.g_tpw,
        "violations": row.violations,
        "trips": row.trips,
        "jobs_shed": row.jobs_shed,
        "frozen_server_minutes": row.frozen_server_minutes,
        "reallocations": row.reallocations,
        # Tenancy columns are emitted only for tenanted cells so the
        # golden campaign fixture (untenanted) stays byte-identical.
        **(
            {
                "tenancy_policy": row.tenancy_policy,
                "jain_index": row.jain_index,
            }
            if row.tenancy_policy is not None
            else {}
        ),
        "error": row.error,
    }


def campaign_row_from_dict(doc: Dict[str, Any]) -> CampaignRow:
    return CampaignRow(
        cell=campaign_cell_from_dict(doc["cell"]),
        p_mean=doc["p_mean"],
        p_max=doc["p_max"],
        u_mean=doc["u_mean"],
        r_t=doc["r_t"],
        g_tpw=doc["g_tpw"],
        violations=doc["violations"],
        trips=doc.get("trips", 0),
        jobs_shed=doc.get("jobs_shed", 0),
        frozen_server_minutes=doc.get("frozen_server_minutes", 0.0),
        reallocations=doc.get("reallocations", 0),
        tenancy_policy=doc.get("tenancy_policy"),
        jain_index=doc.get("jain_index"),
        error=doc.get("error"),
    )


def campaign_rows_to_dicts(rows: Iterable[CampaignRow]) -> List[Dict[str, Any]]:
    return [campaign_row_to_dict(row) for row in rows]


def save_campaign_json(
    result: CampaignResult, path: Union[str, Path]
) -> None:
    """Archive a campaign's rows (full cells, reconstructable; atomic)."""
    atomic_write_text(path, json.dumps(campaign_rows_to_dicts(result.rows), indent=2))


def load_campaign_result(path: Union[str, Path]) -> CampaignResult:
    """Rebuild a :class:`CampaignResult` from :func:`save_campaign_json`
    output; unlike experiment series, rows are small enough to revive."""
    with open(path) as handle:
        docs = json.load(handle)
    return CampaignResult(rows=[campaign_row_from_dict(doc) for doc in docs])


__all__ = [
    "fleet_result_to_dict",
    "result_to_dict",
    "summary_to_dict",
    "outcome_to_dict",
    "save_result_json",
    "load_result_dict",
    "campaign_cell_to_dict",
    "campaign_cell_from_dict",
    "campaign_row_to_dict",
    "campaign_row_from_dict",
    "campaign_rows_to_dicts",
    "save_campaign_json",
    "load_campaign_result",
]
