"""Plain-text rendering of tables and series for the benchmark harness.

The benchmarks print the same rows/series the paper reports; these helpers
keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_percent(value: float, digits: int = 1) -> str:
    """``0.177 -> '17.7%'``."""
    return f"{value * 100:.{digits}f}%"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    string_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_cdf(
    name: str,
    values: Sequence[float],
    probabilities: Sequence[float],
    points: Sequence[float] = (0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0),
) -> str:
    """Render a CDF as the value reached at selected cumulative probabilities."""
    if len(values) != len(probabilities):
        raise ValueError("values and probabilities must have equal length")
    lines = [f"CDF: {name}"]
    for p in points:
        # first index where cumulative probability reaches p
        for v, q in zip(values, probabilities):
            if q >= p:
                lines.append(f"  P{p * 100:5.1f} <= {v:.4g}")
                break
    return "\n".join(lines)


__all__ = ["render_table", "render_cdf", "format_percent"]
