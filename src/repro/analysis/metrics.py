"""Capacity metrics: violations, TPW and the gain in TPW.

Throughput per Provisioned Watt (Eq. 17):

    TPW = (jobs accepted during T) / (P_M * T)

Gain in TPW by over-provisioning (Eq. 18), with throughput ratio
``r_T = thru_E / thru_C`` and over-provision ratio ``r_O``:

    G_TPW = r_T * (1 + r_O) - 1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def count_violations(power_values: Sequence[float], budget: float = 1.0) -> int:
    """Number of sampled intervals with power strictly above the budget."""
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    values = np.asarray(power_values, dtype=float)
    return int(np.sum(values > budget))


def throughput_per_watt(
    jobs_accepted: int, provisioned_watts: float, duration_seconds: float
) -> float:
    """Eq. 17: TPW in jobs per watt-second."""
    if provisioned_watts <= 0 or duration_seconds <= 0:
        raise ValueError("provisioned_watts and duration_seconds must be positive")
    if jobs_accepted < 0:
        raise ValueError(f"jobs_accepted must be non-negative, got {jobs_accepted}")
    return jobs_accepted / (provisioned_watts * duration_seconds)


def throughput_ratio(throughput_experiment: int, throughput_control: int) -> float:
    """r_T = thru_E / thru_C (generally <= 1: freezing costs throughput)."""
    if throughput_control <= 0:
        raise ValueError("control throughput must be positive")
    if throughput_experiment < 0:
        raise ValueError("experiment throughput must be non-negative")
    return throughput_experiment / throughput_control


def gain_in_tpw(r_t: float, r_o: float) -> float:
    """Eq. 18: G_TPW = r_T * (1 + r_O) - 1."""
    if r_t < 0:
        raise ValueError(f"r_t must be non-negative, got {r_t}")
    if r_o < 0:
        raise ValueError(f"r_o must be non-negative, got {r_o}")
    return r_t * (1.0 + r_o) - 1.0


@dataclass(frozen=True)
class GroupRunSummary:
    """Per-group run statistics: one column of the paper's Table 2."""

    name: str
    p_mean: float
    p_max: float
    u_mean: float
    u_max: float
    violations: int
    throughput: int

    def as_row(self) -> list:
        return [
            self.name,
            f"{self.u_mean:.1%}",
            f"{self.u_max:.1%}",
            f"{self.p_mean:.3f}",
            f"{self.p_max:.3f}",
            str(self.violations),
        ]


@dataclass(frozen=True)
class FacilitySummary:
    """Facility-level power vs the facility budget.

    Absolute watts, not normalized: the facility budget is the one
    quantity the fleet coordinator conserves, so the report shows it in
    the units the ledger accounts in.
    """

    budget_watts: float
    p_mean_watts: float
    p_max_watts: float
    violations: int
    samples: int

    def as_row(self) -> list:
        return [
            "facility",
            f"{self.budget_watts:.0f} W",
            f"{self.p_mean_watts:.0f} W",
            f"{self.p_max_watts:.0f} W",
            str(self.violations),
        ]


def summarize_facility_series(
    budget_watts: float, power_watts: Sequence[float]
) -> FacilitySummary:
    """Build a :class:`FacilitySummary` from an absolute power series."""
    if budget_watts <= 0:
        raise ValueError(f"budget_watts must be positive, got {budget_watts}")
    power = np.asarray(power_watts, dtype=float)
    if power.size == 0:
        raise ValueError("empty facility power series")
    return FacilitySummary(
        budget_watts=float(budget_watts),
        p_mean_watts=float(power.mean()),
        p_max_watts=float(power.max()),
        violations=count_violations(power, budget_watts),
        samples=int(power.size),
    )


def summarize_power_series(
    name: str,
    normalized_power: Sequence[float],
    u_history: Sequence[float] = (),
    throughput: int = 0,
    budget: float = 1.0,
) -> GroupRunSummary:
    """Build a :class:`GroupRunSummary` from raw series."""
    power = np.asarray(normalized_power, dtype=float)
    if power.size == 0:
        raise ValueError("empty power series")
    u = np.asarray(u_history, dtype=float) if len(u_history) else np.zeros(1)
    return GroupRunSummary(
        name=name,
        p_mean=float(power.mean()),
        p_max=float(power.max()),
        u_mean=float(u.mean()),
        u_max=float(u.max()),
        violations=count_violations(power, budget),
        throughput=throughput,
    )


__all__ = [
    "count_violations",
    "throughput_per_watt",
    "throughput_ratio",
    "gain_in_tpw",
    "FacilitySummary",
    "GroupRunSummary",
    "summarize_facility_series",
    "summarize_power_series",
]
