"""Closed-form steady-state capacity model.

Experiments take minutes; planners want a curve in microseconds. Under
the repository's power model the steady-state mean of a row's normalized
power is an affine function of task utilization:

    P_norm(u, r_O) = (f_idle + (1 - f_idle) * min(1, u + b)) * (1 + r_O)

with ``f_idle`` the idle fraction and ``b`` the background utilization.
From it follow the planner's questions: how hot a workload fits under a
given over-provisioning ratio, where the controller's threshold starts
binding, and what G_TPW to expect. The tests validate every prediction
against full simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.power import PowerModelParams


@dataclass(frozen=True)
class CapacityModel:
    """Analytic steady-state model of a homogeneous controlled row."""

    power_params: PowerModelParams = PowerModelParams()
    background_utilization: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.background_utilization < 1.0:
            raise ValueError(
                f"background_utilization must be in [0, 1), got "
                f"{self.background_utilization}"
            )

    # ------------------------------------------------------------------
    def predicted_power(self, task_utilization: float, r_o: float = 0.0) -> float:
        """Mean normalized row power at a given task utilization."""
        if not 0.0 <= task_utilization <= 1.0:
            raise ValueError(
                f"task_utilization must be in [0, 1], got {task_utilization}"
            )
        if r_o < 0:
            raise ValueError(f"r_o must be non-negative, got {r_o}")
        f_idle = self.power_params.idle_fraction
        total = min(1.0, task_utilization + self.background_utilization)
        return (f_idle + (1.0 - f_idle) * total) * (1.0 + r_o)

    def utilization_for_power(self, p_norm: float, r_o: float = 0.0) -> float:
        """Inverse of :meth:`predicted_power` (task utilization)."""
        f_idle = self.power_params.idle_fraction
        total = (p_norm / (1.0 + r_o) - f_idle) / (1.0 - f_idle)
        utilization = total - self.background_utilization
        if not -1e-9 <= utilization <= 1.0 + 1e-9:
            raise ValueError(
                f"power {p_norm} at r_O={r_o} implies utilization "
                f"{utilization:.3f} outside [0, 1]"
            )
        return min(1.0, max(0.0, utilization))

    def max_safe_utilization(
        self, r_o: float, threshold: float = 0.975
    ) -> float:
        """Highest task utilization that keeps the controller idle.

        Above it, mean power crosses the control threshold and freezing
        starts eating throughput (the G_TPW collapse of Table 3).
        """
        return self.utilization_for_power(threshold, r_o)

    def max_safe_over_provision(
        self, task_utilization: float, threshold: float = 0.975
    ) -> float:
        """Largest r_O keeping mean power under the threshold at this load."""
        base = self.predicted_power(task_utilization, r_o=0.0)
        if base <= 0:
            raise ValueError("degenerate power model")
        r_o = threshold / base - 1.0
        if r_o < 0:
            raise ValueError(
                f"utilization {task_utilization} already exceeds the "
                f"threshold with no over-provisioning"
            )
        return r_o

    def predicted_gain(self, task_utilization: float, r_o: float,
                       threshold: float = 0.975) -> float:
        """First-order G_TPW estimate: full r_O below the threshold, zero
        above it (the controller freezes away exactly the overshoot)."""
        if self.predicted_power(task_utilization, r_o) <= threshold:
            return r_o
        # Over the threshold the budget binds; extra servers only help in
        # the head-room that remains (crude but directionally right).
        headroom = max(
            0.0, 1.0 - self.predicted_power(task_utilization, 0.0)
        )
        usable = min(r_o, headroom / max(1e-9, self.predicted_power(task_utilization, 0.0)))
        return usable


__all__ = ["CapacityModel"]
