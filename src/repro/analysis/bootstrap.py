"""Bootstrap confidence intervals for the capacity metrics.

The paper reports point estimates of r_T and G_TPW per day; with the
simulator we can quantify their sampling uncertainty by resampling the
paired per-minute throughput series (paired, because both groups see the
same demand minute by minute -- resampling minutes keeps that coupling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.analysis.metrics import gain_in_tpw


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided bootstrap percentile interval."""

    point: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> ConfidenceInterval:
    """Percentile bootstrap CI of ``statistic`` over ``samples``."""
    data = np.asarray(samples, dtype=float)
    if data.size < 2:
        raise ValueError("bootstrap needs at least two samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 100:
        raise ValueError(f"n_resamples must be >= 100, got {n_resamples}")
    rng = rng if rng is not None else np.random.default_rng(0)
    stats = np.empty(n_resamples)
    n = data.size
    for i in range(n_resamples):
        stats[i] = statistic(data[rng.integers(0, n, size=n)])
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        point=float(statistic(data)),
        low=float(np.percentile(stats, 100 * alpha)),
        high=float(np.percentile(stats, 100 * (1 - alpha))),
        confidence=confidence,
    )


def throughput_ratio_ci(
    per_minute_experiment: Sequence[int],
    per_minute_control: Sequence[int],
    n_resamples: int = 2000,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> ConfidenceInterval:
    """Bootstrap CI for r_T from paired per-minute placement counts.

    Minutes are resampled jointly so the demand coupling between the
    groups is preserved.
    """
    experiment = np.asarray(per_minute_experiment, dtype=float)
    control = np.asarray(per_minute_control, dtype=float)
    if experiment.shape != control.shape:
        raise ValueError("paired series must have equal length")
    if experiment.size < 2:
        raise ValueError("need at least two minutes")
    if control.sum() <= 0:
        raise ValueError("control group accepted no jobs")
    rng = rng if rng is not None else np.random.default_rng(0)
    n = experiment.size
    ratios = np.empty(n_resamples)
    for i in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        denom = control[idx].sum()
        ratios[i] = experiment[idx].sum() / denom if denom > 0 else np.nan
    ratios = ratios[~np.isnan(ratios)]
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        point=float(experiment.sum() / control.sum()),
        low=float(np.percentile(ratios, 100 * alpha)),
        high=float(np.percentile(ratios, 100 * (1 - alpha))),
        confidence=confidence,
    )


def gtpw_ci(
    per_minute_experiment: Sequence[int],
    per_minute_control: Sequence[int],
    r_o: float,
    **kwargs,
) -> ConfidenceInterval:
    """Bootstrap CI for G_TPW = r_T * (1 + r_O) - 1 (Eq. 18)."""
    r_t = throughput_ratio_ci(per_minute_experiment, per_minute_control, **kwargs)
    return ConfidenceInterval(
        point=gain_in_tpw(r_t.point, r_o),
        low=gain_in_tpw(max(0.0, r_t.low), r_o),
        high=gain_in_tpw(r_t.high, r_o),
        confidence=r_t.confidence,
    )


__all__ = ["ConfidenceInterval", "bootstrap_ci", "throughput_ratio_ci", "gtpw_ci"]
