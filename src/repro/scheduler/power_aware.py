"""Power-aware placement: the paper's first future-work direction.

Section 6: "we are exploring ways to schedule the jobs to different rows
so that there can be a larger variance in power utilization across
different rows, leading to more unused power to cultivate. Note that even
with the improvement, we can still use the simple interface of Ampere."

:class:`CoolestRowPolicy` implements the natural first version: among the
servers that fit, prefer those in the row with the most unused power
(normalized to its budget). It keeps the Ampere interface untouched --
the policy lives entirely inside the scheduler's upper level, and the
controller still only freezes/unfreezes.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.cluster.row import Row
from repro.scheduler.policies import PlacementPolicy
from repro.scheduler.resources import ResourceTracker

RowPowerLookup = Callable[[], Dict[int, float]]


class CoolestRowPolicy(PlacementPolicy):
    """Place new jobs in the row with the lowest normalized power.

    Parameters
    ----------
    rows:
        The rows whose power guides placement. Normalized power is read
        directly from the row objects (the scheduler in production would
        read the same per-minute aggregate the controller reads; the
        difference is irrelevant at placement granularity).
    temperature:
        Softness of the preference. 0 = always the coolest row that has a
        fitting candidate; larger values blend toward uniform choice,
        which keeps some of the randomness the statistical control likes.
    """

    def __init__(self, rows: Sequence[Row], temperature: float = 0.05) -> None:
        if not rows:
            raise ValueError("CoolestRowPolicy needs at least one row")
        if temperature < 0:
            raise ValueError(f"temperature must be non-negative, got {temperature}")
        self.rows = list(rows)
        self.temperature = temperature

    def select(
        self,
        tracker: ResourceTracker,
        candidates: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        row_power = {row.row_id: row.normalized_power() for row in self.rows}
        candidate_rows = np.array(
            [tracker.server_at(int(i)).row_id for i in candidates]
        )
        # Weight each candidate by how much headroom its row has.
        headroom = np.array(
            [max(1e-6, 1.0 - row_power.get(r, 1.0)) for r in candidate_rows]
        )
        if self.temperature > 0:
            weights = headroom + self.temperature
        else:
            # Hard mode: restrict to the coolest represented row.
            best = headroom.max()
            weights = np.where(headroom >= best - 1e-12, 1.0, 0.0)
        weights = weights / weights.sum()
        return int(candidates[rng.choice(len(candidates), p=weights)])


__all__ = ["CoolestRowPolicy", "RowPowerLookup"]
