"""Low-level resource tracking with vectorized candidate search.

The tracker mirrors per-server free resources and freeze flags into numpy
arrays so a placement query ("which unfrozen servers fit 2 cores / 4 GB in
row 3?") is a single vectorized filter. This is the part of the paper's
low-level scheduler that "tracks the status of resources [and] bundles
them into abstract resource containers".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.server import Server


class ResourceTracker:
    """Numpy-mirrored view of server resources for fast placement queries.

    The :class:`~repro.cluster.server.Server` objects remain the source of
    truth; every mutation goes through this tracker so the mirror never
    drifts (an invariant the test suite checks property-style).
    """

    def __init__(self, servers: Sequence[Server]) -> None:
        if not servers:
            raise ValueError("ResourceTracker requires at least one server")
        self.servers: List[Server] = list(servers)
        self.index_of: Dict[int, int] = {
            s.server_id: i for i, s in enumerate(self.servers)
        }
        if len(self.index_of) != len(self.servers):
            raise ValueError("duplicate server ids in tracker")
        n = len(self.servers)
        self._free_cores = np.array([s.free_cores for s in self.servers], dtype=float)
        self._free_memory = np.array(
            [s.free_memory_gb for s in self.servers], dtype=float
        )
        self._frozen = np.array([s.frozen for s in self.servers], dtype=bool)
        self._failed = np.array([s.failed for s in self.servers], dtype=bool)
        self._offline = np.array([s.powered_off for s in self.servers], dtype=bool)
        self._row_ids = np.array([s.row_id for s in self.servers], dtype=np.int64)
        self._row_mask_cache: Dict[frozenset, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.servers)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def candidates(
        self,
        cores: float,
        memory_gb: float,
        allowed_rows: Optional[frozenset] = None,
    ) -> np.ndarray:
        """Indices of unfrozen servers that fit the demand."""
        mask = (
            (self._free_cores >= cores - 1e-9)
            & (self._free_memory >= memory_gb - 1e-9)
            & ~self._frozen
            & ~self._failed
            & ~self._offline
        )
        if allowed_rows is not None:
            mask &= self._row_mask(allowed_rows)
        return np.nonzero(mask)[0]

    def _row_mask(self, allowed_rows: frozenset) -> np.ndarray:
        cached = self._row_mask_cache.get(allowed_rows)
        if cached is None:
            cached = np.isin(self._row_ids, np.fromiter(allowed_rows, dtype=np.int64))
            self._row_mask_cache[allowed_rows] = cached
        return cached

    def free_cores_at(self, index: int) -> float:
        return float(self._free_cores[index])

    def free_cores_array(self, indices: np.ndarray) -> np.ndarray:
        """Free-core counts for the given server indices (read-only view)."""
        return self._free_cores[indices]

    def free_memory_at(self, index: int) -> float:
        return float(self._free_memory[index])

    def server_at(self, index: int) -> Server:
        return self.servers[index]

    @property
    def frozen_count(self) -> int:
        return int(self._frozen.sum())

    # ------------------------------------------------------------------
    # Mutations (keep mirror and Server objects in lock-step)
    # ------------------------------------------------------------------
    def on_place(self, index: int, cores: float, memory_gb: float) -> None:
        self._free_cores[index] -= cores
        self._free_memory[index] -= memory_gb

    def on_release(self, index: int, cores: float, memory_gb: float) -> None:
        self._free_cores[index] += cores
        self._free_memory[index] += memory_gb

    def set_frozen(self, server_id: int, frozen: bool) -> None:
        self._frozen[self.index_of[server_id]] = frozen

    def set_failed(self, server_id: int, failed: bool) -> None:
        self._failed[self.index_of[server_id]] = failed

    def set_offline(self, server_id: int, offline: bool) -> None:
        self._offline[self.index_of[server_id]] = offline

    def resync(self) -> None:
        """Rebuild the mirror from the Server objects (defensive repair)."""
        for i, server in enumerate(self.servers):
            self._free_cores[i] = server.free_cores
            self._free_memory[i] = server.free_memory_gb
            self._frozen[i] = server.frozen
            self._failed[i] = server.failed
            self._offline[i] = server.powered_off

    def mirror_matches_servers(self) -> bool:
        """True when the mirror agrees with the Server source of truth."""
        for i, server in enumerate(self.servers):
            if abs(self._free_cores[i] - server.free_cores) > 1e-6:
                return False
            if abs(self._free_memory[i] - server.free_memory_gb) > 1e-6:
                return False
            if bool(self._frozen[i]) != server.frozen:
                return False
            if bool(self._failed[i]) != server.failed:
                return False
            if bool(self._offline[i]) != server.powered_off:
                return False
        return True


__all__ = ["ResourceTracker"]
