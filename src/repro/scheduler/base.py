"""Scheduler interface: the only surface Ampere is allowed to touch.

Design choice 2 of the paper (Section 3.1): the power controller must not
read scheduler internals or inject policy; it may only ``submit`` nothing
and call ``freeze``/``unfreeze``. Keeping the interface this small is what
makes the approach portable across schedulers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional

from repro.telemetry import Telemetry
from repro.workload.job import Job


@dataclass
class SchedulerStats:
    """Cluster-wide scheduling counters used by the evaluation."""

    submitted: int = 0
    placed: int = 0
    completed: int = 0
    failures: int = 0
    jobs_killed: int = 0
    preemptions: int = 0
    jobs_preempted: int = 0
    #: tasks dropped by emergency load shedding (killed, never resubmitted)
    jobs_shed: int = 0
    #: placements broken down by product tag
    placed_by_product: Dict[str, int] = field(default_factory=dict)

    @property
    def queued(self) -> int:
        """Jobs submitted but not yet placed."""
        return self.submitted - self.placed

    def record_placement(self, job: Job) -> None:
        self.placed += 1
        self.placed_by_product[job.product] = (
            self.placed_by_product.get(job.product, 0) + 1
        )


class SchedulerRpcError(RuntimeError):
    """A freeze/unfreeze RPC failed in transit (timeout, connection reset).

    Part of the interface contract: in production the scheduler is a
    remote service, so ``freeze``/``unfreeze`` may fail without the
    request having been applied. Callers must treat a raise as
    "state unchanged" and either retry or reconcile on the next tick.
    ``latency_seconds`` is how long the caller waited before the failure
    surfaced (a timeout costs its full deadline).
    """

    def __init__(self, message: str, latency_seconds: float = 0.0) -> None:
        super().__init__(message)
        self.latency_seconds = latency_seconds


class SchedulerInterface(abc.ABC):
    """What a data-center scheduler must expose for Ampere to work."""

    @abc.abstractmethod
    def submit(self, job: Job) -> None:
        """Accept a job for (eventual) placement."""

    @abc.abstractmethod
    def freeze(self, server_id: int) -> None:
        """Advise: stop assigning new jobs to this server.

        Running jobs are unaffected. Idempotent. May raise
        :class:`SchedulerRpcError` when the control plane is degraded;
        the request is then guaranteed *not* to have been applied.
        """

    @abc.abstractmethod
    def unfreeze(self, server_id: int) -> None:
        """Make a frozen server schedulable again. Idempotent. May raise
        :class:`SchedulerRpcError` (request not applied)."""

    @abc.abstractmethod
    def frozen_server_ids(self) -> FrozenSet[int]:
        """Currently frozen server ids -- the *authoritative* frozen set.

        A restarted or reconciling controller must trust this over any
        in-memory copy of its own intent.
        """


class InstrumentedScheduler(SchedulerInterface):
    """Transparent telemetry proxy over any :class:`SchedulerInterface`.

    Sits outermost in the controller-facing stack (instrumentation wraps
    the fault layer, when one is configured), so it observes exactly
    what the controller experiences: every freeze/unfreeze intent,
    including the ones a flaky transport rejects. Each call records

    - ``repro_scheduler_rpc_total{op}`` / ``repro_scheduler_rpc_errors_total{op}``,
    - a ``repro_scheduler_rpc_latency_seconds{op}`` histogram of the
      *modeled* RPC latency (the fault layer's configured latency on
      success, the timeout charged by :class:`SchedulerRpcError` on
      failure) -- sim-deterministic, so it merges across campaign
      workers,
    - a ``scheduler.rpc`` span carrying the wall-clock cost.

    Reads (``frozen_server_ids``) and ``submit`` pass through untouched:
    the instrumented surface is the control path, mirroring the fault
    layer's scope.
    """

    def __init__(
        self, inner: SchedulerInterface, telemetry: Optional[Telemetry] = None
    ) -> None:
        self.inner = inner
        tel = telemetry if telemetry is not None else Telemetry.disabled()
        self._telemetry = tel
        self._calls = {
            op: tel.counter(
                "repro_scheduler_rpc_total",
                "freeze/unfreeze RPCs issued by the control plane",
                {"op": op},
            )
            for op in ("freeze", "unfreeze")
        }
        self._errors = {
            op: tel.counter(
                "repro_scheduler_rpc_errors_total",
                "freeze/unfreeze RPCs that raised SchedulerRpcError",
                {"op": op},
            )
            for op in ("freeze", "unfreeze")
        }
        self._latency = {
            op: tel.histogram(
                "repro_scheduler_rpc_latency_seconds",
                "Modeled RPC latency of freeze/unfreeze calls "
                "(timeout cost on failure)",
                {"op": op},
            )
            for op in ("freeze", "unfreeze")
        }

    # ------------------------------------------------------------------
    # SchedulerInterface
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        self.inner.submit(job)

    def freeze(self, server_id: int) -> None:
        self._call("freeze", server_id, self.inner.freeze)

    def unfreeze(self, server_id: int) -> None:
        self._call("unfreeze", server_id, self.inner.unfreeze)

    def frozen_server_ids(self) -> FrozenSet[int]:
        return self.inner.frozen_server_ids()

    # ------------------------------------------------------------------
    def _call(
        self, op: str, server_id: int, call: Callable[[int], None]
    ) -> None:
        self._calls[op].inc()
        with self._telemetry.span("scheduler.rpc", op=op, server_id=server_id):
            try:
                call(server_id)
            except SchedulerRpcError as error:
                self._errors[op].inc()
                self._latency[op].observe(error.latency_seconds)
                raise
        # Successful calls cost the transport's modeled latency when the
        # inner layer models one (the fault layer does), else 0.
        self._latency[op].observe(getattr(self.inner, "latency_seconds", 0.0))


__all__ = [
    "InstrumentedScheduler",
    "SchedulerInterface",
    "SchedulerRpcError",
    "SchedulerStats",
]

