"""Scheduler interface: the only surface Ampere is allowed to touch.

Design choice 2 of the paper (Section 3.1): the power controller must not
read scheduler internals or inject policy; it may only ``submit`` nothing
and call ``freeze``/``unfreeze``. Keeping the interface this small is what
makes the approach portable across schedulers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, FrozenSet

from repro.workload.job import Job


@dataclass
class SchedulerStats:
    """Cluster-wide scheduling counters used by the evaluation."""

    submitted: int = 0
    placed: int = 0
    completed: int = 0
    failures: int = 0
    jobs_killed: int = 0
    preemptions: int = 0
    jobs_preempted: int = 0
    #: placements broken down by product tag
    placed_by_product: Dict[str, int] = field(default_factory=dict)

    @property
    def queued(self) -> int:
        """Jobs submitted but not yet placed."""
        return self.submitted - self.placed

    def record_placement(self, job: Job) -> None:
        self.placed += 1
        self.placed_by_product[job.product] = (
            self.placed_by_product.get(job.product, 0) + 1
        )


class SchedulerInterface(abc.ABC):
    """What a data-center scheduler must expose for Ampere to work."""

    @abc.abstractmethod
    def submit(self, job: Job) -> None:
        """Accept a job for (eventual) placement."""

    @abc.abstractmethod
    def freeze(self, server_id: int) -> None:
        """Advise: stop assigning new jobs to this server.

        Running jobs are unaffected. Idempotent.
        """

    @abc.abstractmethod
    def unfreeze(self, server_id: int) -> None:
        """Make a frozen server schedulable again. Idempotent."""

    @abc.abstractmethod
    def frozen_server_ids(self) -> FrozenSet[int]:
        """Currently frozen server ids (for controller bookkeeping)."""


__all__ = ["SchedulerInterface", "SchedulerStats"]
