"""Two-level job scheduler substrate with the freeze/unfreeze API.

The scheduler mirrors the paper's custom Omega-like system: a low level
tracks resources and exposes exactly two control operations -- ``freeze``
(advise: place no new jobs on this server) and ``unfreeze`` -- while an
upper level of per-product frameworks decides placement with pluggable
policies. Ampere interacts with this package *only* through
:class:`~repro.scheduler.base.SchedulerInterface`.
"""

from repro.scheduler.base import SchedulerInterface, SchedulerStats
from repro.scheduler.resources import ResourceTracker
from repro.scheduler.policies import (
    PlacementPolicy,
    RandomAvailablePolicy,
    LeastLoadedPolicy,
    BestFitPolicy,
)
from repro.scheduler.omega import Framework, OmegaScheduler

__all__ = [
    "SchedulerInterface",
    "SchedulerStats",
    "ResourceTracker",
    "PlacementPolicy",
    "RandomAvailablePolicy",
    "LeastLoadedPolicy",
    "BestFitPolicy",
    "Framework",
    "OmegaScheduler",
]
