"""Two-level Omega-like scheduler with the freeze/unfreeze API.

The low level (this class plus :class:`ResourceTracker`) owns resource
state, executes placements, schedules job-completion events on the
simulation engine, and keeps completions correct when DVFS capping changes
a server's execution speed. The upper level is a set of per-product
:class:`Framework` objects, each with its own FIFO queue (with bounded
backfill) and placement policy.

Freezing a server only removes it from the candidate set for *new*
placements; running jobs continue untouched -- the property Ampere's
SLA-safety argument rests on.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, FrozenSet, Iterable, List, Optional

import numpy as np

from repro.cluster.server import Server
from repro.scheduler.base import SchedulerInterface, SchedulerStats
from repro.scheduler.policies import PlacementPolicy, RandomAvailablePolicy
from repro.scheduler.resources import ResourceTracker
from repro.sim.engine import Engine
from repro.sim.events import EventPriority
from repro.workload.job import Job

PlacementListener = Callable[[Job, Server], None]
CompletionListener = Callable[[Job, Server], None]

#: Progress shortfall below which a completion event is accepted as final.
_COMPLETION_EPSILON = 1e-6


class Framework:
    """An upper-level application scheduler (one per product family).

    Jobs wait in FIFO order; to avoid pathological head-of-line blocking a
    bounded *backfill window* of queued jobs behind the head may be placed
    when the head does not fit (real cluster schedulers backfill the same
    way).
    """

    def __init__(
        self,
        name: str,
        policy: Optional[PlacementPolicy] = None,
        backfill_depth: int = 8,
    ) -> None:
        if backfill_depth < 1:
            raise ValueError(f"backfill_depth must be >= 1, got {backfill_depth}")
        self.name = name
        self.policy = policy if policy is not None else RandomAvailablePolicy()
        self.backfill_depth = backfill_depth
        self.queue: Deque[Job] = deque()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Framework({self.name!r}, queued={len(self.queue)})"


class OmegaScheduler(SchedulerInterface):
    """The cluster scheduler used throughout the reproduction.

    Parameters
    ----------
    engine:
        Simulation engine (completion events are scheduled on it).
    servers:
        The schedulable fleet (usually every server in the data center --
        the paper schedules over the whole facility as one pool).
    rng:
        Random generator for placement tie-breaking.
    default_policy:
        Policy of the implicitly created default framework.
    """

    def __init__(
        self,
        engine: Engine,
        servers: Iterable[Server],
        rng: np.random.Generator,
        default_policy: Optional[PlacementPolicy] = None,
        enable_preemption: bool = False,
    ) -> None:
        self.engine = engine
        self.enable_preemption = enable_preemption
        self.tracker = ResourceTracker(list(servers))
        self.rng = rng
        self.stats = SchedulerStats()
        self.frameworks: Dict[str, Framework] = {}
        self._default_framework = Framework("default", default_policy)
        self.placement_listeners: List[PlacementListener] = []
        self.completion_listeners: List[CompletionListener] = []
        #: called with (action, server_id) on freeze/unfreeze/fail/repair
        self.control_listeners: List[Callable[[str, int], None]] = []
        self._frozen_ids: set = set()
        for server in self.tracker.servers:
            server.frequency_listeners.append(self._on_frequency_change)

    # ------------------------------------------------------------------
    # Framework management (upper level)
    # ------------------------------------------------------------------
    def register_framework(self, framework: Framework) -> None:
        if framework.name in self.frameworks:
            raise ValueError(f"framework {framework.name!r} already registered")
        self.frameworks[framework.name] = framework

    def framework_for(self, job: Job) -> Framework:
        return self.frameworks.get(job.product, self._default_framework)

    def all_frameworks(self) -> List[Framework]:
        return [self._default_framework, *self.frameworks.values()]

    @property
    def queued_jobs(self) -> int:
        return sum(len(f.queue) for f in self.all_frameworks())

    # ------------------------------------------------------------------
    # SchedulerInterface
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Accept a job: place immediately if possible, else enqueue.

        With preemption enabled, a positive-priority job that cannot fit
        may evict lower-priority running work instead of queueing.
        """
        self.stats.submitted += 1
        framework = self.framework_for(job)
        if not framework.queue and self._try_place(job, framework):
            return
        if (
            self.enable_preemption
            and job.priority > 0
            and self._try_preempt_for(job)
        ):
            return
        framework.queue.append(job)

    def freeze(self, server_id: int) -> None:
        if server_id not in self.tracker.index_of:
            raise KeyError(f"unknown server id {server_id}")
        if server_id in self._frozen_ids:
            return  # idempotent: reconciliation may re-assert a freeze
        index = self.tracker.index_of[server_id]
        self.tracker.server_at(index).freeze()
        self.tracker.set_frozen(server_id, True)
        self._frozen_ids.add(server_id)
        self._notify_control("freeze", server_id)

    def unfreeze(self, server_id: int) -> None:
        if server_id not in self.tracker.index_of:
            raise KeyError(f"unknown server id {server_id}")
        if server_id not in self._frozen_ids:
            return  # idempotent: a retried unfreeze must not re-drain
        index = self.tracker.index_of[server_id]
        self.tracker.server_at(index).unfreeze()
        self.tracker.set_frozen(server_id, False)
        self._frozen_ids.discard(server_id)
        self._notify_control("unfreeze", server_id)
        self._drain_queues()

    def frozen_server_ids(self) -> FrozenSet[int]:
        return frozenset(self._frozen_ids)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def fail_server(self, server_id: int) -> int:
        """Take a server down: kill its tasks and resubmit fresh attempts.

        Batch tasks restart from scratch on another machine (MapReduce
        semantics); pinned services are lost until an operator re-pins
        them. Returns the number of tasks killed.
        """
        if server_id not in self.tracker.index_of:
            raise KeyError(f"unknown server id {server_id}")
        index = self.tracker.index_of[server_id]
        server = self.tracker.server_at(index)
        if server.failed:
            return 0
        killed = list(server.tasks.values())
        for job in killed:
            if job.completion_handle is not None:
                job.completion_handle.cancel()
                job.completion_handle = None
            server.remove_task(job)
            self.tracker.on_release(index, job.cores, job.memory_gb)
            job.kill()
        server.fail()
        self.tracker.set_failed(server_id, True)
        self._notify_control("fail", server_id)
        self.stats.failures += 1
        self.stats.jobs_killed += len(killed)
        now = self.engine.now
        for job in killed:
            if job.remaining_work == float("inf"):
                continue  # a pinned service; not rescheduled automatically
            retry = Job(
                job.job_id,
                job.work_seconds,
                cores=job.cores,
                memory_gb=job.memory_gb,
                arrival_time=now,
                product=job.product,
                allowed_rows=job.allowed_rows,
                tenant=job.tenant,
            )
            self.submit(retry)
        return len(killed)

    def shed_tasks(self, server_id: int, max_tasks: Optional[int] = None) -> int:
        """Emergency load shedding: drop batch tasks from one server.

        The safety supervisor's last resort before a breaker trip. Unlike
        :meth:`fail_server` the machine stays up and, critically, the
        killed work is *not* resubmitted -- shedding must reduce total
        demand, not relocate it. Victims are chosen priority-aware:
        lowest priority first, largest remaining work first within a
        priority (drop the cheapest, longest-lived work). Pinned services
        (infinite work) are never shed. Returns the number of tasks
        dropped.
        """
        if server_id not in self.tracker.index_of:
            raise KeyError(f"unknown server id {server_id}")
        index = self.tracker.index_of[server_id]
        server = self.tracker.server_at(index)
        victims = sorted(
            (
                t
                for t in server.tasks.values()
                if t.remaining_work != float("inf")
            ),
            key=lambda t: (t.priority, -t.remaining_work, t.job_id),
        )
        if max_tasks is not None:
            victims = victims[:max_tasks]
        now = self.engine.now
        for job in victims:
            if job.completion_handle is not None:
                job.completion_handle.cancel()
                job.completion_handle = None
            job.advance(now, server.frequency)
            server.remove_task(job)
            self.tracker.on_release(index, job.cores, job.memory_gb)
            job.kill()
        if victims:
            self.stats.jobs_shed += len(victims)
            self._notify_control("shed", server_id)
        return len(victims)

    def repair_server(self, server_id: int) -> None:
        """Bring a failed server back into the schedulable pool."""
        if server_id not in self.tracker.index_of:
            raise KeyError(f"unknown server id {server_id}")
        index = self.tracker.index_of[server_id]
        server = self.tracker.server_at(index)
        if not server.failed:
            return
        server.repair()
        self.tracker.set_failed(server_id, False)
        self._notify_control("repair", server_id)
        self._drain_queues()

    # ------------------------------------------------------------------
    # Power-state management (consolidation baselines)
    # ------------------------------------------------------------------
    def power_off_server(self, server_id: int) -> None:
        """Remove an *idle* server from the pool (PowerNap-style).

        Raises ``RuntimeError`` if the server still runs tasks; a
        consolidation controller must only select idle machines.
        """
        if server_id not in self.tracker.index_of:
            raise KeyError(f"unknown server id {server_id}")
        index = self.tracker.index_of[server_id]
        self.tracker.server_at(index).power_off()
        self.tracker.set_offline(server_id, True)

    def power_on_server(self, server_id: int) -> None:
        """Return a powered-off server to the pool and drain the queue."""
        if server_id not in self.tracker.index_of:
            raise KeyError(f"unknown server id {server_id}")
        index = self.tracker.index_of[server_id]
        self.tracker.server_at(index).power_on()
        self.tracker.set_offline(server_id, False)
        self._drain_queues()

    # ------------------------------------------------------------------
    # Preemption
    # ------------------------------------------------------------------
    def _try_preempt_for(self, job: Job) -> bool:
        """Evict lower-priority work to place ``job``; True on success.

        Victim server: the eligible server whose evicted priority mass is
        smallest. Victims are killed lowest-priority-first and resubmitted
        as fresh attempts (restart semantics, like the failure path);
        pinned services (infinite work) are never evicted.
        """
        best_index = None
        best_victims = None
        best_cost = None
        for index, server in enumerate(self.tracker.servers):
            if server.frozen or server.failed:
                continue
            if job.allowed_rows is not None and server.row_id not in job.allowed_rows:
                continue
            victims = self._cheapest_victims(server, job)
            if victims is None:
                continue
            cost = (sum(v.priority for v in victims), len(victims))
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_index = index
                best_victims = victims
        if best_index is None:
            return False
        server = self.tracker.server_at(best_index)
        now = self.engine.now
        for victim in best_victims:
            if victim.completion_handle is not None:
                victim.completion_handle.cancel()
                victim.completion_handle = None
            victim.advance(now, server.frequency)
            server.remove_task(victim)
            self.tracker.on_release(best_index, victim.cores, victim.memory_gb)
            victim.kill()
            self.stats.jobs_preempted += 1
        self.stats.preemptions += 1
        # Claim the freed capacity for the urgent job before the victims'
        # retries are resubmitted, or they would race it for the slot.
        self._place(job, best_index)
        for victim in best_victims:
            self.submit(
                Job(
                    victim.job_id,
                    victim.work_seconds,
                    cores=victim.cores,
                    memory_gb=victim.memory_gb,
                    arrival_time=now,
                    product=victim.product,
                    allowed_rows=victim.allowed_rows,
                    priority=victim.priority,
                    tenant=victim.tenant,
                )
            )
        return True

    def _cheapest_victims(self, server: Server, job: Job):
        """Lowest-priority tasks whose eviction makes ``job`` fit, or None."""
        free_cores = server.free_cores
        free_memory = server.free_memory_gb
        if free_cores >= job.cores and free_memory >= job.memory_gb:
            return []  # caller should have placed normally, but handle it
        evictable = sorted(
            (
                t
                for t in server.tasks.values()
                if t.priority < job.priority and t.remaining_work != float("inf")
            ),
            key=lambda t: (t.priority, t.remaining_work),
        )
        victims = []
        for task in evictable:
            if free_cores >= job.cores and free_memory >= job.memory_gb:
                break
            victims.append(task)
            free_cores += task.cores
            free_memory += task.memory_gb
        if free_cores >= job.cores and free_memory >= job.memory_gb:
            return victims
        return None

    def _notify_control(self, action: str, server_id: int) -> None:
        for listener in self.control_listeners:
            listener(action, server_id)

    # ------------------------------------------------------------------
    # Placement (low level)
    # ------------------------------------------------------------------
    def _try_place(self, job: Job, framework: Framework) -> bool:
        candidates = self.tracker.candidates(job.cores, job.memory_gb, job.allowed_rows)
        if len(candidates) == 0:
            return False
        index = framework.policy.select(self.tracker, candidates, self.rng)
        self._place(job, index)
        return True

    def _place(self, job: Job, index: int) -> None:
        server = self.tracker.server_at(index)
        now = self.engine.now
        server.add_task(job)
        self.tracker.on_place(index, job.cores, job.memory_gb)
        job.begin(server, now)
        job.completion_handle = self.engine.schedule(
            job.eta(now, server.frequency),
            EventPriority.JOB_COMPLETION,
            self._complete_job,
            job,
        )
        self.stats.record_placement(job)
        for listener in self.placement_listeners:
            listener(job, server)

    def place_pinned(self, job: Job, server_id: int) -> None:
        """Place a job on a specific server, bypassing placement policy.

        Used for long-lived pinned services (e.g. a Redis instance). The
        job holds its resources indefinitely; no completion event is
        scheduled and throughput listeners are not notified (services are
        not part of batch throughput).
        """
        if server_id not in self.tracker.index_of:
            raise KeyError(f"unknown server id {server_id}")
        index = self.tracker.index_of[server_id]
        server = self.tracker.server_at(index)
        server.add_task(job)
        self.tracker.on_place(index, job.cores, job.memory_gb)
        job.begin(server, self.engine.now)

    def _complete_job(self, job: Job) -> None:
        now = self.engine.now
        server = job.server
        assert server is not None
        job.advance(now, server.frequency)
        if job.remaining_work > _COMPLETION_EPSILON:
            # The server slowed down after this event was scheduled and the
            # reschedule raced; push completion to the corrected ETA.
            job.completion_handle = self.engine.schedule(
                job.eta(now, server.frequency),
                EventPriority.JOB_COMPLETION,
                self._complete_job,
                job,
            )
            return
        job.complete(now)
        server.remove_task(job)
        index = self.tracker.index_of[server.server_id]
        self.tracker.on_release(index, job.cores, job.memory_gb)
        self.stats.completed += 1
        for listener in self.completion_listeners:
            listener(job, server)
        self._drain_queues()

    def _drain_queues(self) -> None:
        """Place queued jobs while capacity lasts (FIFO + bounded backfill)."""
        for framework in self.all_frameworks():
            self._drain_framework(framework)

    def _drain_framework(self, framework: Framework) -> None:
        while framework.queue:
            head = framework.queue[0]
            if self._try_place(head, framework):
                framework.queue.popleft()
                continue
            # Head does not fit: try a bounded backfill window behind it.
            placed_any = False
            window = min(framework.backfill_depth, len(framework.queue) - 1)
            position = 1
            scanned = 0
            while scanned < window and position < len(framework.queue):
                job = framework.queue[position]
                if self._try_place(job, framework):
                    del framework.queue[position]
                    placed_any = True
                else:
                    position += 1
                scanned += 1
            if not placed_any:
                break

    # ------------------------------------------------------------------
    # DVFS coupling
    # ------------------------------------------------------------------
    def _on_frequency_change(
        self, server: Server, old_frequency: float, new_frequency: float
    ) -> None:
        """Re-time completion events when a server's speed changes."""
        now = self.engine.now
        for job in server.tasks.values():
            job.advance(now, old_frequency)
            if job.completion_handle is not None:
                job.completion_handle.cancel()
            job.completion_handle = self.engine.schedule(
                job.eta(now, new_frequency),
                EventPriority.JOB_COMPLETION,
                self._complete_job,
                job,
            )


__all__ = ["OmegaScheduler", "Framework", "PlacementListener", "CompletionListener"]
