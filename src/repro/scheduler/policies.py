"""Placement policies for the upper-level frameworks.

Ampere's statistical control assumes only that *the number of jobs placed
in a row is roughly proportional to the number of available (unfrozen)
servers there* (Section 3.4). The default random-available policy has that
property exactly; least-loaded and best-fit are provided both for realism
and for the ablation that checks Ampere still works when the
proportionality is only approximate.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.scheduler.resources import ResourceTracker


class PlacementPolicy(abc.ABC):
    """Chooses one server index among fitting candidates."""

    @abc.abstractmethod
    def select(
        self,
        tracker: ResourceTracker,
        candidates: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        """Return the chosen index from ``candidates`` (never empty)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return type(self).__name__


class RandomAvailablePolicy(PlacementPolicy):
    """Uniformly random choice among available servers (the default).

    Gives exactly the placement-proportional-to-availability behaviour the
    paper's statistical control relies on.
    """

    def select(
        self,
        tracker: ResourceTracker,
        candidates: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        return int(candidates[rng.integers(len(candidates))])


class LeastLoadedPolicy(PlacementPolicy):
    """Pick the candidate with the most free cores (load balancing)."""

    def select(
        self,
        tracker: ResourceTracker,
        candidates: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        free = tracker.free_cores_array(candidates)
        best = np.flatnonzero(free == free.max())
        # Break ties randomly so identical servers share load evenly.
        return int(candidates[best[rng.integers(len(best))]])


class BestFitPolicy(PlacementPolicy):
    """Pick the candidate with the least free cores that still fits (packing)."""

    def select(
        self,
        tracker: ResourceTracker,
        candidates: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        free = tracker.free_cores_array(candidates)
        best = np.flatnonzero(free == free.min())
        return int(candidates[best[rng.integers(len(best))]])


__all__ = [
    "PlacementPolicy",
    "RandomAvailablePolicy",
    "LeastLoadedPolicy",
    "BestFitPolicy",
]
