"""Metric instruments and the registry that owns them.

The registry is the control plane's single metrics surface: every
component records counters, gauges and fixed-bucket histograms into one
:class:`MetricsRegistry`, labeled by row/rack/component, and everything
downstream (Prometheus exposition, JSON snapshots, campaign-level
aggregation) reads from it.

Three properties shape the design:

- **Cheap enough to be always-on.** An instrument is resolved once (at
  construction time of the instrumented component) and recording is one
  attribute update -- no name parsing, no label hashing on the hot path.
  When telemetry is disabled the same call sites receive shared no-op
  instruments (:data:`NULL_COUNTER` and friends), so disabling telemetry
  costs one empty method call and changes *nothing* else.
- **Deterministic content.** Only simulation-derived quantities go into
  the registry (sim-time durations, seeded-noise readings, event
  counts). Wall-clock timings live in the span tracer
  (:mod:`repro.telemetry.tracing`), which is per-process diagnostic
  state and never crosses the campaign worker boundary. This is what
  lets serial and parallel campaign runs produce byte-identical merged
  snapshots.
- **Picklable and mergeable.** A registry is plain dicts of plain
  scalars; it crosses a ``ProcessPoolExecutor`` boundary like any other
  campaign record, and :meth:`MetricsRegistry.merge` folds per-cell
  registries into one campaign-level registry (counters and histograms
  add; gauges take the last merged value, which is deterministic because
  campaigns always merge in cell order).

Metric names follow the Prometheus convention used throughout the
repository: ``repro_<component>_<what>[_<unit>][_total]``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: canonical label form: sorted ``(key, value)`` pairs
LabelKey = Tuple[Tuple[str, str], ...]

#: default histogram buckets (seconds) -- spans sub-millisecond RPCs up
#: to multi-second timeouts, the range the control plane actually sees
DEFAULT_TIME_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (events, errors, ticks)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Point-in-time value (queue depth, stale-endpoint count)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (latencies, durations, batch sizes).

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    rest. ``bucket_counts`` are per-bucket (non-cumulative) internally
    and cumulated only at exposition time, which keeps ``observe`` to a
    single list update.
    """

    __slots__ = ("uppers", "bucket_counts", "sum", "count")

    def __init__(self, uppers: Sequence[float]) -> None:
        cleaned = tuple(float(u) for u in uppers)
        if not cleaned:
            raise ValueError("histogram needs at least one bucket bound")
        if list(cleaned) != sorted(cleaned):
            raise ValueError(f"bucket bounds must be sorted, got {cleaned}")
        self.uppers = cleaned
        self.bucket_counts = [0] * (len(cleaned) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, upper in enumerate(self.uppers):
            if value <= upper:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative bucket counts (ends at ``count``)."""
        out: List[int] = []
        running = 0
        for n in self.bucket_counts:
            running += n
            out.append(running)
        return out


class NullCounter:
    """Shared no-op counter handed out by disabled telemetry."""

    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class NullHistogram:
    __slots__ = ()
    sum = 0.0
    count = 0

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class MetricFamily:
    """All series of one metric name: kind, help text and labeled children."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: Dict[LabelKey, object] = {}

    def child(self, key: LabelKey):
        existing = self.children.get(key)
        if existing is not None:
            return existing
        if self.kind == COUNTER:
            made: object = Counter()
        elif self.kind == GAUGE:
            made = Gauge()
        else:
            made = Histogram(self.buckets or DEFAULT_TIME_BUCKETS)
        self.children[key] = made
        return made


class MetricsRegistry:
    """Owner of every metric family; picklable, mergeable, exportable."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    # Instrument resolution (construction-time, not hot-path)
    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help_text, buckets)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"cannot re-register as {kind}"
            )
        if kind == HISTOGRAM and buckets is not None and family.buckets != buckets:
            raise ValueError(
                f"metric {name!r} already registered with buckets "
                f"{family.buckets}, got {buckets}"
            )
        return family

    def counter(
        self, name: str, help_text: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        return self._family(name, COUNTER, help_text).child(_label_key(labels))

    def gauge(
        self, name: str, help_text: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        return self._family(name, GAUGE, help_text).child(_label_key(labels))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._family(name, HISTOGRAM, help_text, tuple(buckets)).child(
            _label_key(labels)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def families(self) -> List[MetricFamily]:
        """Families in sorted-name order (the canonical export order)."""
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str, labels: Optional[Mapping[str, str]] = None):
        """The live instrument for ``name``/``labels`` or ``None``."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(_label_key(labels))

    def value(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[float]:
        """Scalar value of a counter/gauge series (``None`` if absent)."""
        instrument = self.get(name, labels)
        if instrument is None or isinstance(instrument, Histogram):
            return None
        return instrument.value

    def __len__(self) -> int:
        return len(self._families)

    # ------------------------------------------------------------------
    # Merge (the campaign worker boundary)
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry.

        Counters and histograms add; gauges take ``other``'s value (the
        merge is performed in cell order by both the serial and the
        parallel campaign paths, so the result is deterministic).
        """
        for name in sorted(other._families):
            theirs = other._families[name]
            family = self._family(name, theirs.kind, theirs.help, theirs.buckets)
            for key in sorted(theirs.children):
                child = theirs.children[key]
                mine = family.child(key)
                if theirs.kind == COUNTER:
                    mine.value += child.value  # type: ignore[union-attr]
                elif theirs.kind == GAUGE:
                    mine.value = child.value  # type: ignore[union-attr]
                else:
                    assert isinstance(child, Histogram)
                    assert isinstance(mine, Histogram)
                    if mine.uppers != child.uppers:
                        raise ValueError(
                            f"cannot merge histogram {name!r}: bucket bounds "
                            f"differ ({mine.uppers} vs {child.uppers})"
                        )
                    for i, n in enumerate(child.bucket_counts):
                        mine.bucket_counts[i] += n
                    mine.sum += child.sum
                    mine.count += child.count

    @classmethod
    def merged(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """A fresh registry holding the in-order merge of ``registries``."""
        out = cls()
        for registry in registries:
            out.merge(registry)
        return out


__all__ = [
    "COUNTER",
    "DEFAULT_TIME_BUCKETS",
    "GAUGE",
    "HISTOGRAM",
    "Counter",
    "Gauge",
    "Histogram",
    "LabelKey",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
]
