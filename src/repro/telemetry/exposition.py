"""Exposition: Prometheus text format and JSON snapshots of a registry.

Both exports are *canonical*: families in sorted-name order, series in
sorted-label order, floats rendered with ``repr`` so equal registries
produce byte-identical documents. The campaign determinism tests lean on
this -- "serial and parallel merged snapshots are identical" is asserted
on these rendered forms, not on object graphs.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.durability.atomic import atomic_write_text
from repro.telemetry.registry import (
    COUNTER,
    GAUGE,
    Histogram,
    LabelKey,
    MetricsRegistry,
)


#: the Content-Type the text format must be served under. Shared by the
#: CLI's ``metrics --prom`` note and the service's ``/metrics`` endpoint
#: so the two can never drift apart.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _format_value(value: float) -> str:
    """Prometheus-style number rendering (integers without the dot)."""
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def escape_label_value(value: str) -> str:
    """Escape a label value per the text-format spec.

    Backslash, double-quote and newline are the three characters the
    format reserves inside quoted label values; anything else passes
    through. Backslash must go first or it would re-escape the others.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def escape_help_text(text: str) -> str:
    """Escape a HELP docstring (backslash and newline only, per spec)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(key: LabelKey, extra: str = "") -> str:
    parts = [f'{k}="{escape_label_value(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(
                f"# HELP {family.name} {escape_help_text(family.help)}"
            )
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key in sorted(family.children):
            child = family.children[key]
            if isinstance(child, Histogram):
                cumulative = child.cumulative_counts()
                bounds = [*child.uppers, float("inf")]
                for upper, count in zip(bounds, cumulative):
                    le_label = 'le="' + _format_value(upper) + '"'
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_format_labels(key, le_label)} {count}"
                    )
                lines.append(
                    f"{family.name}_sum{_format_labels(key)} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_format_labels(key)} {child.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_format_labels(key)} "
                    f"{_format_value(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot(registry: MetricsRegistry) -> Dict[str, Any]:
    """Canonical plain-dict form of a registry (the JSON export)."""
    doc: Dict[str, Any] = {}
    for family in registry.families():
        series: List[Dict[str, Any]] = []
        for key in sorted(family.children):
            child = family.children[key]
            entry: Dict[str, Any] = {"labels": {k: v for k, v in key}}
            if isinstance(child, Histogram):
                entry["buckets"] = list(child.uppers)
                entry["bucket_counts"] = list(child.bucket_counts)
                entry["sum"] = child.sum
                entry["count"] = child.count
            else:
                entry["value"] = child.value
            series.append(entry)
        doc[family.name] = {
            "kind": family.kind,
            "help": family.help,
            "series": series,
        }
    return doc


def render_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """The snapshot as deterministic JSON text."""
    return json.dumps(snapshot(registry), indent=indent, sort_keys=True)


def save_snapshot(registry: MetricsRegistry, path: Union[str, Path]) -> None:
    atomic_write_text(path, render_json(registry) + "\n")


def registry_from_snapshot(doc: Dict[str, Any]) -> MetricsRegistry:
    """Rebuild a registry from :func:`snapshot` output.

    Archived snapshots become live registries again, so campaign-level
    aggregation can merge stored runs with fresh ones.
    """
    registry = MetricsRegistry()
    for name in sorted(doc):
        family_doc = doc[name]
        kind = family_doc["kind"]
        for entry in family_doc["series"]:
            labels = entry.get("labels") or None
            if kind == COUNTER:
                registry.counter(name, family_doc.get("help", ""), labels).inc(
                    entry["value"]
                )
            elif kind == GAUGE:
                registry.gauge(name, family_doc.get("help", ""), labels).set(
                    entry["value"]
                )
            else:
                histogram = registry.histogram(
                    name,
                    family_doc.get("help", ""),
                    labels,
                    buckets=entry["buckets"],
                )
                histogram.bucket_counts = list(entry["bucket_counts"])
                histogram.sum = entry["sum"]
                histogram.count = entry["count"]
    return registry


__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "escape_help_text",
    "escape_label_value",
    "registry_from_snapshot",
    "render_json",
    "render_prometheus",
    "save_snapshot",
    "snapshot",
]
