"""Control-loop tracing: per-tick spans on the simulation clock.

A span records one unit of control-plane work -- ``monitor.sweep``,
``controller.tick``, ``rhc.decide``, ``scheduler.rpc`` -- with its
duration in *both* clocks: simulated time (how long the modeled system
took, deterministic) and wall time (how long this process took to
compute it, the quantity perf work cares about). Spans nest: a
``rhc.decide`` opened inside a ``controller.tick`` carries the tick's
span id as its parent, so a trace query can reconstruct the tick tree.

The store is a bounded ring buffer: always-on tracing must not grow
without bound over a 20-day campaign, so the newest ``capacity`` spans
win and :attr:`Tracer.dropped` counts what the ring evicted. Range
queries filter by span name and sim-time window.

Wall-clock readings make span records inherently per-process, so spans
never cross the campaign worker boundary and are excluded from merged
snapshots -- the metrics registry is the deterministic surface, the
tracer is the local diagnostic one.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional


def _zero_clock() -> float:
    """Default sim clock before an engine binds itself (picklable)."""
    return 0.0


@dataclass
class SpanRecord:
    """One finished (or still-open) span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_sim: float
    start_wall: float
    end_sim: Optional[float] = None
    end_wall: Optional[float] = None
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def sim_duration(self) -> float:
        """Elapsed simulated seconds (0.0 for atomic callbacks)."""
        return (self.end_sim - self.start_sim) if self.end_sim is not None else 0.0

    @property
    def wall_duration(self) -> float:
        """Elapsed wall seconds this process spent inside the span."""
        return (self.end_wall - self.start_wall) if self.end_wall is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end_wall is not None


class _ActiveSpan:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def set_attribute(self, key: str, value: object) -> None:
        self.record.attributes[key] = value

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._finish(self.record, error=exc is not None)


class _NullSpan:
    """Shared no-op span for disabled telemetry."""

    __slots__ = ()
    record = None

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer stand-in when telemetry is disabled: every span is no-op."""

    enabled = False
    dropped = 0

    def span(self, name: str, **attributes: object) -> _NullSpan:
        return NULL_SPAN

    def bind_sim_clock(self, clock: Callable[[], float]) -> None:
        pass

    def spans(self, *args, **kwargs) -> List[SpanRecord]:
        return []

    def __len__(self) -> int:
        return 0


class Tracer:
    """Span recorder over a bounded ring buffer.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the newest spans survive.
    wall_clock:
        Wall-time source (monotonic seconds); injectable for tests.
    sim_clock:
        Simulated-time source; the engine binds itself here via
        :meth:`bind_sim_clock` so spans opened anywhere carry sim time.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 8192,
        wall_clock: Callable[[], float] = time.perf_counter,
        sim_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._wall_clock = wall_clock
        self._sim_clock: Callable[[], float] = sim_clock or _zero_clock
        self._ring: Deque[SpanRecord] = deque(maxlen=capacity)
        self._stack: List[SpanRecord] = []
        self._next_id = 1
        self.dropped = 0

    def bind_sim_clock(self, clock: Callable[[], float]) -> None:
        """Point sim-time reads at the (one) engine driving this run."""
        self._sim_clock = clock

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: object) -> _ActiveSpan:
        """Open a span; use as a context manager.

        The parent is whatever span is currently open in this tracer
        (single-threaded by construction: the simulation loop runs one
        callback at a time).
        """
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            start_sim=self._sim_clock(),
            start_wall=self._wall_clock(),
            attributes=dict(attributes) if attributes else {},
        )
        self._next_id += 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)
        self._stack.append(record)
        return _ActiveSpan(self, record)

    def _finish(self, record: SpanRecord, error: bool = False) -> None:
        record.end_sim = self._sim_clock()
        record.end_wall = self._wall_clock()
        if error:
            record.attributes["error"] = True
        # Pop back to this record; defensive against exceptions that
        # unwound child spans without __exit__ running.
        while self._stack and self._stack[-1] is not record:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self._ring)

    def spans(
        self,
        name: Optional[str] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[SpanRecord]:
        """Retained spans, optionally filtered by name and sim-time range.

        ``start``/``end`` select spans whose *start* sim-time falls in
        ``[start, end)``, matching the TSDB's range-query convention.
        """
        out: List[SpanRecord] = []
        for record in self._ring:
            if name is not None and record.name != name:
                continue
            if start is not None and record.start_sim < start:
                continue
            if end is not None and record.start_sim >= end:
                continue
            out.append(record)
        return out

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregate of retained spans.

        Returns ``{name: {count, wall_total, wall_mean, wall_max,
        sim_total}}`` -- the table behind the ``spans`` CLI command.
        """
        grouped: Dict[str, List[SpanRecord]] = {}
        for record in self._ring:
            if record.finished:
                grouped.setdefault(record.name, []).append(record)
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(grouped):
            walls = [r.wall_duration for r in grouped[name]]
            sims = [r.sim_duration for r in grouped[name]]
            out[name] = {
                "count": float(len(walls)),
                "wall_total": sum(walls),
                "wall_mean": sum(walls) / len(walls),
                "wall_max": max(walls),
                "sim_total": sum(sims),
            }
        return out


__all__ = ["NULL_SPAN", "NullTracer", "SpanRecord", "Tracer"]
