"""Fairness metrics over per-tenant allocations.

Jain's fairness index over a vector of non-negative allocations::

    J(x) = (sum x)^2 / (n * sum x^2)

ranges from ``1/n`` (one tenant absorbs everything) to ``1.0`` (perfect
equality). The tenancy subsystem evaluates it on *normalized* frozen
time -- per-tenant frozen server-time divided by the tenant's fairness
weight -- so a perfectly fair policy scores 1.0 regardless of how skewed
the entitlements themselves are.
"""

from __future__ import annotations

from typing import Sequence


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index of ``values``; 1.0 for empty/all-zero input.

    An all-zero vector means nothing was allocated at all, which is
    vacuously fair -- returning 1.0 keeps short runs (no freezing before
    warm-up) from reading as maximally unfair.
    """
    xs = [float(v) for v in values]
    if any(v < 0 for v in xs):
        raise ValueError(f"allocations must be non-negative, got {xs}")
    total = sum(xs)
    if not xs or total == 0.0:
        return 1.0
    square_sum = sum(v * v for v in xs)
    if square_sum == 0.0:
        # Subnormal allocations can underflow v*v to exactly zero while
        # the sum stays positive; such vectors are equal to within
        # float resolution, so report perfect fairness.
        return 1.0
    return (total * total) / (len(xs) * square_sum)


__all__ = ["jains_index"]
