"""``repro.telemetry`` -- unified metrics, tracing and exposition.

The control plane's observability subsystem, built from three parts:

- :mod:`~repro.telemetry.registry` -- counters, gauges and fixed-bucket
  histograms in one picklable, mergeable :class:`MetricsRegistry`.
- :mod:`~repro.telemetry.tracing` -- per-tick spans (``monitor.sweep``,
  ``controller.tick``, ``rhc.decide``, ``scheduler.rpc``) carrying both
  sim-time and wall-time durations in a ring-buffer store.
- :mod:`~repro.telemetry.exposition` -- Prometheus text format and
  canonical JSON snapshots.

Components receive a :class:`Telemetry` facade. There is exactly one
disabled instance (:func:`Telemetry.disabled`): it hands out shared
no-op instruments and null spans, so uninstrumented-by-configuration
runs pay one empty method call per record site and produce bit-identical
trajectories to instrumented ones -- telemetry observes the simulation,
it never participates in it.
"""

from __future__ import annotations

import logging
from typing import Callable, Mapping, Optional, Sequence, Union

from repro.telemetry.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    registry_from_snapshot,
    render_json,
    render_prometheus,
    save_snapshot,
    snapshot,
)
from repro.telemetry.fairness import jains_index
from repro.telemetry.registry import (
    DEFAULT_TIME_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullCounter,
    NullGauge,
    NullHistogram,
)
from repro.telemetry.tracing import NULL_SPAN, NullTracer, SpanRecord, Tracer


class Telemetry:
    """One run's telemetry surface: a registry plus a tracer.

    Use :meth:`create` for an enabled instance and :meth:`disabled` for
    the shared no-op one; components should accept either and call the
    same methods unconditionally.
    """

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(
        self,
        enabled: bool,
        registry: Optional[MetricsRegistry],
        tracer: Union[Tracer, NullTracer],
    ) -> None:
        self.enabled = enabled
        self.registry = registry
        self.tracer = tracer

    @classmethod
    def create(cls, trace_capacity: int = 8192) -> "Telemetry":
        return cls(True, MetricsRegistry(), Tracer(capacity=trace_capacity))

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The process-wide no-op instance."""
        return _DISABLED

    # ------------------------------------------------------------------
    # Instruments (resolve once, record many)
    # ------------------------------------------------------------------
    def counter(
        self, name: str, help_text: str = "", labels: Optional[Mapping[str, str]] = None
    ):
        if not self.enabled:
            return NULL_COUNTER
        return self.registry.counter(name, help_text, labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Optional[Mapping[str, str]] = None
    ):
        if not self.enabled:
            return NULL_GAUGE
        return self.registry.gauge(name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ):
        if not self.enabled:
            return NULL_HISTOGRAM
        return self.registry.histogram(name, help_text, labels, buckets)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: object):
        return self.tracer.span(name, **attributes)

    def bind_sim_clock(self, clock: Callable[[], float]) -> None:
        self.tracer.bind_sim_clock(clock)

    def __reduce__(self):
        # The disabled instance is a process-wide singleton; components
        # test identity-free `enabled` flags but sharing one no-op object
        # keeps restored snapshots structurally identical to fresh runs.
        if not self.enabled:
            return (Telemetry.disabled, ())
        return (Telemetry, (True, self.registry, self.tracer))


_DISABLED = Telemetry(False, None, NullTracer())


def configure_logging(
    level: Union[str, int] = "warning", stream=None, force: bool = False
) -> None:
    """Wire the ``repro`` logger hierarchy to a stream handler.

    The library itself only attaches a ``NullHandler`` (in
    ``repro/__init__``), per stdlib convention; applications -- the CLI,
    tests, notebooks -- call this to actually see log lines. Repeated
    calls are idempotent unless ``force`` replaces the handler.
    """
    if isinstance(level, str):
        numeric = logging.getLevelName(level.upper())
        if not isinstance(numeric, int):
            raise ValueError(f"unknown log level {level!r}")
        level = numeric
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    stream_handlers = [
        h for h in logger.handlers if isinstance(h, logging.StreamHandler)
    ]
    if stream_handlers and not force:
        for handler in stream_handlers:
            handler.setLevel(level)
        return
    for handler in stream_handlers:
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setLevel(level)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    logger.addHandler(handler)


__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SPAN",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullTracer",
    "SpanRecord",
    "Telemetry",
    "Tracer",
    "configure_logging",
    "jains_index",
    "registry_from_snapshot",
    "render_json",
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "save_snapshot",
    "snapshot",
]
