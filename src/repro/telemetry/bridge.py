"""Bridges from the pre-telemetry observability APIs onto the registry.

PR 2 gave the controller a bespoke :class:`ControllerHealth` dataclass
and the simulator has long had :class:`ControlEventLog` as its audit
trail. Both APIs survive -- tests and reports consume them -- but their
numbers now also land in the metrics registry, making the registry the
one surface exposition reads. This module holds the mapping:

- every ``ControllerHealth`` counter mirrors into
  ``repro_controller_health_total{kind=...}``;
- every ``ControlEventLog`` record mirrors into
  ``repro_control_events_total{kind=...}``.

``health_summary_from_registry`` reads the mirrored counters back into
the exact dict :meth:`ControllerHealth.summary` produces, which is how
the tests pin the two surfaces together.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.telemetry.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry import Telemetry

HEALTH_COUNTER = "repro_controller_health_total"
HEALTH_COUNTER_HELP = (
    "Defensive actions of the hardened control loop, by kind "
    "(mirrors ControllerHealth.summary())"
)

CONTROL_EVENTS_COUNTER = "repro_control_events_total"
CONTROL_EVENTS_HELP = (
    "Control-plane actions recorded by the audit event log, by kind"
)

#: the scalar counters of ControllerHealth.summary(), in summary order
HEALTH_KINDS = (
    "degraded_ticks",
    "skipped_ticks",
    "rpc_retries",
    "rpc_giveups",
    "reconciliations",
    "reconciliation_diff_total",
    "crashes",
    "recoveries",
    "budget_updates",
)


def health_counters(telemetry: "Telemetry") -> Dict[str, object]:
    """One registry counter per ControllerHealth scalar, keyed by kind.

    With disabled telemetry these are the shared no-op counters, so
    :meth:`ControllerHealth.bump` stays branch-free.
    """
    return {
        kind: telemetry.counter(
            HEALTH_COUNTER, HEALTH_COUNTER_HELP, labels={"kind": kind}
        )
        for kind in HEALTH_KINDS
    }


def health_summary_from_registry(registry: MetricsRegistry) -> Dict[str, int]:
    """Rebuild ``ControllerHealth.summary()`` from the mirrored counters."""
    return {
        kind: int(registry.value(HEALTH_COUNTER, {"kind": kind}) or 0)
        for kind in HEALTH_KINDS
    }


def control_event_counter(telemetry: "Telemetry", kind: str):
    """The registry counter mirroring one event-log kind."""
    return telemetry.counter(
        CONTROL_EVENTS_COUNTER, CONTROL_EVENTS_HELP, labels={"kind": kind}
    )


__all__ = [
    "CONTROL_EVENTS_COUNTER",
    "CONTROL_EVENTS_HELP",
    "HEALTH_COUNTER",
    "HEALTH_COUNTER_HELP",
    "HEALTH_KINDS",
    "control_event_counter",
    "health_counters",
    "health_summary_from_registry",
]
