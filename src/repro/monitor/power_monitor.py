"""Per-minute power sampling and aggregation.

Every ``interval`` seconds (one minute by default, the paper's choice of
"a good tradeoff between measurement accuracy and monitoring overhead"),
the monitor reads each registered server's power through a simulated IPMI
interface -- the true model power perturbed by multiplicative measurement
noise -- aggregates it per group, and appends the results to the
time-series database. Violation accounting (one violation per sampled
minute in which a group's power exceeds its budget) also lives here, since
the monitor is the observer that defines the paper's violation metric.
"""

from __future__ import annotations

import logging
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.cluster.group import ServerGroup
from repro.monitor.tsdb import TimeSeriesDatabase
from repro.sim.engine import Engine
from repro.sim.events import EventPriority
from repro.telemetry import Telemetry

logger = logging.getLogger(__name__)


class PowerMonitor:
    """Samples server power and serves aggregated group series.

    Parameters
    ----------
    engine:
        Simulation engine the sampling loop runs on.
    db:
        Time-series database to write into (created if omitted).
    interval:
        Sampling period in seconds (60 = the paper's configuration).
    noise_sigma:
        Relative standard deviation of per-server measurement noise. IPMI
        power readings carry on the order of 1% error.
    rng:
        Explicit random generator for the noise.
    store_per_server:
        Also record one series per server (needed only by the freeze-decay
        experiment of Figure 4; off by default to bound memory).
    ipmi_failure_rate:
        When positive, sampling goes through a simulated IPMI/BMC fleet
        (:class:`~repro.monitor.ipmi.IpmiFleet`): quantized readings with
        occasional poll timeouts covered by last-known values. Zero keeps
        the fast direct-noise path.
    """

    def __init__(
        self,
        engine: Engine,
        db: Optional[TimeSeriesDatabase] = None,
        interval: float = 60.0,
        noise_sigma: float = 0.01,
        rng: Optional[np.random.Generator] = None,
        store_per_server: bool = False,
        ipmi_failure_rate: float = 0.0,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma}")
        if not 0.0 <= ipmi_failure_rate < 1.0:
            raise ValueError(
                f"ipmi_failure_rate must be in [0, 1), got {ipmi_failure_rate}"
            )
        self.engine = engine
        self.db = db if db is not None else TimeSeriesDatabase()
        self.interval = interval
        self.noise_sigma = noise_sigma
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.store_per_server = store_per_server
        self.ipmi_failure_rate = ipmi_failure_rate
        self._groups: Dict[str, ServerGroup] = {}
        self._fleets: Dict[str, "IpmiFleet"] = {}
        self.violations: Dict[str, int] = {}
        #: names of Row groups whose breaker has tripped (catastrophic)
        self.breaker_trips: set = set()
        self.samples_taken = 0
        #: monitoring blackout: while True the per-minute sweep returns
        #: nothing and the TSDB goes stale (a collector outage, not a
        #: sensor fault -- the cluster itself keeps running)
        self.in_outage = False
        self.outages_begun = 0
        self.samples_suppressed = 0
        #: multiplicative sensor miscalibration applied to every reading
        #: the monitoring plane serves (1.0 = calibrated). True power --
        #: and therefore breaker physics -- is never affected; this is
        #: the "controller steering on lying sensors" hazard.
        self.sensor_bias = 1.0
        self.bias_windows_applied = 0
        #: per-server readings discarded because the BMC went stale (NaN)
        self.stale_readings = 0
        self.telemetry = (
            telemetry
            if telemetry is not None
            else getattr(engine, "telemetry", None) or Telemetry.disabled()
        )
        self._sweeps_counter = self.telemetry.counter(
            "repro_monitor_sweeps_total", "Per-minute monitor sweeps taken"
        )
        self._suppressed_counter = self.telemetry.counter(
            "repro_monitor_sweeps_suppressed_total",
            "Sweeps (or group samples) dropped during outages or all-stale reads",
        )
        self._stale_counter = self.telemetry.counter(
            "repro_monitor_stale_readings_total",
            "Per-server readings discarded because the BMC went stale",
        )
        self._outage_gauge = self.telemetry.gauge(
            "repro_monitor_in_outage",
            "1 while a monitoring blackout is in effect, else 0",
        )
        self._bias_gauge = self.telemetry.gauge(
            "repro_monitor_sensor_bias",
            "Multiplicative miscalibration applied to served readings",
        )
        self._group_instruments: Dict[str, Dict[str, object]] = {}
        #: facility budget override (e.g. ``DataCenter.power_budget_watts``);
        #: None = the sum of registered group budgets at sample time
        self._facility_budget_override: Optional[float] = None
        #: sampled minutes in which the facility total exceeded its budget
        self.facility_violations = 0
        self._facility_power_gauge = self.telemetry.gauge(
            "repro_monitor_facility_power_watts",
            "Latest facility-wide power (sum of group samples in a sweep)",
        )
        self._facility_budget_gauge = self.telemetry.gauge(
            "repro_monitor_facility_budget_watts",
            "Facility power budget the sweep totals are judged against",
        )
        self._facility_ratio_gauge = self.telemetry.gauge(
            "repro_monitor_facility_power_ratio",
            "Latest facility power normalized to the facility budget",
        )
        self._facility_violations_counter = self.telemetry.counter(
            "repro_monitor_facility_violations_total",
            "Sampled minutes in which the facility exceeded its budget",
        )

    # ------------------------------------------------------------------
    def register_group(self, group: ServerGroup) -> None:
        """Track ``group``; its series key is ``power/<name>``."""
        if group.name in self._groups:
            raise ValueError(f"group {group.name!r} already registered")
        if group.name == "facility":
            raise ValueError(
                "'facility' is reserved for the facility-wide series"
            )
        self._groups[group.name] = group
        self.violations[group.name] = 0
        labels = {"group": group.name}
        self._group_instruments[group.name] = {
            "power": self.telemetry.gauge(
                "repro_monitor_group_power_watts",
                "Latest aggregated group power reading",
                labels,
            ),
            "ratio": self.telemetry.gauge(
                "repro_monitor_group_power_ratio",
                "Latest group power normalized to its budget P_M",
                labels,
            ),
            "violations": self.telemetry.counter(
                "repro_monitor_violations_total",
                "Sampled minutes in which the group exceeded its budget",
                labels,
            ),
            "stale_endpoints": self.telemetry.gauge(
                "repro_monitor_stale_endpoints",
                "BMC endpoints currently read as stale (NaN)",
                labels,
            ),
        }
        if self.ipmi_failure_rate > 0:
            from repro.monitor.ipmi import IpmiFleet

            self._fleets[group.name] = IpmiFleet(
                group.servers,
                rng=self.rng,
                noise_sigma=self.noise_sigma,
                failure_rate=self.ipmi_failure_rate,
                telemetry=self.telemetry,
                group=group.name,
            )

    def register_groups(self, groups: Iterable[ServerGroup]) -> None:
        for group in groups:
            self.register_group(group)

    def groups(self) -> List[ServerGroup]:
        return list(self._groups.values())

    # ------------------------------------------------------------------
    # Facility-level observability
    # ------------------------------------------------------------------
    def set_facility_budget(self, watts: Optional[float]) -> None:
        """Pin the facility budget (e.g. ``DataCenter.power_budget_watts``).

        Without an explicit budget the facility is judged against the sum
        of registered group budgets at sample time -- correct for both
        static partitions and a fleet coordinator that conserves the
        facility total while moving allocations between rows.
        """
        if watts is not None and watts <= 0:
            raise ValueError(f"facility budget must be positive, got {watts}")
        self._facility_budget_override = (
            float(watts) if watts is not None else None
        )

    @property
    def facility_budget_watts(self) -> float:
        """The budget facility sweeps are judged against."""
        if self._facility_budget_override is not None:
            return self._facility_budget_override
        return sum(g.power_budget_watts for g in self._groups.values())

    def start(self, until: float, first_at: Optional[float] = None) -> None:
        """Begin periodic sampling on the engine."""
        self.engine.schedule_periodic(
            self.interval,
            EventPriority.MONITOR_SAMPLE,
            self.sample_once,
            first_at=first_at,
            until=until,
        )

    # ------------------------------------------------------------------
    # Outage control (the monitor-blackout fault seam)
    # ------------------------------------------------------------------
    def begin_outage(self) -> None:
        """Enter a monitoring blackout: sweeps are dropped until
        :meth:`end_outage`. Idempotent."""
        if not self.in_outage:
            self.in_outage = True
            self.outages_begun += 1
            self._outage_gauge.set(1.0)
            logger.warning(
                "monitoring blackout began at t=%.0fs (outage #%d)",
                self.engine.now,
                self.outages_begun,
            )

    def end_outage(self) -> None:
        """Leave a monitoring blackout; the next sweep lands normally."""
        if self.in_outage:
            logger.info("monitoring blackout ended at t=%.0fs", self.engine.now)
        self.in_outage = False
        self._outage_gauge.set(0.0)

    # ------------------------------------------------------------------
    # Sensor miscalibration (the data-plane drift fault seam)
    # ------------------------------------------------------------------
    def set_sensor_bias(self, factor: float) -> None:
        """Install (or clear, with 1.0) a multiplicative calibration error.

        Applied to every per-server reading this monitor serves -- the
        stored series, violation accounting and :meth:`snapshot_server_powers`
        all see the biased values, exactly as a miscalibrated IPMI fleet
        would present them. Idempotent per factor.
        """
        if factor <= 0:
            raise ValueError(f"sensor bias factor must be positive, got {factor}")
        if factor != 1.0 and self.sensor_bias == 1.0:
            self.bias_windows_applied += 1
            logger.warning(
                "sensor miscalibration began at t=%.0fs (factor %.3f)",
                self.engine.now,
                factor,
            )
        elif factor == 1.0 and self.sensor_bias != 1.0:
            logger.info("sensor calibration restored at t=%.0fs", self.engine.now)
        self.sensor_bias = float(factor)
        self._bias_gauge.set(self.sensor_bias)

    # ------------------------------------------------------------------
    def sample_once(self) -> None:
        """Take one sample of every registered group.

        During an outage the sweep is dropped entirely -- no TSDB write,
        no violation accounting -- which is what makes the stored series
        *stale* rather than merely noisy. Consumers must check sample
        timestamps (:meth:`latest_normalized_sample`) before acting.
        """
        if self.in_outage:
            self.samples_suppressed += 1
            self._suppressed_counter.inc()
            return
        now = self.engine.now
        self.samples_taken += 1
        self._sweeps_counter.inc()
        facility_total = 0.0
        facility_groups = 0
        with self.telemetry.span("monitor.sweep", groups=len(self._groups)):
            for group in self._groups.values():
                instruments = self._group_instruments[group.name]
                fleet = self._fleets.get(group.name)
                if fleet is not None:
                    if fleet.vectorized:
                        # Array sweep, bit-identical to the dict path
                        # under the fleet draw-order contract.
                        readings = fleet.poll_all_array()
                    else:
                        polled = fleet.poll_all()
                        readings = np.array(
                            [polled[s.server_id] for s in group.servers], dtype=float
                        )
                    instruments["stale_endpoints"].set(fleet.stale_count)
                    stale = int(np.count_nonzero(~np.isfinite(readings)))
                    if stale:
                        self.stale_readings += stale
                        self._stale_counter.inc(stale)
                        if stale == len(readings):
                            # Every BMC stale: there is no measurement to
                            # publish. Dropping the group sample (instead of
                            # writing 0 W) keeps the series honest.
                            self.samples_suppressed += 1
                            self._suppressed_counter.inc()
                            logger.warning(
                                "group %s: every BMC stale at t=%.0fs; "
                                "sample dropped",
                                group.name,
                                now,
                            )
                            continue
                else:
                    # Per-server true power: an array expression on the
                    # vectorized backend, a per-object loop otherwise --
                    # bit-identical either way (see ClusterState).
                    true_powers = group.server_powers()
                    if self.noise_sigma > 0:
                        noise = 1.0 + self.noise_sigma * self.rng.standard_normal(
                            len(true_powers)
                        )
                        readings = true_powers * noise
                    else:
                        readings = true_powers
                if self.sensor_bias != 1.0:
                    readings = readings * self.sensor_bias
                total = float(np.nansum(readings))
                facility_total += total
                facility_groups += 1
                if self.store_per_server:
                    for server, reading in zip(group.servers, readings):
                        self.db.write(
                            f"power/server/{server.server_id}", now, reading
                        )
                self.db.write(f"power/{group.name}", now, total)
                normalized = total / group.power_budget_watts
                self.db.write(f"power_norm/{group.name}", now, normalized)
                instruments["power"].set(total)
                instruments["ratio"].set(normalized)
                if total > group.power_budget_watts:
                    self.violations[group.name] += 1
                    instruments["violations"].inc()
                    logger.debug(
                        "group %s over budget at t=%.0fs (%.0f W, ratio %.3f)",
                        group.name,
                        now,
                        total,
                        normalized,
                    )
                # Rows carry a physical breaker; evaluate it on the *true*
                # power (a breaker doesn't care about sensor noise).
                check_breaker = getattr(group, "check_breaker", None)
                if check_breaker is not None and check_breaker():
                    if group.name not in self.breaker_trips:
                        logger.error(
                            "group %s: circuit breaker tripped at t=%.0fs",
                            group.name,
                            now,
                        )
                    self.breaker_trips.add(group.name)
            # Facility roll-up: the sum of the group samples published
            # this sweep. Computed from already-drawn readings -- no extra
            # RNG draws, so registering it perturbs no trajectory.
            if facility_groups:
                facility_budget = self.facility_budget_watts
                self.db.write("power/facility", now, facility_total)
                self._facility_power_gauge.set(facility_total)
                self._facility_budget_gauge.set(facility_budget)
                self._facility_ratio_gauge.set(facility_total / facility_budget)
                if facility_total > facility_budget:
                    self.facility_violations += 1
                    self._facility_violations_counter.inc()

    # ------------------------------------------------------------------
    # Query API (stands in for the paper's RESTful endpoint)
    # ------------------------------------------------------------------
    def latest_power(self, group_name: str) -> float:
        """Most recent aggregated power reading of a group, in watts."""
        return self.db.latest(f"power/{group_name}")

    def latest_normalized_power(self, group_name: str) -> float:
        """Most recent group power normalized to its budget P_M."""
        return self.db.latest(f"power_norm/{group_name}")

    def latest_normalized_sample(self, group_name: str) -> "tuple[float, float]":
        """``(timestamp, power/P_M)`` of the most recent sample.

        The timestamp lets consumers detect staleness: during a
        monitoring blackout the latest sample stops advancing, and a
        controller that compares it against the current time can tell it
        is steering on old data.
        """
        return self.db.latest_point(f"power_norm/{group_name}")

    def latest_power_sample(self, group_name: str) -> "tuple[float, float]":
        """``(timestamp, watts)`` of the most recent absolute sample.

        The denominator-free sibling of :meth:`latest_normalized_sample`:
        consumers whose budget can change between sweeps (rows under a
        fleet coordinator) re-normalize against their *current* budget.
        """
        return self.db.latest_point(f"power/{group_name}")

    def facility_power_series(self, start=None, end=None):
        """``(times, watts)`` of the facility-wide roll-up series."""
        return self.db.query("power/facility", start, end)

    def power_series(self, group_name: str, start=None, end=None):
        """``(times, watts)`` arrays for a group."""
        return self.db.query(f"power/{group_name}", start, end)

    def normalized_power_series(self, group_name: str, start=None, end=None):
        """``(times, power/P_M)`` arrays for a group."""
        return self.db.query(f"power_norm/{group_name}", start, end)

    def snapshot_server_powers(self, group_name: str) -> Dict[int, float]:
        """On-demand noisy per-server readings for a group (not stored).

        The controller uses this to rank servers by power when choosing
        freeze victims; it sees the same noisy IPMI readings as the
        aggregated series, not the simulator's true state.
        """
        if group_name not in self._groups:
            raise KeyError(f"unknown group {group_name!r}")
        group = self._groups[group_name]
        readings: Dict[int, float] = {}
        if self.noise_sigma > 0:
            noise = 1.0 + self.noise_sigma * self.rng.standard_normal(
                len(group.servers)
            )
        else:
            noise = np.ones(len(group.servers))
        if group.vectorized:
            values = group.server_powers() * noise * self.sensor_bias
            for server, value in zip(group.servers, values):
                readings[server.server_id] = float(value)
        else:
            for server, factor in zip(group.servers, noise):
                readings[server.server_id] = (
                    server.power_watts() * factor * self.sensor_bias
                )
        return readings

    def violation_count(self, group_name: str) -> int:
        if group_name not in self.violations:
            raise KeyError(f"unknown group {group_name!r}")
        return self.violations[group_name]


__all__ = ["PowerMonitor"]
