"""In-memory time-series database with a range-query API.

Stands in for the MySQL-backed store of the paper's power monitor. Points
are appended in time order (the monitor is the only writer) and queries
return numpy arrays, which the analysis layer consumes directly. Series
can be dumped to and reloaded from CSV, which is how recorded runs are
archived and replayed (e.g. to train the demand estimator on history, as
production would).
"""

from __future__ import annotations

import bisect
import csv
import io
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.durability.atomic import atomic_write_text


class TimeSeries:
    """One append-only metric series of ``(timestamp, value)`` points."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def append(self, timestamp: float, value: float) -> None:
        """Append a point; timestamps must be non-decreasing."""
        if self._times and timestamp < self._times[-1]:
            raise ValueError(
                f"series {self.name!r}: timestamp {timestamp} precedes "
                f"last point {self._times[-1]}"
            )
        self._times.append(timestamp)
        self._values.append(value)

    def last(self) -> Tuple[float, float]:
        """Most recent ``(timestamp, value)``; raises if empty."""
        if not self._times:
            raise LookupError(f"series {self.name!r} is empty")
        return self._times[-1], self._values[-1]

    def last_value(self) -> float:
        return self.last()[1]

    def range(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Points with ``start <= t < end`` as ``(times, values)`` arrays."""
        lo = 0 if start is None else bisect.bisect_left(self._times, start)
        hi = len(self._times) if end is None else bisect.bisect_left(self._times, end)
        return (
            np.asarray(self._times[lo:hi], dtype=float),
            np.asarray(self._values[lo:hi], dtype=float),
        )

    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    def resample(
        self, bucket_seconds: float, aggregate: str = "mean"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Roll the series up into fixed time buckets.

        Buckets are aligned to multiples of ``bucket_seconds``; the
        returned timestamps are bucket starts and empty buckets are
        omitted. ``aggregate`` is ``"mean"``, ``"max"``, ``"min"`` or
        ``"sum"`` -- the rollups a dashboard (or the Figure 9 analysis)
        needs.
        """
        if bucket_seconds <= 0:
            raise ValueError(f"bucket_seconds must be positive, got {bucket_seconds}")
        reducers = {"mean": np.mean, "max": np.max, "min": np.min, "sum": np.sum}
        if aggregate not in reducers:
            raise ValueError(
                f"aggregate must be one of {sorted(reducers)}, got {aggregate!r}"
            )
        if not self._times:
            return np.empty(0), np.empty(0)
        times = self.times()
        values = self.values()
        buckets = np.floor(times / bucket_seconds).astype(np.int64)
        reduce = reducers[aggregate]
        out_times = []
        out_values = []
        start = 0
        for i in range(1, len(buckets) + 1):
            if i == len(buckets) or buckets[i] != buckets[start]:
                out_times.append(buckets[start] * bucket_seconds)
                out_values.append(reduce(values[start:i]))
                start = i
        return np.asarray(out_times, dtype=float), np.asarray(out_values, dtype=float)


class TimeSeriesDatabase:
    """A collection of named :class:`TimeSeries`.

    ``query`` is the programmatic equivalent of the paper's RESTful HTTP
    endpoint: callers address metrics by name and time range and never
    touch monitor internals.
    """

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}

    def series(self, name: str) -> TimeSeries:
        """Get or create the series ``name``."""
        found = self._series.get(name)
        if found is None:
            found = TimeSeries(name)
            self._series[name] = found
        return found

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def names(self) -> List[str]:
        return sorted(self._series)

    def write(self, name: str, timestamp: float, value: float) -> None:
        self.series(name).append(timestamp, value)

    def query(
        self, name: str, start: Optional[float] = None, end: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Range query; unknown metrics raise ``KeyError``."""
        if name not in self._series:
            raise KeyError(f"unknown metric {name!r}")
        return self._series[name].range(start, end)

    def latest(self, name: str) -> float:
        if name not in self._series:
            raise KeyError(f"unknown metric {name!r}")
        return self._series[name].last_value()

    def latest_point(self, name: str) -> Tuple[float, float]:
        """Most recent ``(timestamp, value)`` of a metric.

        The timestamp is what lets a consumer decide whether the value is
        *stale* -- a controller steering on a power reading must know how
        old that reading is, not just its magnitude.
        """
        if name not in self._series:
            raise KeyError(f"unknown metric {name!r}")
        return self._series[name].last()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def dump_csv(self, path: Union[str, Path]) -> int:
        """Write every series as ``metric,timestamp,value`` rows.

        Returns the number of points written.
        """
        count = 0
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["metric", "timestamp", "value"])
        for name in self.names():
            series = self._series[name]
            for t, v in zip(series.times(), series.values()):
                writer.writerow([name, repr(float(t)), repr(float(v))])
                count += 1
        atomic_write_text(path, buffer.getvalue())
        return count

    @classmethod
    def load_csv(cls, path: Union[str, Path]) -> "TimeSeriesDatabase":
        """Rebuild a database from :meth:`dump_csv` output."""
        db = cls()
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header != ["metric", "timestamp", "value"]:
                raise ValueError(f"unrecognized TSDB CSV header: {header}")
            for row in reader:
                if len(row) != 3:
                    raise ValueError(f"malformed TSDB CSV row: {row}")
                db.write(row[0], float(row[1]), float(row[2]))
        return db


__all__ = ["TimeSeries", "TimeSeriesDatabase"]
