"""Power monitoring substrate: per-minute sampling into a time-series DB.

Stands in for the paper's in-house monitor (IPMI sampling -> streaming
aggregation -> MySQL time-series storage behind a RESTful query API). The
controller consumes the same signal shape: per-minute, per-group
aggregated power with per-server measurement noise.
"""

from repro.monitor.tsdb import TimeSeries, TimeSeriesDatabase
from repro.monitor.power_monitor import PowerMonitor

__all__ = ["TimeSeries", "TimeSeriesDatabase", "PowerMonitor"]
