"""Simulated IPMI/BMC power readings.

The paper's monitor "collects server-level power utilization, among other
metrics, through the intelligent platform management interface (IPMI)".
Real BMC reads are imperfect: readings are quantized to whole watts,
carry sensor noise, and occasionally time out. This layer models those
properties so the monitor's resilience path (carrying the last known
reading through a failed poll) is actually exercised.

RNG draw-order contract
-----------------------
A fleet sweep consumes the shared generator in a *fixed, batchable*
order: first one uniform per endpoint (timeout lottery, drawn only when
the fleet's ``failure_rate`` is positive), then one standard normal per
endpoint (sensor noise, drawn only when ``noise_sigma`` is positive) --
each batch covering every endpoint in fleet order, including the ones
that time out. Both backends follow this contract (the object path
pre-draws the batches and hands each endpoint its values), so
``poll_all`` and ``poll_all_array`` consume identical bit streams and
produce bit-identical readings. A *standalone* ``BmcEndpoint.read_power``
call (no fleet) draws lazily, as a lone BMC conversation would.
"""

from __future__ import annotations

import logging
from typing import Dict, Optional, Set

import numpy as np

from repro.cluster.server import Server
from repro.cluster.state import shared_state_of
from repro.telemetry import Telemetry

logger = logging.getLogger(__name__)


class BmcEndpoint:
    """The management controller of one server.

    Parameters
    ----------
    server:
        The managed server (source of true power).
    rng:
        Random source for noise and timeouts.
    noise_sigma:
        Relative standard deviation of sensor noise.
    failure_rate:
        Probability that a poll times out (returns ``None``).
    quantize_watts:
        Reading resolution; IPMI power sensors report whole watts.
    """

    def __init__(
        self,
        server: Server,
        rng: np.random.Generator,
        noise_sigma: float = 0.01,
        failure_rate: float = 0.001,
        quantize_watts: float = 1.0,
    ) -> None:
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma}")
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError(f"failure_rate must be in [0, 1), got {failure_rate}")
        if quantize_watts <= 0:
            raise ValueError(f"quantize_watts must be positive, got {quantize_watts}")
        self.server = server
        self.rng = rng
        self.noise_sigma = noise_sigma
        self.failure_rate = failure_rate
        self.quantize_watts = quantize_watts
        self.polls = 0
        self.timeouts = 0
        # Pre-drawn randomness queued by a fleet sweep (see the module
        # draw-order contract); consumed (and cleared) by the next read.
        self._queued_u: Optional[float] = None
        self._queued_z: Optional[float] = None

    def queue_draws(self, u: Optional[float], z: Optional[float]) -> None:
        """Hand this endpoint its slice of a fleet sweep's batched draws."""
        self._queued_u = u
        self._queued_z = z

    def read_power(self) -> Optional[float]:
        """One poll: quantized noisy watts, or ``None`` on timeout."""
        u, z = self._queued_u, self._queued_z
        self._queued_u = self._queued_z = None
        self.polls += 1
        if self.failure_rate > 0:
            if u is None:
                u = self.rng.random()
            if u < self.failure_rate:
                self.timeouts += 1
                return None
        reading = self.server.power_watts()
        if self.noise_sigma > 0:
            if z is None:
                z = self.rng.standard_normal()
            reading *= 1.0 + self.noise_sigma * z
        quantized = round(reading / self.quantize_watts) * self.quantize_watts
        return max(0.0, quantized)


class IpmiFleet:
    """All BMC endpoints of a fleet, with *bounded* last-known-value fallback.

    ``poll_all`` returns a complete power map even when individual reads
    time out: a failed poll reuses the server's last successful reading
    (or its idle power before any success), which is exactly what a
    production aggregation pipeline does rather than dropping the row.

    The carry-through is bounded: after ``max_fallback_polls``
    *consecutive* timeouts the endpoint is declared stale and reads NaN
    until a poll succeeds again. Replaying an arbitrarily old value
    forever would let a dead BMC (or a dead server behind it) keep
    reporting its last busy-hour wattage indefinitely -- exactly the kind
    of fiction a power controller must not steer on. Stale endpoints are
    listed in :attr:`stale_ids`.

    Sweep state (last-known values, timeout streaks, staleness) lives in
    fleet-order arrays shared by both backends; when the servers share a
    :class:`~repro.cluster.state.ClusterState` on the vectorized backend,
    :meth:`poll_all_array` runs the whole sweep as array expressions and
    is bit-identical to :meth:`poll_all` (same draws, same arithmetic).
    The array path reads the *fleet-level* noise/failure parameters;
    per-endpoint overrides (a test poking one BMC) are an object-path
    feature.
    """

    def __init__(
        self,
        servers,
        rng: np.random.Generator,
        noise_sigma: float = 0.01,
        failure_rate: float = 0.001,
        max_fallback_polls: int = 5,
        telemetry: Optional[Telemetry] = None,
        group: str = "",
        quantize_watts: float = 1.0,
    ) -> None:
        if max_fallback_polls < 0:
            raise ValueError(
                f"max_fallback_polls must be non-negative, got {max_fallback_polls}"
            )
        self._servers = list(servers)
        self.endpoints: Dict[int, BmcEndpoint] = {
            s.server_id: BmcEndpoint(
                s,
                rng,
                noise_sigma=noise_sigma,
                failure_rate=failure_rate,
                quantize_watts=quantize_watts,
            )
            for s in self._servers
        }
        if not self.endpoints:
            raise ValueError("IpmiFleet needs at least one server")
        self.rng = rng
        self.noise_sigma = noise_sigma
        self.failure_rate = failure_rate
        self.quantize_watts = quantize_watts
        self.max_fallback_polls = max_fallback_polls
        n = len(self._servers)
        self._server_ids = np.array(
            [s.server_id for s in self._servers], dtype=np.int64
        )
        self._pos = {s.server_id: i for i, s in enumerate(self._servers)}
        self._last_known = np.array(
            [s.power_params.idle_watts for s in self._servers], dtype=np.float64
        )
        self._timeout_streak = np.zeros(n, dtype=np.int64)
        self._stale = np.zeros(n, dtype=bool)
        self._state, self._indices = shared_state_of(self._servers)
        self.fallbacks_used = 0
        self.stale_reads = 0
        self._polls = 0
        self._timeouts = 0
        tel = telemetry if telemetry is not None else Telemetry.disabled()
        labels = {"group": group} if group else None
        self._polls_counter = tel.counter(
            "repro_ipmi_polls_total", "BMC power polls issued", labels
        )
        self._timeouts_counter = tel.counter(
            "repro_ipmi_timeouts_total", "BMC power polls that timed out", labels
        )
        self._fallbacks_counter = tel.counter(
            "repro_ipmi_fallbacks_total",
            "Timed-out polls covered by the last known reading",
            labels,
        )
        self._stale_reads_counter = tel.counter(
            "repro_ipmi_stale_reads_total",
            "Polls returned as NaN because the endpoint exceeded its "
            "fallback budget",
            labels,
        )

    @property
    def vectorized(self) -> bool:
        """Whether sweeps run on the array backend for this fleet."""
        return self._state is not None and self._state.backend == "vectorized"

    def _draw_batches(self):
        """One sweep's randomness, in contract order: uniforms then normals."""
        n = len(self._servers)
        us = self.rng.random(n) if self.failure_rate > 0 else None
        zs = self.rng.standard_normal(n) if self.noise_sigma > 0 else None
        return us, zs

    def poll_all(self) -> Dict[int, float]:
        """Object-backend sweep: per-endpoint reads on pre-drawn batches."""
        us, zs = self._draw_batches()
        readings: Dict[int, float] = {}
        self._polls += len(self.endpoints)
        self._polls_counter.inc(len(self.endpoints))
        for pos, (server_id, endpoint) in enumerate(self.endpoints.items()):
            endpoint.queue_draws(
                float(us[pos]) if us is not None else None,
                float(zs[pos]) if zs is not None else None,
            )
            value = endpoint.read_power()
            if value is None:
                self._timeouts += 1
                self._timeouts_counter.inc()
                self._timeout_streak[pos] += 1
                if self._timeout_streak[pos] > self.max_fallback_polls:
                    if not self._stale[pos]:
                        logger.warning(
                            "BMC %d exceeded %d consecutive timeouts; "
                            "endpoint is stale",
                            server_id,
                            self.max_fallback_polls,
                        )
                    self._stale[pos] = True
                    self.stale_reads += 1
                    self._stale_reads_counter.inc()
                    value = float("nan")
                else:
                    self.fallbacks_used += 1
                    self._fallbacks_counter.inc()
                    value = float(self._last_known[pos])
            else:
                self._timeout_streak[pos] = 0
                self._stale[pos] = False
                self._last_known[pos] = value
            readings[server_id] = value
        return readings

    def poll_all_array(self) -> np.ndarray:
        """Vectorized sweep: readings in fleet order, NaN where stale.

        Bit-identical to :meth:`poll_all` under the draw-order contract:
        identical batched draws, identical scalar arithmetic per element
        (``np.rint`` is round-half-even like Python's ``round``), and the
        same bounded last-known-value carry.
        """
        us, zs = self._draw_batches()
        n = len(self._servers)
        self._polls += n
        self._polls_counter.inc(n)
        true_powers = self._state.server_powers(self._indices)
        if zs is not None:
            readings = true_powers * (1.0 + self.noise_sigma * zs)
        else:
            readings = true_powers
        readings = np.rint(readings / self.quantize_watts) * self.quantize_watts
        readings = np.maximum(0.0, readings)
        if us is not None:
            timed_out = us < self.failure_rate
        else:
            timed_out = np.zeros(n, dtype=bool)
        success = ~timed_out
        n_timeouts = int(np.count_nonzero(timed_out))
        if n_timeouts:
            self._timeouts += n_timeouts
            self._timeouts_counter.inc(n_timeouts)
            self._timeout_streak[timed_out] += 1
        self._timeout_streak[success] = 0
        was_stale = self._stale
        # A stale endpoint's streak only resets on success, so staleness
        # is exactly "streak exceeded the fallback budget".
        stale = self._timeout_streak > self.max_fallback_polls
        for pos in np.flatnonzero(stale & ~was_stale):
            logger.warning(
                "BMC %d exceeded %d consecutive timeouts; endpoint is stale",
                int(self._server_ids[pos]),
                self.max_fallback_polls,
            )
        self._stale = stale
        fallback = timed_out & ~stale
        n_fallbacks = int(np.count_nonzero(fallback))
        n_stale = int(np.count_nonzero(stale))
        if n_fallbacks:
            self.fallbacks_used += n_fallbacks
            self._fallbacks_counter.inc(n_fallbacks)
        if n_stale:
            self.stale_reads += n_stale
            self._stale_reads_counter.inc(n_stale)
        self._last_known[success] = readings[success]
        out = readings.copy()
        out[fallback] = self._last_known[fallback]
        out[stale] = np.nan
        return out

    @property
    def stale_ids(self) -> Set[int]:
        """Server ids of endpoints currently stale (reading NaN)."""
        return {int(self._server_ids[pos]) for pos in np.flatnonzero(self._stale)}

    @property
    def stale_count(self) -> int:
        return int(np.count_nonzero(self._stale))

    @property
    def total_polls(self) -> int:
        return self._polls

    @property
    def total_timeouts(self) -> int:
        return self._timeouts


__all__ = ["BmcEndpoint", "IpmiFleet"]
