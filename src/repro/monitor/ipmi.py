"""Simulated IPMI/BMC power readings.

The paper's monitor "collects server-level power utilization, among other
metrics, through the intelligent platform management interface (IPMI)".
Real BMC reads are imperfect: readings are quantized to whole watts,
carry sensor noise, and occasionally time out. This layer models those
properties so the monitor's resilience path (carrying the last known
reading through a failed poll) is actually exercised.
"""

from __future__ import annotations

import logging
from typing import Dict, Optional

import numpy as np

from repro.cluster.server import Server
from repro.telemetry import Telemetry

logger = logging.getLogger(__name__)


class BmcEndpoint:
    """The management controller of one server.

    Parameters
    ----------
    server:
        The managed server (source of true power).
    rng:
        Random source for noise and timeouts.
    noise_sigma:
        Relative standard deviation of sensor noise.
    failure_rate:
        Probability that a poll times out (returns ``None``).
    quantize_watts:
        Reading resolution; IPMI power sensors report whole watts.
    """

    def __init__(
        self,
        server: Server,
        rng: np.random.Generator,
        noise_sigma: float = 0.01,
        failure_rate: float = 0.001,
        quantize_watts: float = 1.0,
    ) -> None:
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma}")
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError(f"failure_rate must be in [0, 1), got {failure_rate}")
        if quantize_watts <= 0:
            raise ValueError(f"quantize_watts must be positive, got {quantize_watts}")
        self.server = server
        self.rng = rng
        self.noise_sigma = noise_sigma
        self.failure_rate = failure_rate
        self.quantize_watts = quantize_watts
        self.polls = 0
        self.timeouts = 0

    def read_power(self) -> Optional[float]:
        """One poll: quantized noisy watts, or ``None`` on timeout."""
        self.polls += 1
        if self.failure_rate > 0 and self.rng.random() < self.failure_rate:
            self.timeouts += 1
            return None
        reading = self.server.power_watts()
        if self.noise_sigma > 0:
            reading *= 1.0 + self.noise_sigma * self.rng.standard_normal()
        quantized = round(reading / self.quantize_watts) * self.quantize_watts
        return max(0.0, quantized)


class IpmiFleet:
    """All BMC endpoints of a fleet, with *bounded* last-known-value fallback.

    ``poll_all`` returns a complete power map even when individual reads
    time out: a failed poll reuses the server's last successful reading
    (or its idle power before any success), which is exactly what a
    production aggregation pipeline does rather than dropping the row.

    The carry-through is bounded: after ``max_fallback_polls``
    *consecutive* timeouts the endpoint is declared stale and reads NaN
    until a poll succeeds again. Replaying an arbitrarily old value
    forever would let a dead BMC (or a dead server behind it) keep
    reporting its last busy-hour wattage indefinitely -- exactly the kind
    of fiction a power controller must not steer on. Stale endpoints are
    listed in :attr:`stale_ids`.
    """

    def __init__(
        self,
        servers,
        rng: np.random.Generator,
        noise_sigma: float = 0.01,
        failure_rate: float = 0.001,
        max_fallback_polls: int = 5,
        telemetry: Optional[Telemetry] = None,
        group: str = "",
    ) -> None:
        if max_fallback_polls < 0:
            raise ValueError(
                f"max_fallback_polls must be non-negative, got {max_fallback_polls}"
            )
        self.endpoints: Dict[int, BmcEndpoint] = {
            s.server_id: BmcEndpoint(
                s, rng, noise_sigma=noise_sigma, failure_rate=failure_rate
            )
            for s in servers
        }
        if not self.endpoints:
            raise ValueError("IpmiFleet needs at least one server")
        self._last_known: Dict[int, float] = {
            s.server_id: s.power_params.idle_watts for s in servers
        }
        self.max_fallback_polls = max_fallback_polls
        self._timeout_streak: Dict[int, int] = {sid: 0 for sid in self.endpoints}
        self.stale_ids: set = set()
        self.fallbacks_used = 0
        self.stale_reads = 0
        tel = telemetry if telemetry is not None else Telemetry.disabled()
        labels = {"group": group} if group else None
        self._polls_counter = tel.counter(
            "repro_ipmi_polls_total", "BMC power polls issued", labels
        )
        self._timeouts_counter = tel.counter(
            "repro_ipmi_timeouts_total", "BMC power polls that timed out", labels
        )
        self._fallbacks_counter = tel.counter(
            "repro_ipmi_fallbacks_total",
            "Timed-out polls covered by the last known reading",
            labels,
        )
        self._stale_reads_counter = tel.counter(
            "repro_ipmi_stale_reads_total",
            "Polls returned as NaN because the endpoint exceeded its "
            "fallback budget",
            labels,
        )

    def poll_all(self) -> Dict[int, float]:
        readings: Dict[int, float] = {}
        self._polls_counter.inc(len(self.endpoints))
        for server_id, endpoint in self.endpoints.items():
            value = endpoint.read_power()
            if value is None:
                self._timeouts_counter.inc()
                self._timeout_streak[server_id] += 1
                if self._timeout_streak[server_id] > self.max_fallback_polls:
                    if server_id not in self.stale_ids:
                        logger.warning(
                            "BMC %d exceeded %d consecutive timeouts; "
                            "endpoint is stale",
                            server_id,
                            self.max_fallback_polls,
                        )
                    self.stale_ids.add(server_id)
                    self.stale_reads += 1
                    self._stale_reads_counter.inc()
                    value = float("nan")
                else:
                    self.fallbacks_used += 1
                    self._fallbacks_counter.inc()
                    value = self._last_known[server_id]
            else:
                self._timeout_streak[server_id] = 0
                self.stale_ids.discard(server_id)
                self._last_known[server_id] = value
            readings[server_id] = value
        return readings

    @property
    def total_polls(self) -> int:
        return sum(e.polls for e in self.endpoints.values())

    @property
    def total_timeouts(self) -> int:
        return sum(e.timeouts for e in self.endpoints.values())


__all__ = ["BmcEndpoint", "IpmiFleet"]
