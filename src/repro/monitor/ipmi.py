"""Simulated IPMI/BMC power readings.

The paper's monitor "collects server-level power utilization, among other
metrics, through the intelligent platform management interface (IPMI)".
Real BMC reads are imperfect: readings are quantized to whole watts,
carry sensor noise, and occasionally time out. This layer models those
properties so the monitor's resilience path (carrying the last known
reading through a failed poll) is actually exercised.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cluster.server import Server


class BmcEndpoint:
    """The management controller of one server.

    Parameters
    ----------
    server:
        The managed server (source of true power).
    rng:
        Random source for noise and timeouts.
    noise_sigma:
        Relative standard deviation of sensor noise.
    failure_rate:
        Probability that a poll times out (returns ``None``).
    quantize_watts:
        Reading resolution; IPMI power sensors report whole watts.
    """

    def __init__(
        self,
        server: Server,
        rng: np.random.Generator,
        noise_sigma: float = 0.01,
        failure_rate: float = 0.001,
        quantize_watts: float = 1.0,
    ) -> None:
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma}")
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError(f"failure_rate must be in [0, 1), got {failure_rate}")
        if quantize_watts <= 0:
            raise ValueError(f"quantize_watts must be positive, got {quantize_watts}")
        self.server = server
        self.rng = rng
        self.noise_sigma = noise_sigma
        self.failure_rate = failure_rate
        self.quantize_watts = quantize_watts
        self.polls = 0
        self.timeouts = 0

    def read_power(self) -> Optional[float]:
        """One poll: quantized noisy watts, or ``None`` on timeout."""
        self.polls += 1
        if self.failure_rate > 0 and self.rng.random() < self.failure_rate:
            self.timeouts += 1
            return None
        reading = self.server.power_watts()
        if self.noise_sigma > 0:
            reading *= 1.0 + self.noise_sigma * self.rng.standard_normal()
        quantized = round(reading / self.quantize_watts) * self.quantize_watts
        return max(0.0, quantized)


class IpmiFleet:
    """All BMC endpoints of a fleet, with last-known-value fallback.

    ``poll_all`` returns a complete power map even when individual reads
    time out: a failed poll reuses the server's last successful reading
    (or its idle power before any success), which is exactly what a
    production aggregation pipeline does rather than dropping the row.
    """

    def __init__(
        self,
        servers,
        rng: np.random.Generator,
        noise_sigma: float = 0.01,
        failure_rate: float = 0.001,
    ) -> None:
        self.endpoints: Dict[int, BmcEndpoint] = {
            s.server_id: BmcEndpoint(
                s, rng, noise_sigma=noise_sigma, failure_rate=failure_rate
            )
            for s in servers
        }
        if not self.endpoints:
            raise ValueError("IpmiFleet needs at least one server")
        self._last_known: Dict[int, float] = {
            s.server_id: s.power_params.idle_watts for s in servers
        }
        self.fallbacks_used = 0

    def poll_all(self) -> Dict[int, float]:
        readings: Dict[int, float] = {}
        for server_id, endpoint in self.endpoints.items():
            value = endpoint.read_power()
            if value is None:
                self.fallbacks_used += 1
                value = self._last_known[server_id]
            else:
                self._last_known[server_id] = value
            readings[server_id] = value
        return readings

    @property
    def total_polls(self) -> int:
        return sum(e.polls for e in self.endpoints.values())

    @property
    def total_timeouts(self) -> int:
        return sum(e.timeouts for e in self.endpoints.values())


__all__ = ["BmcEndpoint", "IpmiFleet"]
