"""Fault scenarios: declarative, picklable, deterministic.

A :class:`FaultScenario` is a frozen description of *what* goes wrong and
*when*, in absolute simulation seconds. It carries its own seed so that
stochastic faults (RPC failures) replay identically regardless of the
experiment seed -- a chaos run is reproducible end to end, which is what
makes chaos testing debuggable rather than folklore.

Times are absolute because the hazards are: an operator cares that the
monitor was dark from 01:10 to 01:20, not "for 3% of samples". Windows
that fall outside a run's horizon are simply never armed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class FaultScenario:
    """One control-plane fault schedule.

    Attributes
    ----------
    name:
        Label used in reports and the CLI registry.
    blackouts:
        ``(start_seconds, duration_seconds)`` monitor outage windows.
    rpc_failure_rate:
        Probability that one freeze/unfreeze RPC fails in transit.
    rpc_latency_seconds:
        Latency charged to a *successful* RPC (bookkeeping only).
    rpc_timeout_seconds:
        Latency a failed RPC burns before surfacing -- what the
        controller's per-tick RPC deadline is accounted against.
    crash_times:
        Instants at which the controller process dies.
    restart_delay_seconds:
        Supervisor restart latency after each crash.
    seed:
        Seed of the fault-injection RNG (independent of the experiment's).
    """

    name: str = "custom"
    blackouts: Tuple[Tuple[float, float], ...] = ()
    rpc_failure_rate: float = 0.0
    rpc_latency_seconds: float = 0.02
    rpc_timeout_seconds: float = 2.0
    crash_times: Tuple[float, ...] = ()
    restart_delay_seconds: float = 120.0
    seed: int = 0

    def __post_init__(self) -> None:
        # Canonicalize sequences to tuples so the scenario stays
        # hashable/picklable however it was constructed.
        object.__setattr__(
            self,
            "blackouts",
            tuple((float(s), float(d)) for s, d in self.blackouts),
        )
        object.__setattr__(
            self, "crash_times", tuple(float(t) for t in self.crash_times)
        )
        for start, duration in self.blackouts:
            if start < 0 or duration <= 0:
                raise ValueError(
                    f"blackout windows need start >= 0 and duration > 0, "
                    f"got ({start}, {duration})"
                )
        if not 0.0 <= self.rpc_failure_rate < 1.0:
            raise ValueError(
                f"rpc_failure_rate must be in [0, 1), got {self.rpc_failure_rate}"
            )
        if self.rpc_latency_seconds < 0 or self.rpc_timeout_seconds < 0:
            raise ValueError("RPC latencies must be non-negative")
        if any(t < 0 for t in self.crash_times):
            raise ValueError(f"crash_times must be non-negative, got {self.crash_times}")
        if self.restart_delay_seconds < 0:
            raise ValueError(
                f"restart_delay_seconds must be non-negative, "
                f"got {self.restart_delay_seconds}"
            )

    def describe(self) -> str:
        parts = []
        if self.blackouts:
            total = sum(d for _, d in self.blackouts)
            parts.append(
                f"{len(self.blackouts)} monitor blackout(s), {total / 60:.0f} min total"
            )
        if self.rpc_failure_rate > 0:
            parts.append(f"{self.rpc_failure_rate:.0%} RPC failure rate")
        if self.crash_times:
            parts.append(
                f"{len(self.crash_times)} controller crash(es), "
                f"restart after {self.restart_delay_seconds:.0f}s"
            )
        return f"{self.name}: " + ("; ".join(parts) if parts else "no faults")


def builtin_scenarios() -> Dict[str, FaultScenario]:
    """The named scenarios exposed through the CLI and CI smoke runs.

    Absolute times assume the standard harness layout (1 h warm-up, so
    the measurement window starts at t=3600 s): each hazard lands well
    inside the first measured hour and the scenarios compose -- ``chaos``
    is the acceptance scenario of a 10-minute blackout, 5% RPC faults and
    one mid-run controller crash.
    """
    blackout_window = ((4200.0, 600.0),)  # minutes 70-80: a 10-min dark spell
    return {
        "blackout": FaultScenario(name="blackout", blackouts=blackout_window),
        "flaky-rpc": FaultScenario(name="flaky-rpc", rpc_failure_rate=0.05),
        "crash": FaultScenario(name="crash", crash_times=(5700.0,)),
        "chaos": FaultScenario(
            name="chaos",
            blackouts=blackout_window,
            rpc_failure_rate=0.05,
            crash_times=(5700.0,),
        ),
    }


__all__ = ["FaultScenario", "builtin_scenarios"]
