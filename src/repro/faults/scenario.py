"""Fault scenarios: declarative, picklable, deterministic.

A :class:`FaultScenario` is a frozen description of *what* goes wrong and
*when*, in absolute simulation seconds. It carries its own seed so that
stochastic faults (RPC failures, server crashes) replay identically
regardless of the experiment seed -- a chaos run is reproducible end to
end, which is what makes chaos testing debuggable rather than folklore.

Times are absolute because the hazards are: an operator cares that the
monitor was dark from 01:10 to 01:20, not "for 3% of samples". Windows
that fall outside a run's horizon are simply never armed.

Two hazard planes live here:

- **control plane** (PR 2): monitor blackouts, scheduler RPC faults,
  controller crashes -- the control system failing.
- **data plane** (this PR): workload surges, IPMI sensor miscalibration,
  server crash storms -- the *world* misbehaving while the control
  system works as designed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

#: sanity bound on absolute event times: one simulated year. A crash
#: scheduled beyond this is almost certainly a units mistake (hours or
#: minutes passed where seconds were meant).
MAX_EVENT_SECONDS = 365.0 * 86400.0


def _check_windows(
    label: str,
    windows: Sequence[Tuple[float, float]],
    allow_overlap: bool = False,
) -> None:
    """Common validation for (start, duration) windows."""
    for start, duration in windows:
        if start < 0 or duration <= 0:
            raise ValueError(
                f"{label} windows need start >= 0 and duration > 0, "
                f"got ({start}, {duration})"
            )
        if start > MAX_EVENT_SECONDS:
            raise ValueError(
                f"{label} window starts at {start:.0f}s, beyond the "
                f"{MAX_EVENT_SECONDS:.0f}s sanity bound (units mistake?)"
            )
    if not allow_overlap:
        ordered = sorted(windows)
        for (s0, d0), (s1, _) in zip(ordered, ordered[1:]):
            if s1 < s0 + d0:
                raise ValueError(
                    f"{label} windows overlap: ({s0}, {d0}) and ({s1}, ...); "
                    "merge them into one window"
                )


@dataclass(frozen=True)
class FaultScenario:
    """One fault schedule across both planes.

    Attributes
    ----------
    name:
        Label used in reports and the CLI registry.
    blackouts:
        ``(start_seconds, duration_seconds)`` monitor outage windows.
    rpc_failure_rate:
        Probability that one freeze/unfreeze RPC fails in transit.
    rpc_latency_seconds:
        Latency charged to a *successful* RPC (bookkeeping only).
    rpc_timeout_seconds:
        Latency a failed RPC burns before surfacing -- what the
        controller's per-tick RPC deadline is accounted against.
    crash_times:
        Instants at which the controller process dies.
    restart_delay_seconds:
        Supervisor restart latency after each crash.
    surges:
        ``(start, duration, factor)`` workload surge windows: the batch
        arrival rate is multiplied by ``factor`` inside the window (a
        product launch, a retry storm). Demand hits every group drawing
        from the shared pool.
    tenant_surges:
        ``(tenant, start, duration, factor)`` windows multiplying only
        one tenant's arrival rate -- a single customer's launch or retry
        storm. No-op unless the run is tenancy-enabled and has a tenant
        of that name; windows for the same tenant must not overlap.
    sensor_bias:
        ``(start, duration, factor)`` IPMI miscalibration windows: every
        power reading the monitoring plane serves is multiplied by
        ``factor``. The controller cannot see the bias -- true power
        (and the breaker) is unaffected, which is exactly the hazard.
    server_mtbf_hours:
        Per-server mean time between failures for background server
        churn; 0 disables the failure process entirely.
    server_mttr_minutes:
        Mean repair time for a failed server.
    crash_storms:
        ``(start, duration, mtbf_hours)`` windows during which the
        per-server MTBF drops to ``mtbf_hours`` (a bad kernel rollout, a
        cooling failure). Requires the failure process, which is armed
        automatically when any storm is configured.
    coordinator_blackouts:
        ``(start_seconds, duration_seconds)`` windows during which the
        fleet coordinator loses its view of the facility (its process is
        partitioned from the monitoring plane). The budget ledger
        freezes at the last-good division; row controllers keep running
        against their frozen allocations. No-op in runs without a fleet
        coordinator.
    seed:
        Seed of the fault-injection RNGs (independent of the
        experiment's).
    """

    name: str = "custom"
    blackouts: Tuple[Tuple[float, float], ...] = ()
    rpc_failure_rate: float = 0.0
    rpc_latency_seconds: float = 0.02
    rpc_timeout_seconds: float = 2.0
    crash_times: Tuple[float, ...] = ()
    restart_delay_seconds: float = 120.0
    surges: Tuple[Tuple[float, float, float], ...] = ()
    tenant_surges: Tuple[Tuple[str, float, float, float], ...] = ()
    sensor_bias: Tuple[Tuple[float, float, float], ...] = ()
    server_mtbf_hours: float = 0.0
    server_mttr_minutes: float = 60.0
    crash_storms: Tuple[Tuple[float, float, float], ...] = ()
    coordinator_blackouts: Tuple[Tuple[float, float], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Canonicalize sequences to tuples so the scenario stays
        # hashable/picklable however it was constructed.
        object.__setattr__(
            self,
            "blackouts",
            tuple((float(s), float(d)) for s, d in self.blackouts),
        )
        object.__setattr__(
            self, "crash_times", tuple(float(t) for t in self.crash_times)
        )
        object.__setattr__(
            self,
            "surges",
            tuple((float(s), float(d), float(f)) for s, d, f in self.surges),
        )
        object.__setattr__(
            self,
            "tenant_surges",
            tuple(
                (str(t), float(s), float(d), float(f))
                for t, s, d, f in self.tenant_surges
            ),
        )
        object.__setattr__(
            self,
            "sensor_bias",
            tuple((float(s), float(d), float(f)) for s, d, f in self.sensor_bias),
        )
        object.__setattr__(
            self,
            "crash_storms",
            tuple((float(s), float(d), float(m)) for s, d, m in self.crash_storms),
        )
        object.__setattr__(
            self,
            "coordinator_blackouts",
            tuple((float(s), float(d)) for s, d in self.coordinator_blackouts),
        )
        _check_windows("blackout", self.blackouts)
        _check_windows("coordinator_blackout", self.coordinator_blackouts)
        _check_windows("surge", [(s, d) for s, d, _ in self.surges])
        for tenant in {t for t, _, _, _ in self.tenant_surges}:
            _check_windows(
                f"tenant_surge[{tenant}]",
                [(s, d) for t, s, d, _ in self.tenant_surges if t == tenant],
            )
        _check_windows("sensor_bias", [(s, d) for s, d, _ in self.sensor_bias])
        _check_windows("crash_storm", [(s, d) for s, d, _ in self.crash_storms])
        if not 0.0 <= self.rpc_failure_rate < 1.0:
            raise ValueError(
                f"rpc_failure_rate must be in [0, 1), got {self.rpc_failure_rate}"
            )
        if self.rpc_latency_seconds < 0 or self.rpc_timeout_seconds < 0:
            raise ValueError("RPC latencies must be non-negative")
        if any(t < 0 for t in self.crash_times):
            raise ValueError(f"crash_times must be non-negative, got {self.crash_times}")
        if any(t > MAX_EVENT_SECONDS for t in self.crash_times):
            raise ValueError(
                f"crash_times beyond the {MAX_EVENT_SECONDS:.0f}s sanity "
                f"bound (units mistake?): {self.crash_times}"
            )
        if self.restart_delay_seconds < 0:
            raise ValueError(
                f"restart_delay_seconds must be non-negative, "
                f"got {self.restart_delay_seconds}"
            )
        for _, _, factor in self.surges:
            if factor <= 0:
                raise ValueError(f"surge factor must be positive, got {factor}")
        for tenant, _, _, factor in self.tenant_surges:
            if not tenant:
                raise ValueError("tenant_surges need a non-empty tenant name")
            if factor <= 0:
                raise ValueError(
                    f"tenant_surge factor must be positive, got {factor}"
                )
        for _, _, factor in self.sensor_bias:
            if factor <= 0:
                raise ValueError(
                    f"sensor_bias factor must be positive, got {factor}"
                )
        if self.server_mtbf_hours < 0:
            raise ValueError(
                f"server_mtbf_hours must be non-negative, got {self.server_mtbf_hours}"
            )
        if self.server_mttr_minutes <= 0:
            raise ValueError(
                f"server_mttr_minutes must be positive, got {self.server_mttr_minutes}"
            )
        for _, _, mtbf in self.crash_storms:
            if mtbf <= 0:
                raise ValueError(
                    f"crash_storm mtbf_hours must be positive, got {mtbf}"
                )

    @property
    def wants_server_failures(self) -> bool:
        """Whether the server crash/repair process must be armed."""
        return self.server_mtbf_hours > 0 or bool(self.crash_storms)

    def shifted(self, offset_seconds: float) -> "FaultScenario":
        """This scenario with every absolute time moved ``offset`` later.

        Scenario times are absolute simulation seconds, authored against
        a run that starts at t=0. Arming one against a *live* run (the
        service's fault-injection endpoint) reinterprets them as
        relative to "now": ``scenario.shifted(engine.now)`` keeps the
        schedule's internal spacing while anchoring its origin at the
        moment the operator armed it.
        """
        if offset_seconds < 0:
            raise ValueError(
                f"offset_seconds must be non-negative, got {offset_seconds}"
            )
        if offset_seconds == 0:
            return self
        off = float(offset_seconds)
        return FaultScenario(
            name=self.name,
            blackouts=tuple((s + off, d) for s, d in self.blackouts),
            rpc_failure_rate=self.rpc_failure_rate,
            rpc_latency_seconds=self.rpc_latency_seconds,
            rpc_timeout_seconds=self.rpc_timeout_seconds,
            crash_times=tuple(t + off for t in self.crash_times),
            restart_delay_seconds=self.restart_delay_seconds,
            surges=tuple((s + off, d, f) for s, d, f in self.surges),
            tenant_surges=tuple(
                (t, s + off, d, f) for t, s, d, f in self.tenant_surges
            ),
            sensor_bias=tuple(
                (s + off, d, f) for s, d, f in self.sensor_bias
            ),
            server_mtbf_hours=self.server_mtbf_hours,
            server_mttr_minutes=self.server_mttr_minutes,
            crash_storms=tuple(
                (s + off, d, m) for s, d, m in self.crash_storms
            ),
            coordinator_blackouts=tuple(
                (s + off, d) for s, d in self.coordinator_blackouts
            ),
            seed=self.seed,
        )

    def describe(self) -> str:
        parts = []
        if self.blackouts:
            total = sum(d for _, d in self.blackouts)
            parts.append(
                f"{len(self.blackouts)} monitor blackout(s), {total / 60:.0f} min total"
            )
        if self.rpc_failure_rate > 0:
            parts.append(f"{self.rpc_failure_rate:.0%} RPC failure rate")
        if self.crash_times:
            parts.append(
                f"{len(self.crash_times)} controller crash(es), "
                f"restart after {self.restart_delay_seconds:.0f}s"
            )
        if self.surges:
            peak = max(f for _, _, f in self.surges)
            parts.append(
                f"{len(self.surges)} workload surge(s), up to {peak:.1f}x"
            )
        if self.tenant_surges:
            tenants = sorted({t for t, _, _, _ in self.tenant_surges})
            peak = max(f for _, _, _, f in self.tenant_surges)
            parts.append(
                f"{len(self.tenant_surges)} tenant surge(s) on "
                f"{','.join(tenants)}, up to {peak:.1f}x"
            )
        if self.sensor_bias:
            worst = min(f for _, _, f in self.sensor_bias)
            parts.append(
                f"{len(self.sensor_bias)} sensor-bias window(s), "
                f"down to {worst:.2f}x"
            )
        if self.coordinator_blackouts:
            total = sum(d for _, d in self.coordinator_blackouts)
            parts.append(
                f"{len(self.coordinator_blackouts)} coordinator blackout(s), "
                f"{total / 60:.0f} min total"
            )
        if self.wants_server_failures:
            base = (
                f"MTBF {self.server_mtbf_hours:.0f}h"
                if self.server_mtbf_hours > 0
                else "storms only"
            )
            storm = (
                f", {len(self.crash_storms)} crash storm(s)"
                if self.crash_storms
                else ""
            )
            parts.append(f"server failures ({base}{storm})")
        return f"{self.name}: " + ("; ".join(parts) if parts else "no faults")


def builtin_scenarios() -> Dict[str, FaultScenario]:
    """The named scenarios exposed through the CLI and CI smoke runs.

    Absolute times assume the standard harness layout (1 h warm-up, so
    the measurement window starts at t=3600 s): each hazard lands well
    inside the first measured hour and the scenarios compose -- ``chaos``
    is the control-plane acceptance scenario (a 10-minute blackout, 5%
    RPC faults, one mid-run controller crash) and ``data-chaos`` its
    data-plane sibling (surge + sensor drift + crash storm at once).
    """
    blackout_window = ((4200.0, 600.0),)  # minutes 70-80: a 10-min dark spell
    surge_window = ((4200.0, 1500.0),)  # minutes 70-95: a sustained surge
    return {
        "blackout": FaultScenario(name="blackout", blackouts=blackout_window),
        "flaky-rpc": FaultScenario(name="flaky-rpc", rpc_failure_rate=0.05),
        "crash": FaultScenario(name="crash", crash_times=(5700.0,)),
        "chaos": FaultScenario(
            name="chaos",
            blackouts=blackout_window,
            rpc_failure_rate=0.05,
            crash_times=(5700.0,),
        ),
        "surge": FaultScenario(
            name="surge",
            surges=tuple((s, d, 6.0) for s, d in surge_window),
        ),
        "sensor-drift": FaultScenario(
            name="sensor-drift",
            sensor_bias=((4200.0, 1800.0, 0.85),),
        ),
        "crash-storm": FaultScenario(
            name="crash-storm",
            server_mtbf_hours=2000.0,
            crash_storms=((4200.0, 900.0, 25.0),),
            server_mttr_minutes=20.0,
        ),
        "fleet-blackout": FaultScenario(
            name="fleet-blackout",
            coordinator_blackouts=((4800.0, 1800.0),),
        ),
        # One tenant of the standard three-tier mix (the batch tier)
        # floods the row while the critical tier briefly doubles: the
        # fair freeze policy must keep the quiet tenants' frozen time in
        # proportion even though the surge makes the row run hot.
        "tenant-skew": FaultScenario(
            name="tenant-skew",
            tenant_surges=(
                ("charlie", 4200.0, 1500.0, 8.0),
                ("alpha", 5400.0, 600.0, 2.0),
            ),
        ),
        "data-chaos": FaultScenario(
            name="data-chaos",
            surges=tuple((s, d, 4.0) for s, d in surge_window),
            sensor_bias=((6000.0, 1200.0, 0.9),),
            server_mtbf_hours=2000.0,
            crash_storms=((4800.0, 900.0, 50.0),),
            server_mttr_minutes=20.0,
        ),
    }


__all__ = ["FaultScenario", "builtin_scenarios", "MAX_EVENT_SECONDS"]
