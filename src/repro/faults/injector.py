"""The fault injector: turns a scenario into scheduled engine events.

One injector per run. It wraps the scheduler (RPC faults), toggles the
monitor's outage flag (blackouts) and crash/restarts the controller, all
as :class:`~repro.sim.events.EventPriority.FAULT` events so a fault
scheduled for minute *t* already shapes minute *t*'s observation and
control action. Everything is deterministic for a fixed scenario seed.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.faults.rpc import FlakyScheduler
from repro.faults.scenario import FaultScenario
from repro.scheduler.base import SchedulerInterface
from repro.sim.engine import Engine
from repro.sim.events import EventPriority

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import AmpereController
    from repro.monitor.power_monitor import PowerMonitor

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class FaultStats:
    """Picklable snapshot of everything the injector actually did.

    Shipped inside :class:`~repro.sim.experiment.ExperimentResult`, so it
    crosses the campaign worker boundary like every other metric.
    """

    scenario: str
    blackouts_injected: int = 0
    samples_suppressed: int = 0
    rpc_calls: int = 0
    rpc_failures: int = 0
    crashes_injected: int = 0


class FaultInjector:
    """Schedules one scenario's faults against a run's control plane."""

    def __init__(self, engine: Engine, scenario: FaultScenario) -> None:
        self.engine = engine
        self.scenario = scenario
        self.rng = np.random.default_rng(np.random.SeedSequence(scenario.seed))
        self.flaky: Optional[FlakyScheduler] = None
        self.monitor: Optional["PowerMonitor"] = None
        self.controller: Optional["AmpereController"] = None
        self.blackouts_injected = 0
        self.crashes_injected = 0
        self._armed = False

    # ------------------------------------------------------------------
    # Attachment (build time)
    # ------------------------------------------------------------------
    def wrap_scheduler(self, scheduler: SchedulerInterface) -> SchedulerInterface:
        """Put the RPC fault layer in front of ``scheduler``.

        The wrapper is installed even at a zero failure rate so RPC call
        accounting is uniform across scenarios.
        """
        self.flaky = FlakyScheduler(
            scheduler,
            rng=self.rng,
            failure_rate=self.scenario.rpc_failure_rate,
            latency_seconds=self.scenario.rpc_latency_seconds,
            timeout_seconds=self.scenario.rpc_timeout_seconds,
        )
        return self.flaky

    def attach_monitor(self, monitor: "PowerMonitor") -> None:
        self.monitor = monitor

    def attach_controller(self, controller: "AmpereController") -> None:
        self.controller = controller

    # ------------------------------------------------------------------
    # Arming (run time)
    # ------------------------------------------------------------------
    def arm(self, until: float) -> None:
        """Schedule every fault event in ``[now, until)`` on the engine."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        now = self.engine.now
        if self.monitor is not None:
            for start, duration in self.scenario.blackouts:
                if start < now or start >= until:
                    continue
                self.engine.schedule(
                    start, EventPriority.FAULT, self._begin_blackout
                )
                self.engine.schedule(
                    start + duration, EventPriority.FAULT, self._end_blackout
                )
        if self.controller is not None:
            for crash_at in self.scenario.crash_times:
                if crash_at < now or crash_at >= until:
                    continue
                self.engine.schedule(crash_at, EventPriority.FAULT, self._crash)
                self.engine.schedule(
                    crash_at + self.scenario.restart_delay_seconds,
                    EventPriority.FAULT,
                    self._restart,
                )

    def _begin_blackout(self) -> None:
        assert self.monitor is not None
        self.blackouts_injected += 1
        logger.info(
            "injecting monitoring blackout #%d at t=%.0fs",
            self.blackouts_injected,
            self.engine.now,
        )
        self.monitor.begin_outage()

    def _end_blackout(self) -> None:
        assert self.monitor is not None
        self.monitor.end_outage()

    def _crash(self) -> None:
        assert self.controller is not None
        self.crashes_injected += 1
        logger.info(
            "injecting controller crash #%d at t=%.0fs",
            self.crashes_injected,
            self.engine.now,
        )
        self.controller.crash()

    def _restart(self) -> None:
        assert self.controller is not None
        if self.controller.crashed:
            self.controller.recover()

    # ------------------------------------------------------------------
    def stats_snapshot(self) -> FaultStats:
        """Freeze the injector's counters into a picklable record."""
        return FaultStats(
            scenario=self.scenario.name,
            blackouts_injected=self.blackouts_injected,
            samples_suppressed=(
                self.monitor.samples_suppressed if self.monitor is not None else 0
            ),
            rpc_calls=self.flaky.stats.calls if self.flaky is not None else 0,
            rpc_failures=self.flaky.stats.failures if self.flaky is not None else 0,
            crashes_injected=self.crashes_injected,
        )


__all__ = ["FaultInjector", "FaultStats"]
