"""The fault injector: turns a scenario into scheduled engine events.

One injector per run. Control-plane seams: it wraps the scheduler (RPC
faults), toggles the monitor's outage flag (blackouts) and crash/restarts
the controller. Data-plane seams: it wraps the workload's rate profile
(demand surges), schedules sensor-bias windows against the monitor, and
drives the server crash/repair process (:mod:`repro.sim.failures`),
including MTBF step-changes for crash storms. Everything lands as
:class:`~repro.sim.events.EventPriority.FAULT` events so a fault
scheduled for minute *t* already shapes minute *t*'s observation and
control action, and everything is deterministic for a fixed scenario
seed: the RPC stream uses ``SeedSequence(seed)`` exactly as before this
module grew data-plane hazards, and the server-failure stream draws from
the independent ``SeedSequence((seed, 1))``.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.faults.rpc import FlakyScheduler
from repro.faults.scenario import FaultScenario
from repro.scheduler.base import SchedulerInterface
from repro.sim.engine import Engine
from repro.sim.events import EventPriority
from repro.sim.failures import ServerFailureInjector
from repro.workload.generator import RateProfile, SurgeRateProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import AmpereController
    from repro.fleet.coordinator import FleetCoordinator
    from repro.monitor.power_monitor import PowerMonitor
    from repro.scheduler.omega import OmegaScheduler

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class FaultStats:
    """Picklable snapshot of everything the injector actually did.

    Shipped inside :class:`~repro.sim.experiment.ExperimentResult`, so it
    crosses the campaign worker boundary like every other metric.
    """

    scenario: str
    blackouts_injected: int = 0
    samples_suppressed: int = 0
    rpc_calls: int = 0
    rpc_failures: int = 0
    crashes_injected: int = 0
    surge_windows: int = 0
    tenant_surge_windows: int = 0
    sensor_bias_windows: int = 0
    server_failures: int = 0
    server_repairs: int = 0
    jobs_killed_by_failures: int = 0
    coordinator_blackouts_injected: int = 0


class FaultInjector:
    """Schedules one scenario's faults against a run's control plane."""

    def __init__(self, engine: Engine, scenario: FaultScenario) -> None:
        self.engine = engine
        self.scenario = scenario
        self.rng = np.random.default_rng(np.random.SeedSequence(scenario.seed))
        self.flaky: Optional[FlakyScheduler] = None
        self.monitor: Optional["PowerMonitor"] = None
        self.controller: Optional["AmpereController"] = None
        #: the *real* cluster scheduler (not the RPC fault wrapper) --
        #: server failures are hardware events, they cannot "fail in
        #: transit" the way control RPCs do
        self.cluster_scheduler: Optional["OmegaScheduler"] = None
        self.failures: Optional[ServerFailureInjector] = None
        self.coordinator: Optional["FleetCoordinator"] = None
        self.blackouts_injected = 0
        self.coordinator_blackouts_injected = 0
        self.crashes_injected = 0
        self.surges_applied = 0
        self.tenant_surges_applied = 0
        self._armed = False

    # ------------------------------------------------------------------
    # Attachment (build time)
    # ------------------------------------------------------------------
    def wrap_scheduler(self, scheduler: SchedulerInterface) -> SchedulerInterface:
        """Put the RPC fault layer in front of ``scheduler``.

        The wrapper is installed even at a zero failure rate so RPC call
        accounting is uniform across scenarios.
        """
        self.flaky = FlakyScheduler(
            scheduler,
            rng=self.rng,
            failure_rate=self.scenario.rpc_failure_rate,
            latency_seconds=self.scenario.rpc_latency_seconds,
            timeout_seconds=self.scenario.rpc_timeout_seconds,
        )
        return self.flaky

    def attach_monitor(self, monitor: "PowerMonitor") -> None:
        self.monitor = monitor

    def attach_controller(self, controller: "AmpereController") -> None:
        self.controller = controller

    def attach_coordinator(self, coordinator: "FleetCoordinator") -> None:
        """Give the injector the fleet coordinator for blackout windows."""
        self.coordinator = coordinator

    def attach_cluster(self, scheduler: "OmegaScheduler") -> None:
        """Give the injector the real scheduler for data-plane hazards
        (server failures bypass the RPC fault layer by design)."""
        self.cluster_scheduler = scheduler

    def wrap_rate_profile(self, profile: RateProfile) -> RateProfile:
        """Layer the scenario's demand surges over a workload profile.

        Pure wrapping -- no RNG is consumed, so a scenario without surges
        leaves the workload stream untouched bit for bit.
        """
        if not self.scenario.surges:
            return profile
        self.surges_applied = len(self.scenario.surges)
        return SurgeRateProfile(profile, self.scenario.surges)

    def wrap_rate_profile_for_tenant(
        self, profile: RateProfile, tenant: str
    ) -> RateProfile:
        """Layer the scenario's surges *for one tenant* over its profile.

        Tenancy-enabled runs call this once per tenant generator, after
        the shared :meth:`wrap_rate_profile` surges have been applied to
        the row-level profile. Pure and RNG-free like the shared wrap;
        windows naming other tenants are ignored.
        """
        windows = tuple(
            (start, duration, factor)
            for name, start, duration, factor in self.scenario.tenant_surges
            if name == tenant
        )
        if not windows:
            return profile
        self.tenant_surges_applied += len(windows)
        return SurgeRateProfile(profile, windows)

    # ------------------------------------------------------------------
    # Arming (run time)
    # ------------------------------------------------------------------
    def arm(self, until: float) -> None:
        """Schedule every fault event in ``[now, until)`` on the engine."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        now = self.engine.now
        if self.monitor is not None:
            for start, duration in self.scenario.blackouts:
                if start < now or start >= until:
                    continue
                self.engine.schedule(
                    start, EventPriority.FAULT, self._begin_blackout
                )
                self.engine.schedule(
                    start + duration, EventPriority.FAULT, self._end_blackout
                )
        if self.monitor is not None:
            for start, duration, factor in self.scenario.sensor_bias:
                if start < now or start >= until:
                    continue
                self.engine.schedule(
                    start, EventPriority.FAULT, self._begin_bias, factor
                )
                self.engine.schedule(
                    start + duration, EventPriority.FAULT, self._end_bias
                )
        if self.controller is not None:
            for crash_at in self.scenario.crash_times:
                if crash_at < now or crash_at >= until:
                    continue
                self.engine.schedule(crash_at, EventPriority.FAULT, self._crash)
                self.engine.schedule(
                    crash_at + self.scenario.restart_delay_seconds,
                    EventPriority.FAULT,
                    self._restart,
                )
        if self.coordinator is not None:
            for start, duration in self.scenario.coordinator_blackouts:
                if start < now or start >= until:
                    continue
                self.engine.schedule(
                    start, EventPriority.FAULT, self._begin_coordinator_blackout
                )
                self.engine.schedule(
                    start + duration,
                    EventPriority.FAULT,
                    self._end_coordinator_blackout,
                )
        if (
            self.cluster_scheduler is not None
            and self.scenario.wants_server_failures
        ):
            # Baseline churn rate; with storms-only scenarios the baseline
            # is effectively off (one failure per server per ~century).
            base_mtbf = self.scenario.server_mtbf_hours or 1_000_000.0
            self.failures = ServerFailureInjector(
                self.engine,
                self.cluster_scheduler,
                rng=np.random.default_rng(
                    np.random.SeedSequence((self.scenario.seed, 1))
                ),
                mtbf_hours=base_mtbf,
                mttr_minutes=self.scenario.server_mttr_minutes,
            )
            self.failures.start(until)
            for start, duration, storm_mtbf in self.scenario.crash_storms:
                if start < now or start >= until:
                    continue
                self.engine.schedule(
                    start, EventPriority.FAULT, self._begin_storm, storm_mtbf
                )
                self.engine.schedule(
                    start + duration, EventPriority.FAULT, self._end_storm, base_mtbf
                )

    def _begin_blackout(self) -> None:
        assert self.monitor is not None
        self.blackouts_injected += 1
        logger.info(
            "injecting monitoring blackout #%d at t=%.0fs",
            self.blackouts_injected,
            self.engine.now,
        )
        self.monitor.begin_outage()

    def _end_blackout(self) -> None:
        assert self.monitor is not None
        self.monitor.end_outage()

    def _crash(self) -> None:
        assert self.controller is not None
        self.crashes_injected += 1
        logger.info(
            "injecting controller crash #%d at t=%.0fs",
            self.crashes_injected,
            self.engine.now,
        )
        self.controller.crash()

    def _restart(self) -> None:
        assert self.controller is not None
        if self.controller.crashed:
            self.controller.recover()

    def _begin_bias(self, factor: float) -> None:
        assert self.monitor is not None
        self.monitor.set_sensor_bias(factor)

    def _end_bias(self) -> None:
        assert self.monitor is not None
        self.monitor.set_sensor_bias(1.0)

    def _begin_coordinator_blackout(self) -> None:
        assert self.coordinator is not None
        self.coordinator_blackouts_injected += 1
        logger.info(
            "injecting coordinator blackout #%d at t=%.0fs",
            self.coordinator_blackouts_injected,
            self.engine.now,
        )
        self.coordinator.blackout_begin()

    def _end_coordinator_blackout(self) -> None:
        assert self.coordinator is not None
        self.coordinator.blackout_end()

    def _begin_storm(self, storm_mtbf_hours: float) -> None:
        assert self.failures is not None
        logger.warning(
            "crash storm begins at t=%.0fs (per-server MTBF -> %.0fh)",
            self.engine.now,
            storm_mtbf_hours,
        )
        self.failures.set_mtbf_hours(storm_mtbf_hours)

    def _end_storm(self, base_mtbf_hours: float) -> None:
        assert self.failures is not None
        logger.info("crash storm ends at t=%.0fs", self.engine.now)
        self.failures.set_mtbf_hours(base_mtbf_hours)

    # ------------------------------------------------------------------
    def stats_snapshot(self) -> FaultStats:
        """Freeze the injector's counters into a picklable record."""
        return FaultStats(
            scenario=self.scenario.name,
            blackouts_injected=self.blackouts_injected,
            samples_suppressed=(
                self.monitor.samples_suppressed if self.monitor is not None else 0
            ),
            rpc_calls=self.flaky.stats.calls if self.flaky is not None else 0,
            rpc_failures=self.flaky.stats.failures if self.flaky is not None else 0,
            crashes_injected=self.crashes_injected,
            surge_windows=self.surges_applied,
            tenant_surge_windows=self.tenant_surges_applied,
            sensor_bias_windows=(
                self.monitor.bias_windows_applied if self.monitor is not None else 0
            ),
            server_failures=(
                self.failures.stats.failures if self.failures is not None else 0
            ),
            server_repairs=(
                self.failures.stats.repairs if self.failures is not None else 0
            ),
            jobs_killed_by_failures=(
                self.failures.stats.jobs_killed if self.failures is not None else 0
            ),
            coordinator_blackouts_injected=self.coordinator_blackouts_injected,
        )


__all__ = ["FaultInjector", "FaultStats"]
