"""A scheduler proxy whose freeze/unfreeze RPCs fail like real ones.

In production the scheduler is a remote service; Ampere's two control
calls cross a network. :class:`FlakyScheduler` wraps any
:class:`~repro.scheduler.base.SchedulerInterface` and makes exactly those
two calls fail with configurable probability, raising
:class:`~repro.scheduler.base.SchedulerRpcError` *before* the inner call
runs -- a failed RPC is guaranteed not to have been applied, matching the
interface contract. Reads (``frozen_server_ids``) and job submission pass
through untouched: the fault surface is the control path, not the data
path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet

import numpy as np

from repro.scheduler.base import SchedulerInterface, SchedulerRpcError
from repro.workload.job import Job


@dataclass
class RpcFaultStats:
    """What the fault layer did to the control path."""

    calls: int = 0
    failures: int = 0
    injected_latency_seconds: float = 0.0

    @property
    def observed_failure_rate(self) -> float:
        return self.failures / self.calls if self.calls else 0.0


class FlakyScheduler(SchedulerInterface):
    """Transparent scheduler wrapper with injectable RPC faults.

    Parameters
    ----------
    inner:
        The real scheduler.
    rng:
        Fault RNG (derive from the scenario seed, never the experiment's,
        so fault timing replays independently of workload randomness).
    failure_rate:
        Per-call probability that a freeze/unfreeze raises.
    latency_seconds / timeout_seconds:
        Latency charged to successful calls / to failures. The failure
        cost is what drains the controller's per-tick RPC deadline.
    """

    def __init__(
        self,
        inner: SchedulerInterface,
        rng: np.random.Generator,
        failure_rate: float = 0.0,
        latency_seconds: float = 0.02,
        timeout_seconds: float = 2.0,
    ) -> None:
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError(f"failure_rate must be in [0, 1), got {failure_rate}")
        self.inner = inner
        self.rng = rng
        self.failure_rate = failure_rate
        self.latency_seconds = latency_seconds
        self.timeout_seconds = timeout_seconds
        self.stats = RpcFaultStats()

    # ------------------------------------------------------------------
    # SchedulerInterface
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        self.inner.submit(job)

    def freeze(self, server_id: int) -> None:
        self._call("freeze", server_id, self.inner.freeze)

    def unfreeze(self, server_id: int) -> None:
        self._call("unfreeze", server_id, self.inner.unfreeze)

    def frozen_server_ids(self) -> FrozenSet[int]:
        return self.inner.frozen_server_ids()

    # ------------------------------------------------------------------
    def _call(
        self, action: str, server_id: int, call: Callable[[int], None]
    ) -> None:
        self.stats.calls += 1
        if self.failure_rate > 0 and self.rng.random() < self.failure_rate:
            self.stats.failures += 1
            self.stats.injected_latency_seconds += self.timeout_seconds
            raise SchedulerRpcError(
                f"{action}({server_id}) timed out after "
                f"{self.timeout_seconds:.1f}s",
                latency_seconds=self.timeout_seconds,
            )
        self.stats.injected_latency_seconds += self.latency_seconds
        call(server_id)


__all__ = ["FlakyScheduler", "RpcFaultStats"]
