"""Control-plane fault injection.

The cluster simulator has always been able to break *servers*
(:mod:`repro.sim.failures`); this package breaks the **control plane**
itself -- the part the paper's safety argument quietly assumes is
perfect. Three seams are injectable, all deterministic for a fixed
scenario seed:

- monitor blackouts (the per-minute sweep returns nothing, TSDB stales),
- scheduler RPC faults (freeze/unfreeze timeouts with injected latency),
- controller crashes (in-memory state lost; supervisor restarts later).

The hardened :class:`~repro.core.controller.AmpereController` is expected
to survive all three; ``tests/test_faults.py`` pins that contract.
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.rpc import FlakyScheduler, RpcFaultStats
from repro.faults.scenario import FaultScenario, builtin_scenarios

__all__ = [
    "FaultInjector",
    "FaultScenario",
    "FaultStats",
    "FlakyScheduler",
    "RpcFaultStats",
    "builtin_scenarios",
]
