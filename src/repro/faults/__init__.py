"""Fault injection across both planes of the system.

Control-plane seams (PR 2) break the control system itself -- the part
the paper's safety argument quietly assumes is perfect:

- monitor blackouts (the per-minute sweep returns nothing, TSDB stales),
- scheduler RPC faults (freeze/unfreeze timeouts with injected latency),
- controller crashes (in-memory state lost; supervisor restarts later).

Data-plane seams break the *world* while the control system works as
designed:

- workload surges (scheduled arrival-rate multipliers),
- IPMI sensor miscalibration (multiplicative bias the controller cannot
  see; true power and breaker physics are unaffected),
- server crash storms (the :mod:`repro.sim.failures` process, with MTBF
  step-changes inside storm windows).

Everything is deterministic for a fixed scenario seed. The hardened
:class:`~repro.core.controller.AmpereController` plus the
:class:`~repro.core.safety.SafetySupervisor` ladder are expected to
survive all of it; ``tests/test_faults.py`` and ``tests/test_safety.py``
pin that contract.
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.rpc import FlakyScheduler, RpcFaultStats
from repro.faults.scenario import (
    MAX_EVENT_SECONDS,
    FaultScenario,
    builtin_scenarios,
)

__all__ = [
    "FaultInjector",
    "FaultScenario",
    "FaultStats",
    "FlakyScheduler",
    "RpcFaultStats",
    "builtin_scenarios",
    "MAX_EVENT_SECONDS",
]
