"""repro.fleet -- hierarchical facility-level power budgeting.

The paper controls each row against a fixed budget. This package adds
the layer above: a :class:`FleetCoordinator` that re-divides one
facility budget between rows on a slow cadence, through a
:class:`BudgetLedger` that enforces conservation and safety invariants,
using a pluggable :class:`ReallocationPolicy`.
"""

from repro.fleet.config import FleetConfig, POLICY_NAMES
from repro.fleet.coordinator import (
    COORDINATOR_EVENT_ID,
    CoordinatorStats,
    FleetCoordinator,
)
from repro.fleet.ledger import BudgetLedger, LedgerError, LedgerStats, RowBudget
from repro.fleet.policy import (
    DemandFollowingPolicy,
    ProportionalPolicy,
    ReallocationPolicy,
    RowDemand,
    StaticPolicy,
    make_policy,
    sanitize_allocations,
)

__all__ = [
    "BudgetLedger",
    "COORDINATOR_EVENT_ID",
    "CoordinatorStats",
    "DemandFollowingPolicy",
    "FleetConfig",
    "FleetCoordinator",
    "LedgerError",
    "LedgerStats",
    "POLICY_NAMES",
    "ProportionalPolicy",
    "ReallocationPolicy",
    "RowBudget",
    "RowDemand",
    "StaticPolicy",
    "make_policy",
    "sanitize_allocations",
]
