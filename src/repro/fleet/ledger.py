"""The budget ledger: conservation and safety invariants, enforced.

Every watt the fleet coordinator hands to one row must come from
somewhere; the ledger is the single place where the facility's budget is
divided, and it *refuses* any assignment that breaks an invariant
instead of trusting the policy that proposed it:

- allocations across rows never sum above the facility budget,
- no row is allocated below its current safety floor,
- no row is allocated above its physical feed rating (breakers are
  hardware; budget moves must never reach the trip curve).

Policies are pluggable and experimental; the ledger is neither. A buggy
policy raises :class:`LedgerError` here rather than silently steering
the fast control loops into a breaker.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping

#: relative slack for floating-point conservation checks
LEDGER_RTOL = 1e-9


class LedgerError(ValueError):
    """A proposed assignment violates a ledger invariant."""


@dataclass
class RowBudget:
    """One row's entry in the ledger.

    ``rating_watts`` is the physical feed rating and never changes.
    ``static_watts`` is the build-time share (what the row would own
    with no coordinator). ``floor_watts`` is the current safety floor
    (demand-derived, updated each coordinator tick) and
    ``allocation_watts`` the live budget the row's controller defends.
    """

    name: str
    rating_watts: float
    static_watts: float
    floor_watts: float = 0.0
    allocation_watts: float = 0.0

    def __post_init__(self) -> None:
        if self.rating_watts <= 0:
            raise ValueError(
                f"rating_watts must be positive, got {self.rating_watts}"
            )
        if not 0 < self.static_watts <= self.rating_watts * (1 + LEDGER_RTOL):
            raise ValueError(
                f"static_watts for {self.name!r} must be in (0, rating], got "
                f"{self.static_watts} (rating {self.rating_watts})"
            )
        if self.allocation_watts == 0.0:
            self.allocation_watts = self.static_watts


@dataclass
class LedgerStats:
    """Accounting of ledger activity (picklable)."""

    applies: int = 0
    reallocations: int = 0
    watts_moved: float = 0.0
    floor_scalings: int = 0
    freezes: int = 0
    rejected: int = 0


class BudgetLedger:
    """Divides one facility budget between rows, enforcing invariants."""

    def __init__(
        self, facility_budget_watts: float, rows: Iterable[RowBudget]
    ) -> None:
        if facility_budget_watts <= 0:
            raise ValueError(
                "facility_budget_watts must be positive, got "
                f"{facility_budget_watts}"
            )
        self.facility_budget_watts = float(facility_budget_watts)
        self._rows: Dict[str, RowBudget] = {}
        for row in rows:
            if row.name in self._rows:
                raise ValueError(f"duplicate row {row.name!r}")
            self._rows[row.name] = row
        if not self._rows:
            raise ValueError("ledger needs at least one row")
        slack = self.facility_budget_watts * (1 + LEDGER_RTOL)
        total_static = sum(r.static_watts for r in self._rows.values())
        if total_static > slack:
            raise ValueError(
                f"static budgets sum to {total_static:.1f} W, above the "
                f"facility budget {self.facility_budget_watts:.1f} W"
            )
        self.frozen = False
        self.frozen_since: float = float("nan")
        self.stats = LedgerStats()

    # ------------------------------------------------------------------
    @property
    def row_names(self) -> List[str]:
        return sorted(self._rows)

    def row(self, name: str) -> RowBudget:
        return self._rows[name]

    def rows(self) -> List[RowBudget]:
        """Rows in name order (deterministic iteration everywhere)."""
        return [self._rows[name] for name in self.row_names]

    def allocations(self) -> Dict[str, float]:
        return {name: self._rows[name].allocation_watts for name in self.row_names}

    def total_allocated(self) -> float:
        return sum(r.allocation_watts for r in self._rows.values())

    # ------------------------------------------------------------------
    def set_floor(self, name: str, floor_watts: float) -> None:
        """Update one row's safety floor (clamped into [0, rating])."""
        row = self._rows[name]
        if floor_watts < 0:
            raise LedgerError(
                f"floor for {name!r} must be non-negative, got {floor_watts}"
            )
        if floor_watts > row.rating_watts * (1 + LEDGER_RTOL):
            raise LedgerError(
                f"floor for {name!r} ({floor_watts:.1f} W) exceeds the feed "
                f"rating ({row.rating_watts:.1f} W)"
            )
        row.floor_watts = float(min(floor_watts, row.rating_watts))

    def scale_floors_to_fit(self) -> bool:
        """If floors over-subscribe the budget, shrink them to fit.

        Demand spikes on every row at once can push the sum of
        demand-derived floors past the facility budget -- a physically
        unsatisfiable ask. Scaling all floors by a common factor keeps
        relative protection while restoring feasibility. Returns True if
        scaling was needed.
        """
        total = sum(r.floor_watts for r in self._rows.values())
        if total <= self.facility_budget_watts:
            return False
        factor = self.facility_budget_watts / total
        for row in self._rows.values():
            row.floor_watts *= factor
        self.stats.floor_scalings += 1
        return True

    # ------------------------------------------------------------------
    def freeze(self, now: float) -> None:
        """Pin allocations at last-good (coordinator blackout)."""
        if not self.frozen:
            self.frozen = True
            self.frozen_since = now
            self.stats.freezes += 1

    def thaw(self) -> None:
        self.frozen = False
        self.frozen_since = float("nan")

    # ------------------------------------------------------------------
    def apply(self, allocations: Mapping[str, float]) -> float:
        """Adopt a complete assignment, or raise without changing anything.

        Returns the total watts moved (half the L1 distance from the
        previous assignment -- every watt gained by one row left
        another).
        """
        if self.frozen:
            self.stats.rejected += 1
            raise LedgerError("ledger is frozen (coordinator blackout)")
        if set(allocations) != set(self._rows):
            self.stats.rejected += 1
            raise LedgerError(
                f"assignment names {sorted(allocations)} != ledger rows "
                f"{self.row_names}"
            )
        slack = self.facility_budget_watts * LEDGER_RTOL
        total = 0.0
        for name in self.row_names:
            row = self._rows[name]
            watts = float(allocations[name])
            if watts < row.floor_watts - slack:
                self.stats.rejected += 1
                raise LedgerError(
                    f"{name!r}: {watts:.1f} W is below the safety floor "
                    f"{row.floor_watts:.1f} W"
                )
            if watts > row.rating_watts + slack:
                self.stats.rejected += 1
                raise LedgerError(
                    f"{name!r}: {watts:.1f} W exceeds the feed rating "
                    f"{row.rating_watts:.1f} W"
                )
            total += watts
        if total > self.facility_budget_watts + slack:
            self.stats.rejected += 1
            raise LedgerError(
                f"assignment sums to {total:.1f} W, above the facility "
                f"budget {self.facility_budget_watts:.1f} W"
            )
        moved = 0.5 * sum(
            abs(float(allocations[name]) - self._rows[name].allocation_watts)
            for name in self.row_names
        )
        for name in self.row_names:
            self._rows[name].allocation_watts = float(allocations[name])
        self.stats.applies += 1
        if moved > slack:
            self.stats.reallocations += 1
            self.stats.watts_moved += moved
        return moved

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain-types snapshot for result objects and serialization."""
        return {
            "facility_budget_watts": self.facility_budget_watts,
            "frozen": self.frozen,
            "rows": [
                {
                    "name": row.name,
                    "rating_watts": row.rating_watts,
                    "static_watts": row.static_watts,
                    "floor_watts": row.floor_watts,
                    "allocation_watts": row.allocation_watts,
                }
                for row in self.rows()
            ],
            "stats": {
                "applies": self.stats.applies,
                "reallocations": self.stats.reallocations,
                "watts_moved": self.stats.watts_moved,
                "floor_scalings": self.stats.floor_scalings,
                "freezes": self.stats.freezes,
                "rejected": self.stats.rejected,
            },
        }

    def stats_snapshot(self) -> LedgerStats:
        return replace(self.stats)


__all__ = [
    "BudgetLedger",
    "LedgerError",
    "LedgerStats",
    "RowBudget",
    "LEDGER_RTOL",
]
