"""The fleet coordinator: a slow control loop above the row controllers.

The Ampere controller (Algorithm 1) defends one row's budget on a
one-minute cadence. The coordinator runs an order of magnitude slower
(``cadence_intervals`` control intervals per tick, ten by default) and
works the one lever the row loops cannot: the *division* of the facility
budget between rows. Each tick it

1. gathers per-row demand statistics from the monitoring plane (power
   percentiles) and from the row controllers (freeze duty cycle),
2. derives per-row safety floors -- ``floor_margin`` times the demand
   percentile, never below ``min_allocation_fraction`` of the static
   share -- and shrinks them proportionally if they over-subscribe,
3. asks the configured :mod:`policy <repro.fleet.policy>` for a new
   assignment, sanitizes it (rate limit, floors, ratings,
   conservation), and books it through the :class:`BudgetLedger`,
4. pushes changed allocations into the row controllers, which re-derive
   their thresholds on their next tick.

Time-scale separation is deliberate: coordinator ticks run at
``EventPriority.COORDINATOR_TICK`` -- after monitor samples, before
controller ticks -- so a budget move lands on fresh data and the fast
loop reacts within one control interval.

Safety posture: the coordinator is an optimizer, not a guardian. It can
only move budget inside the envelope the ledger enforces (floors,
ratings, conservation), breakers and the safety ladder stay pinned to
physical feed ratings, and when its own view goes dark (a coordinator
blackout, or stale monitor data) it freezes the ledger at last-good --
a facility running on yesterday's split is safe; one re-split on
fiction is not.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Mapping, Optional

import numpy as np

from repro.fleet.config import FleetConfig
from repro.fleet.ledger import BudgetLedger, LedgerError
from repro.fleet.policy import RowDemand, make_policy, sanitize_allocations
from repro.monitor.power_monitor import PowerMonitor
from repro.sim.engine import Engine
from repro.sim.events import EventPriority
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.controller import AmpereController
    from repro.sim.eventlog import ControlEventLog
    from repro.tenancy.config import TenancyConfig

logger = logging.getLogger(__name__)

#: server_id used for coordinator events in the control event log (a
#: budget move is a facility-level action; breakers already use -1)
COORDINATOR_EVENT_ID = -2


@dataclass
class CoordinatorStats:
    """Accounting of coordinator activity (picklable)."""

    ticks: int = 0
    reallocations: int = 0
    watts_moved: float = 0.0
    budget_pushes: int = 0
    stale_holds: int = 0
    blackout_ticks: int = 0

    def snapshot(self) -> "CoordinatorStats":
        return replace(self)


class FleetCoordinator:
    """Slow-cadence facility budget coordinator over row controllers.

    Parameters
    ----------
    engine / monitor:
        Simulation engine and the monitoring plane the coordinator reads
        demand from. It never reads true hardware power -- like the row
        controllers, it steers on telemetry and must survive telemetry
        going bad.
    ledger:
        The facility budget ledger (invariant enforcement lives there).
    controllers:
        Row name -> the :class:`AmpereController` responsible for that
        row. Every ledger row must be covered.
    """

    def __init__(
        self,
        engine: Engine,
        monitor: PowerMonitor,
        ledger: BudgetLedger,
        controllers: Mapping[str, "AmpereController"],
        config: FleetConfig = FleetConfig(),
        telemetry: Optional[Telemetry] = None,
        event_log: Optional["ControlEventLog"] = None,
        tenancy: Optional["TenancyConfig"] = None,
        tenant_of_row: Optional[Mapping[str, str]] = None,
    ) -> None:
        missing = [name for name in ledger.row_names if name not in controllers]
        if missing:
            raise ValueError(f"no controller for ledger rows {missing}")
        self.engine = engine
        self.monitor = monitor
        self.ledger = ledger
        self.controllers = dict(controllers)
        self.config = config
        self.policy = make_policy(
            config.policy, config, tenancy=tenancy, tenant_of_row=tenant_of_row
        )
        self.event_log = event_log
        self.stats = CoordinatorStats()
        self._blackout = False
        if telemetry is None:
            telemetry = getattr(engine, "telemetry", None) or Telemetry.disabled()
        self.telemetry = telemetry
        self._tick_counter = telemetry.counter(
            "repro_fleet_ticks_total", "Coordinator ticks executed"
        )
        self._realloc_counter = telemetry.counter(
            "repro_fleet_reallocations_total",
            "Coordinator ticks that moved budget between rows",
        )
        self._stale_counter = telemetry.counter(
            "repro_fleet_stale_holds_total",
            "Coordinator ticks held because row demand data was stale",
        )
        self._blackout_counter = telemetry.counter(
            "repro_fleet_blackout_ticks_total",
            "Coordinator ticks skipped during a coordinator blackout",
        )
        self._frozen_gauge = telemetry.gauge(
            "repro_fleet_ledger_frozen",
            "1 while the budget ledger is frozen at last-good, else 0",
        )
        self._alloc_gauges = {}
        self._floor_gauges = {}
        for row in ledger.rows():
            labels = {"row": row.name}
            self._alloc_gauges[row.name] = telemetry.gauge(
                "repro_fleet_allocation_watts",
                "Live budget allocation per row",
                labels,
            )
            self._floor_gauges[row.name] = telemetry.gauge(
                "repro_fleet_floor_watts",
                "Safety floor per row (demand percentile with margin)",
                labels,
            )
            self._alloc_gauges[row.name].set(row.allocation_watts)

    # ------------------------------------------------------------------
    def start(
        self,
        until: float,
        control_interval_seconds: float,
        first_at: Optional[float] = None,
    ) -> None:
        """Begin periodic coordination on the engine."""
        period = self.config.cadence_intervals * control_interval_seconds
        self.engine.schedule_periodic(
            period,
            EventPriority.COORDINATOR_TICK,
            self.tick,
            first_at=first_at,
            until=until,
        )

    # ------------------------------------------------------------------
    # Fault seams (driven by repro.faults)
    # ------------------------------------------------------------------
    def blackout_begin(self) -> None:
        """The coordinator loses its view; the ledger holds last-good."""
        self._blackout = True
        self.ledger.freeze(self.engine.now)
        self._frozen_gauge.set(1.0)
        logger.warning(
            "fleet coordinator blackout at t=%.0fs; ledger frozen", self.engine.now
        )

    def blackout_end(self) -> None:
        self._blackout = False
        self.ledger.thaw()
        self._frozen_gauge.set(0.0)
        logger.info(
            "fleet coordinator blackout over at t=%.0fs; ledger thawed",
            self.engine.now,
        )

    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One coordination pass."""
        self.stats.ticks += 1
        self._tick_counter.inc()
        with self.telemetry.span(
            "fleet.coordinate", rows=len(self.ledger.row_names)
        ):
            self._coordinate()

    def _coordinate(self) -> None:
        now = self.engine.now
        if self._blackout:
            self.stats.blackout_ticks += 1
            self._blackout_counter.inc()
            return
        demands = self._gather_demands(now)
        if any(d.stale for d in demands.values()):
            stale = sorted(n for n, d in demands.items() if d.stale)
            self.stats.stale_holds += 1
            self._stale_counter.inc()
            logger.warning(
                "fleet tick at t=%.0fs held: stale demand for %s", now, stale
            )
            return
        self._update_floors(demands)
        rows = self.ledger.rows()
        proposal = self.policy.propose(
            rows, demands, self.ledger.facility_budget_watts
        )
        assignment = sanitize_allocations(
            proposal,
            rows,
            self.ledger.facility_budget_watts,
            self.config.max_step_fraction,
        )
        previous = self.ledger.allocations()
        try:
            moved = self.ledger.apply(assignment)
        except LedgerError:
            logger.exception(
                "fleet policy %r produced an inadmissible assignment; held",
                self.config.policy,
            )
            return
        for name, gauge in self._floor_gauges.items():
            gauge.set(self.ledger.row(name).floor_watts)
        if moved <= self.ledger.facility_budget_watts * 1e-9:
            return
        self.stats.reallocations += 1
        self.stats.watts_moved += moved
        self._realloc_counter.inc()
        changed = []
        for name in self.ledger.row_names:
            watts = self.ledger.row(name).allocation_watts
            self._alloc_gauges[name].set(watts)
            if watts != previous[name]:
                if self.controllers[name].update_budget(name, watts):
                    self.stats.budget_pushes += 1
                changed.append(f"{name}:{previous[name]:.0f}->{watts:.0f}")
        if self.event_log is not None:
            self.event_log.record(
                "budget",
                COORDINATOR_EVENT_ID,
                f"policy={self.policy.name} moved={moved:.0f}W "
                + " ".join(changed),
            )
        logger.info(
            "fleet reallocation at t=%.0fs (%s): %.0f W moved [%s]",
            now,
            self.policy.name,
            moved,
            ", ".join(changed),
        )

    # ------------------------------------------------------------------
    def _gather_demands(self, now: float) -> Dict[str, RowDemand]:
        """Per-row demand statistics over the lookback window."""
        start = now - self.config.window_seconds
        demands: Dict[str, RowDemand] = {}
        for name in self.ledger.row_names:
            try:
                times, values = self.monitor.power_series(name, start, None)
            except KeyError:
                times = values = np.empty(0)
            finite = values[np.isfinite(values)] if len(values) else values
            stale = (
                len(times) == 0
                or len(finite) == 0
                or now - float(times[-1]) > self.config.max_staleness_seconds
            )
            if len(finite):
                p_demand = float(
                    np.percentile(finite, self.config.demand_percentile)
                )
                mean = float(np.mean(finite))
            else:
                p_demand = mean = 0.0
            demands[name] = RowDemand(
                name=name,
                p_demand_watts=p_demand,
                mean_watts=mean,
                freeze_pressure=self._freeze_pressure(name, start),
                samples=int(len(finite)),
                stale=stale,
            )
        return demands

    def _freeze_pressure(self, name: str, window_start: float) -> float:
        """Mean commanded freeze ratio of one row over the window."""
        controller = self.controllers[name]
        try:
            state = controller.state_of(name)
        except KeyError:
            return 0.0
        recent = [
            u
            for u, t in zip(state.u_history, state.u_times)
            if t >= window_start
        ]
        return float(sum(recent) / len(recent)) if recent else 0.0

    # ------------------------------------------------------------------
    def _update_floors(self, demands: Mapping[str, RowDemand]) -> None:
        """Derive safety floors from demand, shrinking to fit if needed.

        A floor forbids *reductions* below demand; it never forces a
        raise (capping at the current allocation keeps that true even
        when a row's demand outgrows its share -- getting more budget is
        the policy's decision, funded by another row, not the floor's).
        """
        for name in self.ledger.row_names:
            row = self.ledger.row(name)
            demand_floor = (
                demands[name].p_demand_watts * self.config.floor_margin
            )
            floor = max(
                self.config.min_allocation_fraction * row.static_watts,
                demand_floor,
            )
            self.ledger.set_floor(
                name, min(floor, row.rating_watts, row.allocation_watts)
            )
        self.ledger.scale_floors_to_fit()

    # ------------------------------------------------------------------
    def stats_snapshot(self) -> CoordinatorStats:
        return self.stats.snapshot()


__all__ = ["COORDINATOR_EVENT_ID", "CoordinatorStats", "FleetCoordinator"]
