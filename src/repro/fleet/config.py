"""Configuration for the facility-level fleet coordinator.

The paper provisions every row independently: each row's budget is fixed
at build time and the Ampere controller defends it forever. A facility
operator holds a second lever the per-row loop cannot see -- the *split*
of the facility budget between rows. :class:`FleetConfig` parameterizes
the slow loop that works that lever: how often it runs, how it estimates
per-row demand, how aggressively it moves budget, and the hysteresis
that keeps it from thrashing against the fast per-row controllers.

All knobs are plain floats/ints so a config pickles cleanly into
campaign cells and serialized results.
"""

from __future__ import annotations

from dataclasses import dataclass

#: the reallocation policies :func:`repro.fleet.policy.make_policy` knows
POLICY_NAMES = ("static", "proportional", "demand-following", "fair")


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of the facility-level budget coordinator.

    Attributes
    ----------
    policy:
        Reallocation policy name: ``static`` (never move budget --
        bit-identical to independently provisioned rows),
        ``proportional`` (water-fill on recent demand),
        ``demand-following`` (shift budget toward rows under sustained
        freeze pressure, with hysteresis), or ``fair`` (water-fill
        tenant entitlements first, then rows within each tenant --
        degenerates to ``proportional`` when the run is untenanted).
    cadence_intervals:
        Coordinator period in *controller* control intervals. The fleet
        loop must be slow relative to the per-row loop so the fast loop
        settles between budget moves (time-scale separation).
    window_seconds:
        Lookback over which per-row demand statistics are computed.
    demand_percentile:
        Percentile of the observed row power used as the demand
        estimate; the safety floor is anchored to it. 99.5 mirrors the
        paper's tail-provisioning convention.
    floor_margin:
        Multiplier on the demand percentile when deriving a row's
        allocation floor -- the coordinator may never starve a row below
        ``floor_margin * p(demand_percentile)``.
    min_allocation_fraction:
        Absolute floor as a fraction of the row's static budget, even
        when observed demand is tiny. Guards cold rows against being
        bled to nothing and then freezing solid on a demand surge the
        window never saw.
    max_step_fraction:
        Largest per-coordinator-tick change of one row's allocation, as
        a fraction of its static budget (anti-thrash rate limit).
    pressure_high / pressure_low:
        Hysteresis thresholds on the smoothed freeze-pressure signal:
        a row becomes a budget *receiver* above ``pressure_high`` and a
        *donor* below ``pressure_low``. The dead band between them keeps
        marginal rows from oscillating donor/receiver each tick.
    pressure_ema_rho:
        Weight of the newest pressure observation in the exponential
        moving average (1.0 = no smoothing).
    max_staleness_seconds:
        If any row's latest power sample is older than this, the
        coordinator holds every allocation -- reallocating on stale
        demand could starve a row whose surge the dead sensor hid.
    rating_headroom:
        Physical feed rating of each row as a multiple of its static
        budget. Allocations are clamped to the rating: breakers are
        hardware and the coordinator may never push a row's budget past
        what its feed can carry.
    """

    policy: str = "static"
    cadence_intervals: int = 10
    window_seconds: float = 3600.0
    demand_percentile: float = 99.5
    floor_margin: float = 1.05
    min_allocation_fraction: float = 0.4
    max_step_fraction: float = 0.10
    pressure_high: float = 0.10
    pressure_low: float = 0.02
    pressure_ema_rho: float = 0.5
    max_staleness_seconds: float = 180.0
    rating_headroom: float = 1.25

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown fleet policy {self.policy!r}; expected one of "
                f"{POLICY_NAMES}"
            )
        if self.cadence_intervals < 1:
            raise ValueError(
                f"cadence_intervals must be >= 1, got {self.cadence_intervals}"
            )
        if self.window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive, got {self.window_seconds}"
            )
        if not 0.0 < self.demand_percentile <= 100.0:
            raise ValueError(
                "demand_percentile must be in (0, 100], got "
                f"{self.demand_percentile}"
            )
        if self.floor_margin < 1.0:
            raise ValueError(
                f"floor_margin must be >= 1.0, got {self.floor_margin}"
            )
        if not 0.0 <= self.min_allocation_fraction <= 1.0:
            raise ValueError(
                "min_allocation_fraction must be in [0, 1], got "
                f"{self.min_allocation_fraction}"
            )
        if not 0.0 < self.max_step_fraction <= 1.0:
            raise ValueError(
                "max_step_fraction must be in (0, 1], got "
                f"{self.max_step_fraction}"
            )
        if self.pressure_low < 0 or self.pressure_high <= self.pressure_low:
            raise ValueError(
                "need 0 <= pressure_low < pressure_high, got "
                f"low={self.pressure_low} high={self.pressure_high}"
            )
        if not 0.0 < self.pressure_ema_rho <= 1.0:
            raise ValueError(
                f"pressure_ema_rho must be in (0, 1], got {self.pressure_ema_rho}"
            )
        if self.max_staleness_seconds <= 0:
            raise ValueError(
                "max_staleness_seconds must be positive, got "
                f"{self.max_staleness_seconds}"
            )
        if self.rating_headroom < 1.0:
            raise ValueError(
                f"rating_headroom must be >= 1.0, got {self.rating_headroom}"
            )


__all__ = ["FleetConfig", "POLICY_NAMES"]
