"""Reallocation policies: how the coordinator re-divides the budget.

A policy looks at per-row demand statistics and the current ledger and
*proposes* a new assignment; it never touches controllers or hardware.
Every proposal then passes through :func:`sanitize_allocations`, which
imposes the invariants a policy is allowed to be sloppy about (per-step
rate limit, floors, ratings, conservation) as a pure function so the
property tests can hammer it directly.

All iteration is in sorted row-name order and no randomness is drawn:
given the same demand history, a policy proposes the same assignment --
the determinism contract of the rest of the simulator extends to the
fleet layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.fleet.config import FleetConfig
from repro.fleet.ledger import RowBudget
from repro.tenancy.config import TenancyConfig


@dataclass(frozen=True)
class RowDemand:
    """Demand statistics of one row over the coordinator's window.

    ``p_demand_watts`` is the configured percentile (p99.5 by default)
    of observed row power -- the tail the safety floor protects.
    ``freeze_pressure`` is the mean commanded freeze ratio over the
    window: the fraction of capacity the row's controller had to freeze
    to stay under its current budget. High pressure means the budget,
    not the workload, is the binding constraint.
    """

    name: str
    p_demand_watts: float
    mean_watts: float
    freeze_pressure: float
    samples: int
    stale: bool = False


class ReallocationPolicy:
    """Interface: propose a complete row -> watts assignment."""

    name = "abstract"

    def propose(
        self,
        rows: Sequence[RowBudget],
        demands: Mapping[str, RowDemand],
        facility_budget_watts: float,
    ) -> Dict[str, float]:
        raise NotImplementedError


class StaticPolicy(ReallocationPolicy):
    """Never move budget: every row keeps its build-time share.

    The identity policy -- running the coordinator with it must be
    bit-identical to not running a coordinator at all (pinned by the
    golden tests).
    """

    name = "static"

    def propose(self, rows, demands, facility_budget_watts):
        return {row.name: row.static_watts for row in rows}


class ProportionalPolicy(ReallocationPolicy):
    """Water-fill the budget proportionally to recent tail demand.

    Finds a single multiplier ``lam`` such that every row gets
    ``clamp(lam * demand, floor, rating)`` and the clamped shares sum to
    the facility budget. Rows pinned at their floor or rating drop out
    of the balance; the rest share in proportion to demand -- the
    classic water-filling solution, solved by bisection on ``lam``
    (monotone in the sum, so 64 iterations pins it to float precision).
    """

    name = "proportional"

    def __init__(self, config: FleetConfig) -> None:
        self.config = config

    def propose(self, rows, demands, facility_budget_watts):
        demand = {}
        for row in rows:
            d = demands.get(row.name)
            watts = d.p_demand_watts if d is not None and d.samples > 0 else 0.0
            # A row with no observable demand still water-fills from its
            # static share, so an idle fleet keeps the build-time split.
            demand[row.name] = max(float(watts), 1e-9 * row.static_watts)

        def filled(lam: float) -> Dict[str, float]:
            return {
                row.name: min(
                    row.rating_watts,
                    max(row.floor_watts, lam * demand[row.name]),
                )
                for row in rows
            }

        def total(lam: float) -> float:
            return sum(filled(lam).values())

        lo, hi = 0.0, 1.0
        while total(hi) < facility_budget_watts and hi < 1e18:
            if total(hi) >= sum(row.rating_watts for row in rows) - 1e-9:
                break  # every row pinned at rating; budget can't be placed
            hi *= 2.0
        for _ in range(64):
            mid = 0.5 * (lo + hi)
            if total(mid) < facility_budget_watts:
                lo = mid
            else:
                hi = mid
        return filled(hi if total(hi) <= facility_budget_watts else lo)


class DemandFollowingPolicy(ReallocationPolicy):
    """Shift budget from becalmed rows toward rows under freeze pressure.

    Keeps an exponential moving average of each row's freeze pressure.
    Rows whose smoothed pressure exceeds ``pressure_high`` and that have
    rating headroom become *receivers*; rows below ``pressure_low`` with
    allocation above floor become *donors*. The transferable pool is the
    lesser of what donors can give (down to their floors) and what
    receivers want (up to their ratings), distributed proportionally on
    both sides. The dead band between the thresholds is the hysteresis
    that stops a marginal row from flapping donor/receiver every tick;
    the per-step rate limit lives in :func:`sanitize_allocations`.
    """

    name = "demand-following"

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self._pressure_ema: Dict[str, float] = {}

    def smoothed_pressure(self, name: str) -> float:
        return self._pressure_ema.get(name, 0.0)

    def propose(self, rows, demands, facility_budget_watts):
        rho = self.config.pressure_ema_rho
        for row in rows:
            d = demands.get(row.name)
            pressure = d.freeze_pressure if d is not None else 0.0
            if row.name in self._pressure_ema:
                self._pressure_ema[row.name] = (
                    rho * pressure + (1.0 - rho) * self._pressure_ema[row.name]
                )
            else:
                self._pressure_ema[row.name] = pressure

        proposal = {row.name: row.allocation_watts for row in rows}
        gives = {}
        wants = {}
        for row in rows:
            ema = self._pressure_ema[row.name]
            if ema < self.config.pressure_low:
                slack = row.allocation_watts - row.floor_watts
                if slack > 0:
                    gives[row.name] = slack
            elif ema > self.config.pressure_high:
                headroom = row.rating_watts - row.allocation_watts
                if headroom > 0:
                    wants[row.name] = headroom
        pool = min(sum(gives.values()), sum(wants.values()))
        if pool <= 0:
            return proposal
        give_total = sum(gives.values())
        want_total = sum(wants.values())
        for name in sorted(gives):
            proposal[name] -= pool * gives[name] / give_total
        for name in sorted(wants):
            proposal[name] += pool * wants[name] / want_total
        return proposal


def _water_fill(
    names: Sequence[str],
    demand: Mapping[str, float],
    floors: Mapping[str, float],
    ceilings: Mapping[str, float],
    budget_watts: float,
) -> Dict[str, float]:
    """Clamped proportional water-fill (the ProportionalPolicy kernel).

    Finds ``lam`` by bisection so that ``clamp(lam * demand, floor,
    ceiling)`` sums to ``budget_watts``; entries pinned at a bound drop
    out of the balance. Shared by the row-level and the tenant-level
    fills of the fair policy.
    """

    def filled(lam: float) -> Dict[str, float]:
        return {
            name: min(ceilings[name], max(floors[name], lam * demand[name]))
            for name in names
        }

    def total(lam: float) -> float:
        return sum(filled(lam).values())

    lo, hi = 0.0, 1.0
    ceiling_total = sum(ceilings[name] for name in names)
    while total(hi) < budget_watts and hi < 1e18:
        if total(hi) >= ceiling_total - 1e-9:
            break  # everything pinned at its ceiling; budget can't be placed
        hi *= 2.0
    for _ in range(64):
        mid = 0.5 * (lo + hi)
        if total(mid) < budget_watts:
            lo = mid
        else:
            hi = mid
    return filled(hi if total(hi) <= budget_watts else lo)


class FairSharePolicy(ReallocationPolicy):
    """Two-level water-fill: tenant entitlements first, then rows.

    The outer fill divides the facility budget across tenants in
    proportion to their configured entitlements, clamped between the sum
    of the tenant's row floors and the sum of its row ratings -- a
    tenant can never starve another below safety or hoard past its
    feeds. The inner fill then divides each tenant's budget across its
    rows by tail demand, exactly like :class:`ProportionalPolicy`.

    Rows not named in ``tenant_of_row`` (and every row when no tenancy
    is configured) pool under a synthetic ``"-"`` tenant whose
    entitlement is the static-budget share of its rows, so the policy
    degenerates gracefully to demand-proportional filling.
    """

    name = "fair"

    UNTENANTED = "-"

    def __init__(
        self,
        config: FleetConfig,
        tenancy: Optional[TenancyConfig] = None,
        tenant_of_row: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.config = config
        self.tenancy = tenancy
        self.tenant_of_row = dict(tenant_of_row or {})

    def propose(self, rows, demands, facility_budget_watts):
        demand = {}
        for row in rows:
            d = demands.get(row.name)
            watts = d.p_demand_watts if d is not None and d.samples > 0 else 0.0
            demand[row.name] = max(float(watts), 1e-9 * row.static_watts)

        members: Dict[str, List[RowBudget]] = {}
        for row in sorted(rows, key=lambda r: r.name):
            tenant = self.tenant_of_row.get(row.name, self.UNTENANTED)
            members.setdefault(tenant, []).append(row)

        entitlements = (
            self.tenancy.entitlements() if self.tenancy is not None else {}
        )
        static_total = sum(row.static_watts for row in rows)
        # Tenants without rows this tick contribute nothing; the "-"
        # pool's entitlement is whatever static share its rows carry.
        tenant_names = sorted(members)
        weights: Dict[str, float] = {}
        for tenant in tenant_names:
            if tenant in entitlements:
                weights[tenant] = entitlements[tenant]
            else:
                weights[tenant] = (
                    sum(r.static_watts for r in members[tenant]) / static_total
                    if static_total > 0
                    else 1.0
                )
        tenant_budgets = _water_fill(
            tenant_names,
            demand={t: weights[t] * facility_budget_watts for t in tenant_names},
            floors={
                t: sum(r.floor_watts for r in members[t]) for t in tenant_names
            },
            ceilings={
                t: sum(r.rating_watts for r in members[t]) for t in tenant_names
            },
            budget_watts=facility_budget_watts,
        )

        proposal: Dict[str, float] = {}
        for tenant in tenant_names:
            tenant_rows = members[tenant]
            proposal.update(
                _water_fill(
                    [r.name for r in tenant_rows],
                    demand=demand,
                    floors={r.name: r.floor_watts for r in tenant_rows},
                    ceilings={r.name: r.rating_watts for r in tenant_rows},
                    budget_watts=tenant_budgets[tenant],
                )
            )
        return proposal


def sanitize_allocations(
    proposal: Mapping[str, float],
    rows: Sequence[RowBudget],
    facility_budget_watts: float,
    max_step_fraction: float,
) -> Dict[str, float]:
    """Force a proposal into the ledger's admissible region.

    Applied in order:

    1. rate limit -- each row moves at most ``max_step_fraction`` of its
       static budget per coordinator tick (anti-thrash);
    2. clamp into ``[floor, rating]``;
    3. conservation -- if the clamped shares still over-subscribe the
       facility budget, the excess above each floor is scaled down by a
       common factor (safety outranks the rate limit, so this step may
       pull a row down faster than step 1 alone would allow).

    Pure function of its arguments; the property tests drive it with
    randomized proposals and assert the ledger accepts every output.
    """
    result: Dict[str, float] = {}
    for row in sorted(rows, key=lambda r: r.name):
        wanted = float(proposal.get(row.name, row.allocation_watts))
        step = max_step_fraction * row.static_watts
        limited = min(
            row.allocation_watts + step, max(row.allocation_watts - step, wanted)
        )
        result[row.name] = min(row.rating_watts, max(row.floor_watts, limited))
    floors = {row.name: row.floor_watts for row in rows}
    total = sum(result.values())
    if total > facility_budget_watts:
        floor_total = sum(floors.values())
        above = total - floor_total
        if above <= 0:
            # Floors alone over-subscribe (the coordinator scales floors
            # to fit before proposing, so this is belt-and-braces).
            factor = facility_budget_watts / total if total > 0 else 0.0
            return {name: watts * factor for name, watts in result.items()}
        factor = (facility_budget_watts - floor_total) / above
        result = {
            name: floors[name] + (watts - floors[name]) * factor
            for name, watts in result.items()
        }
    return result


def make_policy(
    name: str,
    config: FleetConfig,
    tenancy: Optional[TenancyConfig] = None,
    tenant_of_row: Optional[Mapping[str, str]] = None,
) -> ReallocationPolicy:
    """Instantiate a policy by registry name.

    ``tenancy`` and ``tenant_of_row`` are only read by the ``fair``
    policy; the legacy policies ignore them.
    """
    if name == "static":
        return StaticPolicy()
    if name == "proportional":
        return ProportionalPolicy(config)
    if name == "demand-following":
        return DemandFollowingPolicy(config)
    if name == "fair":
        return FairSharePolicy(config, tenancy=tenancy, tenant_of_row=tenant_of_row)
    raise ValueError(f"unknown fleet policy {name!r}")


__all__ = [
    "DemandFollowingPolicy",
    "FairSharePolicy",
    "ProportionalPolicy",
    "ReallocationPolicy",
    "RowDemand",
    "StaticPolicy",
    "make_policy",
    "sanitize_allocations",
]
