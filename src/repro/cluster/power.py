"""Server power model.

The model follows the shape established by Fan et al. (Power provisioning
for a warehouse-sized computer) and matches the behaviour the paper
measures on its own fleet:

- Idle power is a large fraction of rated power. Figure 4 of the paper
  shows a frozen server decaying from ~0.82 to ~0.70 of rated power once
  its jobs drain, so the default ``idle_fraction`` is 0.65 (the figure's
  floor includes residual background daemons, which we model as a small
  baseline utilization in the workload, not here).
- Dynamic power scales with task utilization raised to
  ``utilization_exponent`` (1.0 = linear, the common approximation).
- DVFS frequency scaling reduces *dynamic* power roughly quadratically
  (voltage tracks frequency), captured by ``frequency_power_exponent``.
  Capping a busy server therefore saves power but slows work down
  proportionally to frequency -- exactly the SLA-damaging trade the paper
  measures in Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PowerModelParams:
    """Parameters of the affine utilization-to-power model.

    Attributes
    ----------
    rated_watts:
        Measured maximum power draw of the server (the paper provisions on
        this "rated power", not the higher name-plate power). The paper's
        typical server is ~250 W.
    idle_fraction:
        Idle power as a fraction of rated power.
    utilization_exponent:
        Exponent applied to utilization in the dynamic-power term.
    frequency_power_exponent:
        Exponent applied to the DVFS frequency multiplier in the
        dynamic-power term.
    """

    rated_watts: float = 250.0
    idle_fraction: float = 0.65
    utilization_exponent: float = 1.0
    frequency_power_exponent: float = 2.0

    def __post_init__(self) -> None:
        if self.rated_watts <= 0:
            raise ValueError(f"rated_watts must be positive, got {self.rated_watts}")
        if not 0.0 <= self.idle_fraction < 1.0:
            raise ValueError(
                f"idle_fraction must be in [0, 1), got {self.idle_fraction}"
            )
        if self.utilization_exponent <= 0:
            raise ValueError(
                f"utilization_exponent must be positive, got {self.utilization_exponent}"
            )
        if self.frequency_power_exponent < 0:
            raise ValueError(
                "frequency_power_exponent must be non-negative, got "
                f"{self.frequency_power_exponent}"
            )

    @property
    def idle_watts(self) -> float:
        """Absolute idle power in watts."""
        return self.rated_watts * self.idle_fraction

    @property
    def dynamic_watts(self) -> float:
        """Maximum dynamic (utilization-dependent) power in watts."""
        return self.rated_watts - self.idle_watts


def server_power_watts(
    params: PowerModelParams, utilization: float, frequency: float = 1.0
) -> float:
    """Instantaneous server power draw in watts.

    Parameters
    ----------
    params:
        Power-model parameters for the server.
    utilization:
        Fraction of CPU cores occupied by running tasks, in [0, 1].
    frequency:
        DVFS frequency multiplier in (0, 1]; 1.0 means uncapped.
    """
    if not 0.0 <= utilization <= 1.0:
        raise ValueError(f"utilization must be in [0, 1], got {utilization}")
    if not 0.0 < frequency <= 1.0:
        raise ValueError(f"frequency must be in (0, 1], got {frequency}")
    dynamic = (
        params.dynamic_watts
        * utilization**params.utilization_exponent
        * frequency**params.frequency_power_exponent
    )
    return params.idle_watts + dynamic


# Discrete DVFS P-state frequency multipliers, highest first. Real RAPL
# exposes finer granularity; six states are enough to reproduce the
# capping behaviour the paper compares against.
DVFS_FREQUENCIES = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5)


def next_lower_frequency(frequency: float) -> float:
    """The next DVFS step below ``frequency`` (saturates at the lowest)."""
    for step in DVFS_FREQUENCIES:
        if step < frequency - 1e-12:
            return step
    return DVFS_FREQUENCIES[-1]


def next_higher_frequency(frequency: float) -> float:
    """The next DVFS step above ``frequency`` (saturates at 1.0)."""
    for step in reversed(DVFS_FREQUENCIES):
        if step > frequency + 1e-12:
            return step
    return DVFS_FREQUENCIES[0]


__all__ = [
    "PowerModelParams",
    "server_power_watts",
    "DVFS_FREQUENCIES",
    "next_lower_frequency",
    "next_higher_frequency",
]
