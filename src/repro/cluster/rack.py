"""Rack: ~40 servers behind an 8-10 kW rack-level budget."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cluster.group import ServerGroup
from repro.cluster.server import Server


class Rack(ServerGroup):
    """A rack of servers.

    The paper's data centers put ~40 servers of ~250 W rated power behind a
    10 kW rack budget. Racks matter to the reproduction mainly for Figure 1
    (power-utilization CDFs are computed at rack, row and data-center
    scale); control never happens at rack level by design choice 1 of
    Section 3.1.
    """

    def __init__(
        self,
        rack_id: int,
        servers: Iterable[Server],
        power_budget_watts: Optional[float] = None,
    ) -> None:
        super().__init__(f"rack-{rack_id}", servers, power_budget_watts)
        self.rack_id = rack_id
        for server in self.servers:
            server.rack_id = rack_id


__all__ = ["Rack"]
