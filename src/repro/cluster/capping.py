"""RAPL/DVFS-style reactive power capping.

This is the safety-net mechanism the paper compares against (and keeps
enabled underneath Ampere). When group power exceeds the budget, the engine
steps down the DVFS frequency of the highest-power servers until the
projected power fits; when power falls comfortably below the budget it
steps frequencies back up. Real RAPL reacts in under a millisecond; the
simulation ticks every ``interval`` seconds (default 1 s), far inside the
one-minute monitoring granularity, which preserves the property that
capping -- unlike Ampere -- catches sub-minute spikes but damages running
jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.cluster.group import ServerGroup
from repro.cluster.power import (
    DVFS_FREQUENCIES,
    next_higher_frequency,
    next_lower_frequency,
)
from repro.cluster.server import Server
from repro.sim.engine import Engine
from repro.sim.events import EventPriority


@dataclass
class CappingStats:
    """Accounting of capping activity for the evaluation metrics."""

    ticks: int = 0
    over_budget_ticks: int = 0
    cap_actions: int = 0
    uncap_actions: int = 0
    #: emergency floor-everything interventions (safety-supervisor slams)
    slam_actions: int = 0
    capped_server_seconds: float = 0.0
    #: per-server seconds spent below full frequency
    per_server_capped_seconds: Dict[int, float] = field(default_factory=dict)

    def fraction_time_over_budget(self) -> float:
        return self.over_budget_ticks / self.ticks if self.ticks else 0.0


class CappingEngine:
    """Reactive row-level power capping via DVFS frequency stepping.

    Parameters
    ----------
    group:
        The servers sharing the enforced budget (a row, or a virtual
        experiment group with a scaled budget).
    engine:
        Simulation engine; the capping loop self-schedules on it.
    interval:
        Seconds between control evaluations.
    restore_headroom:
        Frequencies are only restored while projected power stays below
        ``restore_headroom * budget``, which prevents cap/uncap flapping.
    enabled:
        A disabled engine still ticks and counts over-budget intervals
        (used to observe uncontrolled power demand) but never acts.
    strategy:
        Victim selection: ``"hottest-first"`` (concentrate the damage on
        the fewest servers -- the production default) or ``"spread"``
        (step every server down together, spreading a smaller slowdown
        over the whole group).
    """

    STRATEGIES = ("hottest-first", "spread")

    def __init__(
        self,
        group: ServerGroup,
        engine: Engine,
        interval: float = 1.0,
        restore_headroom: float = 0.97,
        enabled: bool = True,
        strategy: str = "hottest-first",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if not 0.0 < restore_headroom <= 1.0:
            raise ValueError(
                f"restore_headroom must be in (0, 1], got {restore_headroom}"
            )
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"strategy must be one of {self.STRATEGIES}, got {strategy!r}"
            )
        self.group = group
        self.engine = engine
        self.interval = interval
        self.restore_headroom = restore_headroom
        self.enabled = enabled
        self.strategy = strategy
        self.stats = CappingStats()

    def start(self, until: float, first_at: "float | None" = None) -> None:
        """Begin periodic evaluation on the simulation engine."""
        self.engine.schedule_periodic(
            self.interval,
            EventPriority.CAPPING_TICK,
            self.tick,
            first_at=first_at,
            until=until,
        )

    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One control evaluation: cap if over budget, else maybe restore."""
        self.stats.ticks += 1
        self._account_capped_time()
        power = self.group.power_watts()
        budget = self.group.power_budget_watts
        if power > budget:
            self.stats.over_budget_ticks += 1
            if self.enabled:
                self._cap_until_under(power, budget)
        elif self.enabled:
            self._restore_while_safe(power, budget)

    def _account_capped_time(self) -> None:
        # A failed or powered-off server draws nothing and runs nothing:
        # its DVFS state is moot, so it must not accrue capped time (the
        # failure path resets frequency, but guard here regardless).
        # This guard holds under batched mutations too: ClusterState's
        # mask-fail primitive resets frequency and the shared power cache
        # exactly like Server.fail(), so neither backend can leak capped
        # time on a dark machine.
        if self.group.vectorized:
            state, idx = self.group.state, self.group.state_indices
            capped_live = state.capped_mask(idx) & state.live_mask(idx)
            per = self.stats.per_server_capped_seconds
            # Accumulate per slot, in group order: the running totals must
            # add up in the same sequence as the object path's loop.
            for pos in np.flatnonzero(capped_live):
                server = self.group.servers[pos]
                self.stats.capped_server_seconds += self.interval
                per[server.server_id] = per.get(server.server_id, 0.0) + self.interval
            return
        for server in self.group.servers:
            if server.is_capped and not (server.failed or server.powered_off):
                self.stats.capped_server_seconds += self.interval
                per = self.stats.per_server_capped_seconds
                per[server.server_id] = per.get(server.server_id, 0.0) + self.interval

    def _cap_until_under(self, power: float, budget: float) -> None:
        if self.strategy == "hottest-first":
            self._cap_hottest_first(power, budget)
        else:
            self._cap_spread(power, budget)

    def _live_hottest_first(self) -> List[Server]:
        """Live servers, hottest first, identical order on both backends.

        ``sorted(..., reverse=True)`` is stable, and so is
        ``argsort(-powers, kind="stable")``; filtering dark servers
        commutes with a stable sort, so the two constructions yield the
        same sequence (powers are bit-identical across backends).
        """
        if self.group.vectorized:
            state, idx = self.group.state, self.group.state_indices
            powers = state.server_powers(idx)
            live = state.live_mask(idx)
            order = np.argsort(-powers, kind="stable")
            servers = self.group.servers
            return [servers[pos] for pos in order if live[pos]]
        return sorted(
            (s for s in self.group.servers if not (s.failed or s.powered_off)),
            key=lambda s: s.power_watts(),
            reverse=True,
        )

    def _cap_hottest_first(self, power: float, budget: float) -> None:
        """Step down the hottest servers until projected power <= budget."""
        # Sort once; stepping a server down changes its power but the
        # hottest-first order remains a good greedy heuristic, matching how
        # production cappers prioritize.
        candidates: List[Server] = self._live_hottest_first()
        projected = power
        for server in candidates:
            if projected <= budget:
                break
            while projected > budget:
                lower = next_lower_frequency(server.frequency)
                if lower >= server.frequency:
                    break  # already at the floor
                before = server.power_watts()
                server.set_frequency(lower)
                projected -= before - server.power_watts()
                self.stats.cap_actions += 1

    def _cap_spread(self, power: float, budget: float) -> None:
        """Step the whole group down one frequency level at a time."""
        projected = power
        progressing = True
        while projected > budget and progressing:
            progressing = False
            for server in self.group.servers:
                if server.failed or server.powered_off:
                    continue
                if projected <= budget:
                    break
                lower = next_lower_frequency(server.frequency)
                if lower >= server.frequency:
                    continue  # at the floor
                before = server.power_watts()
                server.set_frequency(lower)
                projected -= before - server.power_watts()
                self.stats.cap_actions += 1
                progressing = True

    # ------------------------------------------------------------------
    # Emergency surfaces used by the safety supervisor
    # ------------------------------------------------------------------
    def slam(self) -> int:
        """Emergency cap: floor every live server's frequency at once.

        The supervisor's CRITICAL response. Unlike :meth:`tick` this does
        not stop at the budget -- it trades maximum SLA damage for an
        immediate, guaranteed power cut. Returns frequency steps applied.
        """
        floor = DVFS_FREQUENCIES[-1]
        actions = 0
        if self.group.vectorized:
            # Vectorized victim *selection*; the actual frequency step
            # stays per-object because listeners (the scheduler's
            # completion bookkeeping) must observe every transition.
            state, idx = self.group.state, self.group.state_indices
            victims = state.live_mask(idx) & (state.frequency[idx] > floor)
            for pos in np.flatnonzero(victims):
                self.group.servers[pos].set_frequency(floor)
                actions += 1
        else:
            for server in self.group.servers:
                if server.failed or server.powered_off:
                    continue
                if server.frequency > floor:
                    server.set_frequency(floor)
                    actions += 1
        if actions:
            self.stats.slam_actions += 1
            self.stats.cap_actions += actions
        return actions

    def restore_step(self) -> None:
        """One headroom-guarded restore pass (for callers that do not run
        the periodic loop, e.g. the supervisor unwinding a slam)."""
        self._restore_while_safe(
            self.group.power_watts(), self.group.power_budget_watts
        )

    def _restore_while_safe(self, power: float, budget: float) -> None:
        """Step capped servers back up while staying under the headroom."""
        ceiling = self.restore_headroom * budget
        if power >= ceiling:
            return
        # Restore the least-capped (closest to full speed) first so servers
        # exit the capped state quickly, minimizing SLA exposure.
        # Dark servers are skipped: "restoring" one is free in power terms
        # (delta 0) and would silently discard its DVFS state.
        if self.group.vectorized:
            state, idx = self.group.state, self.group.state_indices
            eligible = state.capped_mask(idx) & state.live_mask(idx)
            order = np.argsort(-state.frequency[idx], kind="stable")
            servers = self.group.servers
            capped = [servers[pos] for pos in order if eligible[pos]]
        else:
            capped = sorted(
                (
                    s
                    for s in self.group.servers
                    if s.is_capped and not (s.failed or s.powered_off)
                ),
                key=lambda s: s.frequency,
                reverse=True,
            )
        projected = power
        for server in capped:
            old_frequency = server.frequency
            higher = next_higher_frequency(old_frequency)
            before = server.power_watts()
            server.set_frequency(higher)
            delta = server.power_watts() - before
            if projected + delta > ceiling:
                # The step would overshoot the headroom: revert and stop.
                server.set_frequency(old_frequency)
                break
            projected += delta
            self.stats.uncap_actions += 1


__all__ = ["CappingEngine", "CappingStats"]
