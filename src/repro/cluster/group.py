"""ServerGroup: a named set of servers with a power budget.

Rows, racks and the virtual experiment/control groups of the paper's
controlled experiments (Section 4.1.2) are all "a set of servers with a
provisioned power budget" from the point of view of the monitor and the
controller, so they share this base class.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.cluster.server import Server
from repro.cluster.state import shared_state_of


class ServerGroup:
    """A collection of servers sharing a provisioned power budget.

    Parameters
    ----------
    name:
        Human-readable identifier used in monitor series keys.
    servers:
        Member servers. Membership is fixed after construction.
    power_budget_watts:
        Provisioned budget ``P_M``. Defaults to the sum of member rated
        power (i.e. conservative rated-power provisioning, the paper's
        baseline). The experiment harness *scales this down* to emulate
        over-provisioning per Eq. 16 of the paper.
    """

    def __init__(
        self,
        name: str,
        servers: Iterable[Server],
        power_budget_watts: Optional[float] = None,
    ) -> None:
        self.name = name
        self.servers: List[Server] = list(servers)
        if not self.servers:
            raise ValueError(f"server group {name!r} must contain at least one server")
        if power_budget_watts is None:
            power_budget_watts = sum(s.rated_watts for s in self.servers)
        if power_budget_watts <= 0:
            raise ValueError(
                f"power_budget_watts must be positive, got {power_budget_watts}"
            )
        self.power_budget_watts = float(power_budget_watts)
        # When every member registered with one ClusterState, the group
        # is an array slice of it and the hot loops can vectorize.
        self._state, self._indices = shared_state_of(self.servers)

    @property
    def state(self):
        """The shared :class:`ClusterState`, or ``None`` for mixed groups."""
        return self._state

    @property
    def state_indices(self) -> Optional[np.ndarray]:
        """Member slot indices into :attr:`state` (group order)."""
        return self._indices

    @property
    def vectorized(self) -> bool:
        """Whether the hot loops run on the array backend for this group."""
        return self._state is not None and self._state.backend == "vectorized"

    def __len__(self) -> int:
        return len(self.servers)

    def __iter__(self):
        return iter(self.servers)

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def power_watts(self) -> float:
        """Instantaneous true aggregate power of all member servers.

        Both backends produce bit-identical totals: the vectorized path
        aggregates with sequential-``cumsum`` semantics to match the
        object path's left-to-right ``sum``.
        """
        if self.vectorized:
            return self._state.total_power(self._indices)
        return sum(s.power_watts() for s in self.servers)

    def server_powers(self) -> np.ndarray:
        """Per-server true power in member order (monitor hot path)."""
        if self.vectorized:
            return self._state.server_powers(self._indices)
        return np.fromiter(
            (s.power_watts() for s in self.servers),
            dtype=np.float64,
            count=len(self.servers),
        )

    def rated_watts(self) -> float:
        """Sum of member rated power (the conservative provisioning base)."""
        return sum(s.rated_watts for s in self.servers)

    def normalized_power(self) -> float:
        """Aggregate power normalized to the provisioned budget ``P_M``."""
        return self.power_watts() / self.power_budget_watts

    def unused_power_watts(self) -> float:
        """The paper's Eq. 1: budget minus realtime power (can be negative)."""
        return self.power_budget_watts - self.power_watts()

    def set_over_provision_ratio(self, r_o: float) -> None:
        """Scale the budget down to emulate over-provisioning (Eq. 16).

        With budget ``P'_M = rated / (1 + r_O)``, the group behaves as if
        ``r_O`` extra servers-per-provisioned-server had been added to a
        fixed budget: ``r_O = P_M / P'_M - 1``.
        """
        if r_o < 0:
            raise ValueError(f"over-provision ratio must be non-negative, got {r_o}")
        self.power_budget_watts = self.rated_watts() / (1.0 + r_o)

    @property
    def over_provision_ratio(self) -> float:
        """Current ``r_O`` implied by the budget (0 when budget == rated)."""
        return self.rated_watts() / self.power_budget_watts - 1.0

    # ------------------------------------------------------------------
    # Freeze state
    # ------------------------------------------------------------------
    def frozen_servers(self) -> List[Server]:
        return [s for s in self.servers if s.frozen]

    def freezing_ratio(self) -> float:
        """Fraction of member servers currently frozen (the paper's u_t)."""
        if self.vectorized:
            return self._state.frozen_count(self._indices) / len(self.servers)
        return len(self.frozen_servers()) / len(self.servers)

    def capped_servers(self) -> List[Server]:
        return [s for s in self.servers if s.is_capped]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ServerGroup({self.name!r}, n={len(self.servers)}, "
            f"budget={self.power_budget_watts:.0f}W)"
        )


__all__ = ["ServerGroup"]
