"""Simulated physical substrate: servers, racks, rows, PDUs and capping.

The paper's controller observes and manages power at the row level; the
classes here model the power behaviour of that hardware. The substitution
for real IPMI-instrumented machines is documented in DESIGN.md: a server's
power is an affine function of its task utilization and DVFS frequency,
with measurement noise added by the monitor (not here), so the controller
sees the same minute-granularity, noisy, aggregated signal it sees in
production.
"""

from repro.cluster.power import PowerModelParams, server_power_watts
from repro.cluster.server import Server
from repro.cluster.rack import Rack
from repro.cluster.row import Row
from repro.cluster.group import ServerGroup
from repro.cluster.datacenter import (
    DataCenter,
    ServerSpec,
    build_row,
    build_heterogeneous_row,
    build_datacenter,
)
from repro.cluster.capping import CappingEngine, CappingStats
from repro.cluster.breaker import BreakerCurve, BreakerStats, RowBreaker
from repro.cluster.state import (
    BACKENDS,
    ClusterState,
    resolve_backend,
    set_default_backend,
    shared_state_of,
)

__all__ = [
    "BACKENDS",
    "BreakerCurve",
    "BreakerStats",
    "RowBreaker",
    "ClusterState",
    "resolve_backend",
    "set_default_backend",
    "shared_state_of",
    "PowerModelParams",
    "server_power_watts",
    "Server",
    "Rack",
    "Row",
    "ServerGroup",
    "DataCenter",
    "ServerSpec",
    "build_row",
    "build_heterogeneous_row",
    "build_datacenter",
    "CappingEngine",
    "CappingStats",
]
