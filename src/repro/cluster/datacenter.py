"""DataCenter topology and construction helpers.

The paper's reference topology: the data-center power budget is statically
partitioned into dozens of row-level PDUs; each row feeds ~20 racks of ~40
servers (250 W rated, 10 kW rack budget), i.e. ~800 servers per row. The
helpers below build arbitrarily scaled versions of that topology with
stable, globally unique server ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.cluster.group import ServerGroup
from repro.cluster.power import PowerModelParams
from repro.cluster.rack import Rack
from repro.cluster.row import Row
from repro.cluster.server import Server
from repro.cluster.state import ClusterState


@dataclass(frozen=True)
class ServerSpec:
    """A hardware SKU for heterogeneous fleets.

    Real fleets mix server generations; the controller is agnostic to this
    (it ranks servers by absolute watts), but the simulator must model it
    to check that claim.
    """

    cores: int = 16
    memory_gb: float = 64.0
    power_params: PowerModelParams = PowerModelParams()
    background_utilization: float = 0.05

    def build(self, server_id: int, state: Optional[ClusterState] = None) -> Server:
        return Server(
            server_id,
            cores=self.cores,
            memory_gb=self.memory_gb,
            power_params=self.power_params,
            background_utilization=self.background_utilization,
            state=state,
        )


class DataCenter(ServerGroup):
    """The full facility: a set of rows under one design power budget."""

    def __init__(
        self,
        rows: Iterable[Row],
        power_budget_watts: Optional[float] = None,
    ) -> None:
        self.rows: List[Row] = list(rows)
        if not self.rows:
            raise ValueError("data center must contain at least one row")
        servers = [s for row in self.rows for s in row.servers]
        if power_budget_watts is None:
            power_budget_watts = sum(r.power_budget_watts for r in self.rows)
        super().__init__("datacenter", servers, power_budget_watts)

    @property
    def racks(self) -> List[Rack]:
        return [rack for row in self.rows for rack in row.racks]

    def row_by_id(self, row_id: int) -> Row:
        for row in self.rows:
            if row.row_id == row_id:
                return row
        raise KeyError(f"no row with id {row_id}")


def build_row(
    row_id: int,
    racks: int = 10,
    servers_per_rack: int = 40,
    power_params: PowerModelParams = PowerModelParams(),
    cores: int = 16,
    memory_gb: float = 64.0,
    first_server_id: int = 0,
    breaker_trip_ratio: float = 1.10,
    state: Optional[ClusterState] = None,
    engine_backend: Optional[str] = None,
) -> Row:
    """Build one homogeneous row; server ids start at ``first_server_id``.

    All servers of the row register with one :class:`ClusterState` (a
    fresh, exactly-sized one unless ``state`` is shared by the caller),
    so the row is a contiguous array slice in the columnar store.
    """
    if racks <= 0 or servers_per_rack <= 0:
        raise ValueError("racks and servers_per_rack must be positive")
    if state is None:
        state = ClusterState(capacity=racks * servers_per_rack, backend=engine_backend)
    built_racks = []
    server_id = first_server_id
    for rack_index in range(racks):
        servers = []
        for _ in range(servers_per_rack):
            servers.append(
                Server(
                    server_id,
                    cores=cores,
                    memory_gb=memory_gb,
                    power_params=power_params,
                    state=state,
                )
            )
            server_id += 1
        built_racks.append(Rack(row_id * 1000 + rack_index, servers))
    return Row(row_id, built_racks, breaker_trip_ratio=breaker_trip_ratio)


def build_heterogeneous_row(
    row_id: int,
    sku_counts: Sequence[Tuple[int, ServerSpec]],
    servers_per_rack: int = 40,
    first_server_id: int = 0,
    breaker_trip_ratio: float = 1.10,
    state: Optional[ClusterState] = None,
    engine_backend: Optional[str] = None,
) -> Row:
    """Build a row mixing several server SKUs.

    ``sku_counts`` is a list of ``(count, spec)`` pairs; servers are
    created in order and packed into racks of ``servers_per_rack`` (the
    total must fill whole racks, as in a real deployment plan).
    """
    if servers_per_rack <= 0:
        raise ValueError(f"servers_per_rack must be positive, got {servers_per_rack}")
    if state is None:
        total = sum(max(count, 0) for count, _ in sku_counts)
        state = ClusterState(capacity=max(total, 1), backend=engine_backend)
    servers: List[Server] = []
    server_id = first_server_id
    for count, spec in sku_counts:
        if count <= 0:
            raise ValueError(f"SKU count must be positive, got {count}")
        for _ in range(count):
            servers.append(spec.build(server_id, state=state))
            server_id += 1
    if not servers:
        raise ValueError("heterogeneous row needs at least one server")
    if len(servers) % servers_per_rack != 0:
        raise ValueError(
            f"total servers ({len(servers)}) must fill whole racks of "
            f"{servers_per_rack}"
        )
    racks = []
    for rack_index in range(len(servers) // servers_per_rack):
        chunk = servers[rack_index * servers_per_rack:(rack_index + 1) * servers_per_rack]
        racks.append(Rack(row_id * 1000 + rack_index, chunk))
    return Row(row_id, racks, breaker_trip_ratio=breaker_trip_ratio)


def build_datacenter(
    rows: int = 4,
    racks_per_row: int = 10,
    servers_per_rack: int = 40,
    power_params: PowerModelParams = PowerModelParams(),
    cores: int = 16,
    memory_gb: float = 64.0,
    engine_backend: Optional[str] = None,
) -> DataCenter:
    """Build a homogeneous multi-row data center with contiguous server ids.

    All rows share one :class:`ClusterState`, so facility-level rollups
    vectorize across the whole fleet in a single slice.
    """
    if rows <= 0:
        raise ValueError(f"rows must be positive, got {rows}")
    state = ClusterState(
        capacity=rows * racks_per_row * servers_per_rack, backend=engine_backend
    )
    built_rows = []
    next_id = 0
    for row_id in range(rows):
        row = build_row(
            row_id,
            racks=racks_per_row,
            servers_per_rack=servers_per_rack,
            power_params=power_params,
            cores=cores,
            memory_gb=memory_gb,
            first_server_id=next_id,
            state=state,
        )
        next_id += len(row.servers)
        built_rows.append(row)
    return DataCenter(built_rows)


__all__ = [
    "DataCenter",
    "ServerSpec",
    "build_row",
    "build_heterogeneous_row",
    "build_datacenter",
]
