"""Circuit-breaker physics: the catastrophe Ampere exists to avoid.

The paper's central risk is tripping a row PDU breaker: every server
downstream loses power at once, which is why operators historically
provision on rated power. Real molded-case breakers follow an
*inverse-time* curve -- the further current exceeds the pickup level, the
faster the thermal element trips (an I²t characteristic) -- plus an
instantaneous magnetic element for severe overloads. :class:`RowBreaker`
models both against a group's true power draw, and a trip actually
*hurts*: every downstream server is de-energized through the scheduler's
failure path (jobs killed, power reads 0 W) until an operator reset
delay expires.

The breaker evaluates **true** power on the engine clock, independent of
the monitoring plane -- sensor noise, IPMI staleness and monitoring
blackouts do not fool a bimetal strip.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Optional

from repro.cluster.group import ServerGroup
from repro.sim.engine import Engine
from repro.sim.events import EventPriority

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.scheduler.omega import OmegaScheduler
    from repro.sim.eventlog import ControlEventLog
    from repro.telemetry import Telemetry

logger = logging.getLogger(__name__)

#: server_id used for breaker events in the control event log (a trip is
#: a group-level action, not a per-server one)
BREAKER_EVENT_ID = -1


@dataclass(frozen=True)
class BreakerCurve:
    """Trip characteristic of one breaker.

    Attributes
    ----------
    pickup_ratio:
        Power (as a fraction of the provisioned budget) below which the
        thermal element does not heat. Breakers carry margin above their
        rating; 1.05 is representative for a continuously loaded feed.
    i2t_threshold:
        Thermal trip threshold in ``(ratio^2 - pickup^2) * seconds``
        units: sustained load at ratio r trips after
        ``i2t_threshold / (r^2 - pickup^2)`` seconds, so a 25% overload
        trips several times faster than a 5% one -- the inverse-time law.
    instant_trip_ratio:
        The magnetic element: at or above this ratio the breaker opens
        within one evaluation interval regardless of accumulated heat.
    cooldown_per_second:
        Thermal units shed per second while load is below pickup (the
        bimetal strip cooling back down).
    """

    pickup_ratio: float = 1.05
    i2t_threshold: float = 25.0
    instant_trip_ratio: float = 1.5
    cooldown_per_second: float = 1.0

    def __post_init__(self) -> None:
        if self.pickup_ratio < 1.0:
            raise ValueError(
                f"pickup_ratio must be >= 1.0, got {self.pickup_ratio}"
            )
        if self.instant_trip_ratio <= self.pickup_ratio:
            raise ValueError(
                "instant_trip_ratio must exceed pickup_ratio, got "
                f"{self.instant_trip_ratio} <= {self.pickup_ratio}"
            )
        if self.i2t_threshold <= 0:
            raise ValueError(
                f"i2t_threshold must be positive, got {self.i2t_threshold}"
            )
        if self.cooldown_per_second < 0:
            raise ValueError(
                "cooldown_per_second must be non-negative, got "
                f"{self.cooldown_per_second}"
            )

    def heating_rate(self, ratio: float) -> float:
        """Thermal units accumulated per second at a given load ratio."""
        if ratio <= self.pickup_ratio:
            return 0.0
        return ratio * ratio - self.pickup_ratio * self.pickup_ratio

    def seconds_to_trip(self, ratio: float) -> float:
        """Time a cold breaker survives a constant overload (inf if none)."""
        rate = self.heating_rate(ratio)
        return self.i2t_threshold / rate if rate > 0 else float("inf")


@dataclass
class BreakerStats:
    """Accounting of one breaker's activity (picklable)."""

    trips: int = 0
    resets: int = 0
    jobs_killed: int = 0
    servers_deenergized: int = 0
    max_thermal_fraction: float = 0.0
    trip_times: List[float] = field(default_factory=list)

    def snapshot(self) -> "BreakerStats":
        return replace(self, trip_times=list(self.trip_times))


class RowBreaker:
    """An inverse-time breaker protecting one server group's feed.

    Parameters
    ----------
    group:
        The servers behind this breaker (a row, or the virtual
        experiment group whose scaled budget emulates the row feed).
    engine / scheduler:
        Simulation engine and the *real* cluster scheduler -- a trip
        de-energizes hardware, so it must not route through the fault
        or instrumentation layers the controller talks to.
    curve:
        Trip characteristic.
    interval:
        Seconds between thermal evaluations. Runs at
        ``EventPriority.BREAKER_TICK`` so it integrates the settled
        electrical state after every control and capping action.
    reset_delay_seconds:
        Operator response time before the breaker is closed again and
        the row re-energized.
    rating_watts:
        The *physical* feed rating the trip curve is anchored to. A
        breaker is hardware: its pickup current never moves when a fleet
        coordinator re-divides budgets between rows. Defaults to the
        group's budget at construction time (identical behaviour for
        statically provisioned runs) and stays pinned thereafter.
    """

    def __init__(
        self,
        group: ServerGroup,
        engine: Engine,
        scheduler: "OmegaScheduler",
        curve: BreakerCurve = BreakerCurve(),
        interval: float = 5.0,
        reset_delay_seconds: float = 900.0,
        event_log: Optional["ControlEventLog"] = None,
        telemetry: Optional["Telemetry"] = None,
        rating_watts: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if reset_delay_seconds <= 0:
            raise ValueError(
                f"reset_delay_seconds must be positive, got {reset_delay_seconds}"
            )
        if rating_watts is not None and rating_watts <= 0:
            raise ValueError(
                f"rating_watts must be positive, got {rating_watts}"
            )
        self.rating_watts = float(
            rating_watts if rating_watts is not None else group.power_budget_watts
        )
        self.group = group
        self.engine = engine
        self.scheduler = scheduler
        self.curve = curve
        self.interval = interval
        self.reset_delay_seconds = reset_delay_seconds
        self.event_log = event_log
        self.tripped = False
        self.thermal_load = 0.0
        self.stats = BreakerStats()
        self._deenergized_ids: List[int] = []
        if telemetry is None:
            from repro.telemetry import Telemetry

            telemetry = getattr(engine, "telemetry", None) or Telemetry.disabled()
        labels = {"group": group.name}
        self._trip_counter = telemetry.counter(
            "repro_breaker_trips_total",
            "Breaker trips (every downstream server de-energized)",
            labels,
        )
        self._thermal_gauge = telemetry.gauge(
            "repro_breaker_thermal_fraction",
            "Accumulated I2t heat as a fraction of the trip threshold",
            labels,
        )
        self._tripped_gauge = telemetry.gauge(
            "repro_breaker_tripped",
            "1 while the breaker is open (row dark), else 0",
            labels,
        )

    @property
    def thermal_fraction(self) -> float:
        """Accumulated heat as a fraction of the trip threshold."""
        return self.thermal_load / self.curve.i2t_threshold

    def start(self, until: float, first_at: Optional[float] = None) -> None:
        """Begin periodic thermal evaluation on the engine."""
        self.engine.schedule_periodic(
            self.interval,
            EventPriority.BREAKER_TICK,
            self.tick,
            first_at=first_at,
            until=until,
        )

    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One thermal-element evaluation against true group power."""
        if self.tripped:
            return  # the feed is open; nothing flows until reset
        ratio = self.group.power_watts() / self.rating_watts
        if ratio >= self.curve.instant_trip_ratio:
            self._trip(ratio, reason="instantaneous")
            return
        heating = self.curve.heating_rate(ratio)
        if heating > 0:
            self.thermal_load += heating * self.interval
        else:
            self.thermal_load = max(
                0.0,
                self.thermal_load - self.curve.cooldown_per_second * self.interval,
            )
        self.stats.max_thermal_fraction = max(
            self.stats.max_thermal_fraction, self.thermal_fraction
        )
        self._thermal_gauge.set(self.thermal_fraction)
        if self.thermal_load >= self.curve.i2t_threshold:
            self._trip(ratio, reason="inverse-time")

    # ------------------------------------------------------------------
    def _trip(self, ratio: float, reason: str) -> None:
        """Open the breaker: every downstream server loses power."""
        self.tripped = True
        self.stats.trips += 1
        self.stats.trip_times.append(self.engine.now)
        self._trip_counter.inc()
        self._tripped_gauge.set(1.0)
        logger.error(
            "breaker on %s TRIPPED (%s) at t=%.0fs, load ratio %.3f",
            self.group.name,
            reason,
            self.engine.now,
            ratio,
        )
        self._deenergized_ids = []
        killed = 0
        for server in self.group.servers:
            if server.failed:
                continue  # already dark (e.g. a crash-storm casualty)
            killed += self.scheduler.fail_server(server.server_id)
            self._deenergized_ids.append(server.server_id)
        self.stats.jobs_killed += killed
        self.stats.servers_deenergized += len(self._deenergized_ids)
        if self.event_log is not None:
            self.event_log.record(
                "trip",
                BREAKER_EVENT_ID,
                f"{self.group.name} {reason} ratio={ratio:.3f} killed={killed}",
            )
        self.engine.schedule(
            self.engine.now + self.reset_delay_seconds,
            EventPriority.FAULT,
            self._reset,
        )

    def _reset(self) -> None:
        """Operator closes the breaker; the row re-energizes empty."""
        for server_id in self._deenergized_ids:
            self.scheduler.repair_server(server_id)
        self._deenergized_ids = []
        self.tripped = False
        self.thermal_load = 0.0
        self.stats.resets += 1
        self._tripped_gauge.set(0.0)
        self._thermal_gauge.set(0.0)
        logger.warning(
            "breaker on %s reset at t=%.0fs; row re-energized",
            self.group.name,
            self.engine.now,
        )
        if self.event_log is not None:
            self.event_log.record("reset", BREAKER_EVENT_ID, self.group.name)

    # ------------------------------------------------------------------
    def stats_snapshot(self) -> BreakerStats:
        return self.stats.snapshot()


__all__ = ["BreakerCurve", "RowBreaker", "BreakerStats", "BREAKER_EVENT_ID"]
