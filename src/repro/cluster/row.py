"""Row: ~20 racks behind one PDU, the unit Ampere controls.

The row-level PDU budget is enforced physically by a circuit breaker. A
*power violation* in the paper is one monitoring interval in which row
power exceeds the provisioned budget; the breaker itself only trips on a
sustained, larger overload (which would be catastrophic and never happens
in any of the paper's experiments). Both are modelled here.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.cluster.group import ServerGroup
from repro.cluster.rack import Rack


class Row(ServerGroup):
    """A row of racks fed by one PDU.

    Parameters
    ----------
    row_id:
        Unique row id within the data center.
    racks:
        Member racks; the row's servers are the union of rack servers.
    power_budget_watts:
        PDU budget ``P_M``. Defaults to the sum of rack budgets when those
        are set, else to the sum of rated server power.
    breaker_trip_ratio:
        The breaker trips if row power exceeds ``trip_ratio * budget``
        (instantaneously, when sampled). Commercial breakers carry margin
        above the rated limit; 1.10 is a representative value.
    """

    def __init__(
        self,
        row_id: int,
        racks: Iterable[Rack],
        power_budget_watts: Optional[float] = None,
        breaker_trip_ratio: float = 1.10,
    ) -> None:
        self.racks: List[Rack] = list(racks)
        if not self.racks:
            raise ValueError(f"row {row_id} must contain at least one rack")
        servers = [s for rack in self.racks for s in rack.servers]
        if power_budget_watts is None:
            power_budget_watts = sum(r.power_budget_watts for r in self.racks)
        super().__init__(f"row-{row_id}", servers, power_budget_watts)
        self.row_id = row_id
        if breaker_trip_ratio < 1.0:
            raise ValueError(
                f"breaker_trip_ratio must be >= 1.0, got {breaker_trip_ratio}"
            )
        self.breaker_trip_ratio = breaker_trip_ratio
        self.breaker_tripped = False
        for server in servers:
            server.row_id = row_id

    def check_breaker(self) -> bool:
        """Evaluate the breaker against current power; returns tripped state.

        Once tripped the breaker latches (a real trip takes the whole row
        down and requires manual intervention); simulations treat a trip as
        a terminal failure of the run.
        """
        if not self.breaker_tripped:
            limit = self.breaker_trip_ratio * self.power_budget_watts
            if self.power_watts() > limit:
                self.breaker_tripped = True
        return self.breaker_tripped

    def set_over_provision_ratio(self, r_o: float) -> None:
        """Scale row and member-rack budgets together (Eq. 16)."""
        super().set_over_provision_ratio(r_o)
        for rack in self.racks:
            rack.set_over_provision_ratio(r_o)


__all__ = ["Row"]
