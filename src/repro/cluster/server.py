"""Server: resources, running tasks, DVFS state and the frozen flag.

A server hosts batch-job tasks placed by the scheduler. Freezing a server
(the Ampere control action) only flips an advisory flag -- running jobs are
untouched, which is the central SLA property of the paper's design. DVFS
frequency changes *do* affect running jobs (they slow down), and the server
notifies registered listeners so the scheduler can reschedule completion
events.

Since the vectorized-engine refactor a ``Server`` is a *thin view*: all
dynamic state (utilization, frequency, flags, the power cache) lives in a
:class:`~repro.cluster.state.ClusterState` slot, and the attributes below
are properties over that slot. Builders pass a shared store so whole rows
become contiguous array slices; a standalone ``Server()`` (tests, ad-hoc
fixtures) silently gets a private single-slot store and behaves exactly as
before.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.cluster.power import PowerModelParams, server_power_watts
from repro.cluster.state import ClusterState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.workload.job import Job

FrequencyListener = Callable[["Server", float, float], None]


class Server:
    """A single simulated server.

    Parameters
    ----------
    server_id:
        Unique integer id within the data center. The controlled-experiment
        harness splits servers into groups by the parity of this id,
        mirroring the paper's setup (Section 4.1.2).
    cores / memory_gb:
        Schedulable resource capacities.
    power_params:
        Parameters of the utilization-to-power model.
    background_utilization:
        Constant utilization consumed by system daemons; keeps an idle
        production server above the model's idle floor, matching Figure 4's
        ~0.70-of-rated floor for drained servers.
    state:
        The columnar store this server registers with. ``None`` (the
        default) creates a private single-slot store, preserving the
        standalone-object behavior.
    """

    def __init__(
        self,
        server_id: int,
        cores: int = 16,
        memory_gb: float = 64.0,
        power_params: PowerModelParams = PowerModelParams(),
        background_utilization: float = 0.05,
        rack_id: int = -1,
        row_id: int = -1,
        state: Optional[ClusterState] = None,
    ) -> None:
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        if memory_gb <= 0:
            raise ValueError(f"memory_gb must be positive, got {memory_gb}")
        if not 0.0 <= background_utilization < 1.0:
            raise ValueError(
                f"background_utilization must be in [0, 1), got {background_utilization}"
            )
        self.server_id = server_id
        self.rack_id = rack_id
        self.row_id = row_id
        self.cores = cores
        self.memory_gb = memory_gb
        self.power_params = power_params
        self.background_utilization = background_utilization

        self._state = state if state is not None else ClusterState(capacity=1)
        self._index = self._state.add_server(
            server_id, cores, memory_gb, power_params, background_utilization
        )

        self.tasks: Dict[int, "Job"] = {}
        self.frequency_listeners: List[FrequencyListener] = []

    # ------------------------------------------------------------------
    # State-slot views
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        return bool(self._state.frozen[self._index])

    @frozen.setter
    def frozen(self, value: bool) -> None:
        self._state.frozen[self._index] = value

    @property
    def failed(self) -> bool:
        return bool(self._state.failed[self._index])

    @failed.setter
    def failed(self, value: bool) -> None:
        self._state.failed[self._index] = value

    @property
    def powered_off(self) -> bool:
        return bool(self._state.powered_off[self._index])

    @powered_off.setter
    def powered_off(self, value: bool) -> None:
        self._state.powered_off[self._index] = value

    @property
    def frequency(self) -> float:
        return float(self._state.frequency[self._index])

    @frequency.setter
    def frequency(self, value: float) -> None:
        self._state.frequency[self._index] = value

    @property
    def used_cores(self) -> float:
        return float(self._state.used_cores[self._index])

    @used_cores.setter
    def used_cores(self, value: float) -> None:
        self._state.used_cores[self._index] = value

    @property
    def used_memory_gb(self) -> float:
        return float(self._state.used_memory_gb[self._index])

    @used_memory_gb.setter
    def used_memory_gb(self, value: float) -> None:
        self._state.used_memory_gb[self._index] = value

    @property
    def jobs_started(self) -> int:
        return int(self._state.jobs_started[self._index])

    @jobs_started.setter
    def jobs_started(self, value: int) -> None:
        self._state.jobs_started[self._index] = value

    @property
    def jobs_completed(self) -> int:
        return int(self._state.jobs_completed[self._index])

    @jobs_completed.setter
    def jobs_completed(self, value: int) -> None:
        self._state.jobs_completed[self._index] = value

    @property
    def tenant_id(self) -> int:
        """Tenant ordinal tag (0 = untenanted; see ClusterState.set_tenant)."""
        return int(self._state.tenant_ids[self._index])

    @tenant_id.setter
    def tenant_id(self, value: int) -> None:
        self._state.set_tenant(self._index, int(value))

    def _invalidate_power(self) -> None:
        self._state.power_valid[self._index] = False

    # ------------------------------------------------------------------
    # Resource accounting
    # ------------------------------------------------------------------
    @property
    def free_cores(self) -> float:
        return self.cores - self.used_cores

    @property
    def free_memory_gb(self) -> float:
        return self.memory_gb - self.used_memory_gb

    def can_fit(self, cores: float, memory_gb: float) -> bool:
        """Whether a task with the given demands fits right now."""
        return (
            self.used_cores + cores <= self.cores + 1e-9
            and self.used_memory_gb + memory_gb <= self.memory_gb + 1e-9
        )

    def add_task(self, job: "Job") -> None:
        """Attach a placed job's resource demand to this server."""
        if job.job_id in self.tasks:
            raise ValueError(f"job {job.job_id} already running on server {self.server_id}")
        if not self.can_fit(job.cores, job.memory_gb):
            raise ValueError(
                f"job {job.job_id} does not fit on server {self.server_id}: "
                f"needs {job.cores}c/{job.memory_gb}g, "
                f"free {self.free_cores:.1f}c/{self.free_memory_gb:.1f}g"
            )
        self.tasks[job.job_id] = job
        self.used_cores += job.cores
        self.used_memory_gb += job.memory_gb
        self.jobs_started += 1
        self._invalidate_power()

    def remove_task(self, job: "Job") -> None:
        """Release a finished (or killed) job's resources."""
        if job.job_id not in self.tasks:
            raise KeyError(f"job {job.job_id} not running on server {self.server_id}")
        del self.tasks[job.job_id]
        self.used_cores -= job.cores
        self.used_memory_gb -= job.memory_gb
        # Guard against float drift accumulating into tiny negatives.
        if self.used_cores < 1e-9:
            self.used_cores = 0.0
        if self.used_memory_gb < 1e-9:
            self.used_memory_gb = 0.0
        self.jobs_completed += 1
        self._invalidate_power()

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    @property
    def utilization(self) -> float:
        """Fraction of cores busy, including the background daemons."""
        task_util = self.used_cores / self.cores
        return min(1.0, self.background_utilization + task_util)

    def power_watts(self) -> float:
        """Instantaneous true power draw (no measurement noise).

        A failed or powered-off server draws nothing (its PSU is off or
        the machine is pulled for repair). Power is read every capping
        tick (seconds) but changes only on task placement/completion or a
        DVFS step, so it is cached -- in the shared store, where batched
        mask mutations invalidate it for object-path readers too.
        """
        state, i = self._state, self._index
        if state.failed[i] or state.powered_off[i]:
            return 0.0
        if not state.power_valid[i]:
            state.power_cache[i] = server_power_watts(
                self.power_params, self.utilization, self.frequency
            )
            state.power_valid[i] = True
        return float(state.power_cache[i])

    @property
    def rated_watts(self) -> float:
        return self.power_params.rated_watts

    # ------------------------------------------------------------------
    # Control surfaces
    # ------------------------------------------------------------------
    def freeze(self) -> None:
        """Advise the scheduler to stop placing new jobs here.

        Idempotent; running jobs are unaffected (the paper's key property).
        """
        self.frozen = True

    def unfreeze(self) -> None:
        """Make the server schedulable again. Idempotent."""
        self.frozen = False

    def power_off(self) -> None:
        """Enter a PowerNap-style off state. Only valid when idle --
        consolidation baselines never migrate running work."""
        if self.tasks:
            raise RuntimeError(
                f"cannot power off server {self.server_id}: {len(self.tasks)} "
                "tasks are running"
            )
        self.powered_off = True
        self._invalidate_power()

    def power_on(self) -> None:
        """Return from the off state, idle and at full frequency."""
        self.powered_off = False
        self.frequency = 1.0
        self._invalidate_power()

    def fail(self) -> None:
        """Mark the machine down. The scheduler is responsible for killing
        and resubmitting its tasks (see ``OmegaScheduler.fail_server``).

        Losing power also loses the DVFS state: the machine will POST at
        full frequency, so the flag is cleared here (directly -- there are
        no running jobs left to re-time, and listeners must not observe a
        phantom "uncap" on a dark machine). Without this, a server that
        failed while capped kept ``is_capped`` and leaked capped-time
        accounting for as long as it stayed dark. The vectorized
        equivalent is :meth:`ClusterState.fail_servers`, which applies the
        same flag+frequency+cache transition as a mask.
        """
        self.failed = True
        self.frequency = 1.0
        self._invalidate_power()

    def repair(self) -> None:
        """Bring the machine back, empty and at full frequency."""
        self.failed = False
        self.frequency = 1.0
        self._invalidate_power()

    def set_frequency(self, frequency: float) -> None:
        """Change the DVFS frequency multiplier and notify listeners.

        Listeners (the scheduler's completion bookkeeping, interactive
        services) receive ``(server, old_frequency, new_frequency)``.
        """
        if not 0.0 < frequency <= 1.0:
            raise ValueError(f"frequency must be in (0, 1], got {frequency}")
        if frequency == self.frequency:
            return
        old = self.frequency
        self.frequency = frequency
        self._invalidate_power()
        for listener in self.frequency_listeners:
            listener(self, old, frequency)

    @property
    def is_capped(self) -> bool:
        return self.frequency < 1.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "frozen" if self.frozen else "active"
        return (
            f"Server(id={self.server_id}, {state}, f={self.frequency:.2f}, "
            f"util={self.utilization:.2f}, tasks={len(self.tasks)})"
        )


__all__ = ["Server", "FrequencyListener"]
