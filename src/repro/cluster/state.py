"""Struct-of-arrays cluster state store: the single source of truth.

Facility-scale experiments (10k-100k servers) cannot afford a Python
object per hot-path read: one monitor sweep over 100k ``Server`` objects
costs tens of milliseconds of attribute chasing before any physics
happens. :class:`ClusterState` keeps every server's dynamic state
(utilization, DVFS frequency, frozen/failed/energized flags, cached
power) in dense NumPy columns; :class:`~repro.cluster.server.Server`,
:class:`~repro.cluster.row.Row` and the other ``ServerGroup`` layers are
thin views over slots in one shared store, so the established object API
is unchanged at its seams while the three hot loops -- power
aggregation, the monitor sweep, and IPMI sampling -- collapse into array
expressions.

Backend contract
----------------
Both engine backends read and write the *same* store; the switch only
selects how the hot loops traverse it:

- ``object``: the historical per-server Python loops (the reference
  path, bit-identical to the pre-vectorization releases).
- ``vectorized``: NumPy expressions over the same columns.

The two backends are required to produce **byte-identical trajectories**
(see ``tests/test_backend_equivalence.py``). Three numerical contracts
make that possible:

1. *Elementwise power* replicates the scalar op order of
   :func:`~repro.cluster.power.server_power_watts` exactly. ``x ** e``
   on a float64 array is bit-identical to CPython's scalar ``**`` for
   the exponents used by real SKUs (0.0, 1.0, 2.0 -- both route to a
   correctly-rounded pow); any other exponent takes an exact per-element
   scalar fallback rather than NumPy's SIMD pow, which is *not*
   correctly rounded.
2. *Aggregation* uses ``cumsum()[-1]``, whose strictly sequential
   left-to-right additions match Python's built-in ``sum`` bit-for-bit
   (``np.sum``'s pairwise reduction does not).
3. *RNG batching*: ``Generator.random(n)`` / ``standard_normal(n)``
   consume the underlying bit stream exactly like ``n`` scalar draws,
   so batched noise is draw-order-compatible by construction.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.power import PowerModelParams

#: Recognized engine backends.
BACKENDS = ("object", "vectorized")

#: Environment variable consulted when no explicit backend is given.
#: An env var (not a module global) so parallel campaign workers inherit
#: the choice regardless of the multiprocessing start method.
BACKEND_ENV_VAR = "REPRO_ENGINE_BACKEND"

#: Process-wide default installed by harnesses (e.g. the pytest
#: ``--engine-backend`` option). ``None`` defers to the environment.
DEFAULT_BACKEND: Optional[str] = None

#: Exponents for which NumPy's vectorized ``**`` is bit-identical to
#: CPython's scalar ``**`` (verified: both are correctly rounded there).
_NUMPY_EXACT_EXPONENTS = (0.0, 1.0, 2.0)


def resolve_backend(value: Optional[str] = None) -> str:
    """Resolve an engine backend: explicit > default > env > ``object``."""
    resolved = value or DEFAULT_BACKEND or os.environ.get(BACKEND_ENV_VAR) or "object"
    if resolved not in BACKENDS:
        raise ValueError(
            f"engine backend must be one of {BACKENDS}, got {resolved!r}"
        )
    return resolved


def set_default_backend(value: Optional[str]) -> Optional[str]:
    """Install the process-wide default backend; returns the previous one."""
    global DEFAULT_BACKEND
    if value is not None and value not in BACKENDS:
        raise ValueError(f"engine backend must be one of {BACKENDS}, got {value!r}")
    previous = DEFAULT_BACKEND
    DEFAULT_BACKEND = value
    return previous


def _exact_pow(base: np.ndarray, exponent: float) -> np.ndarray:
    """``base ** exponent`` with CPython scalar-`**` bit semantics."""
    if exponent == 1.0:
        return base
    if exponent in _NUMPY_EXACT_EXPONENTS:
        return base**exponent
    # Exotic exponent: NumPy's SIMD pow may differ in the last ulp from
    # libm; fall back to exact scalar semantics (rare SKUs only).
    return np.array([b**exponent for b in base.tolist()], dtype=np.float64)


class ClusterState:
    """Dense columnar state for a set of servers.

    Servers register at construction via :meth:`add_server` and receive a
    stable integer slot. Columns grow by doubling; references to column
    arrays must therefore be re-read from the store after registration
    (views never cache columns across ``add_server`` calls).

    Columns
    -------
    Static per-server parameters (written once at registration):
    ``server_ids``, ``cores``, ``memory_gb``, ``background_utilization``,
    ``idle_watts``, ``dynamic_watts``, ``rated_watts``, ``util_exp``,
    ``freq_exp``.

    Dynamic state (the authoritative values behind ``Server`` fields):
    ``used_cores``, ``used_memory_gb``, ``frequency``, ``frozen``,
    ``failed``, ``powered_off``, ``jobs_started``, ``jobs_completed``.

    Derived cache: ``power_cache`` (watts) valid where ``power_valid``.
    Both backends share this cache, so a vectorized mask mutation (e.g.
    :meth:`fail_servers`) invalidates exactly what a per-object mutation
    would -- the capped-time accounting seam of PR 4 cannot reopen
    through batching.
    """

    _FLOAT_COLUMNS = (
        "cores",
        "memory_gb",
        "background_utilization",
        "idle_watts",
        "dynamic_watts",
        "rated_watts",
        "util_exp",
        "freq_exp",
        "used_cores",
        "used_memory_gb",
        "frequency",
        "power_cache",
    )
    _BOOL_COLUMNS = ("frozen", "failed", "powered_off", "power_valid")
    _INT_COLUMNS = ("server_ids", "jobs_started", "jobs_completed", "tenant_ids")

    def __init__(self, capacity: int = 8, backend: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.backend = resolve_backend(backend)
        self.n = 0
        for name in self._FLOAT_COLUMNS:
            setattr(self, name, np.zeros(capacity, dtype=np.float64))
        for name in self._BOOL_COLUMNS:
            setattr(self, name, np.zeros(capacity, dtype=bool))
        for name in self._INT_COLUMNS:
            setattr(self, name, np.zeros(capacity, dtype=np.int64))
        # Uniform-exponent fast path: ``None`` until the first server,
        # ``False`` once SKUs with differing exponents are mixed.
        self._uniform_util_exp: Optional[float] = None
        self._uniform_freq_exp: Optional[float] = None
        self._mixed_util_exp = False
        self._mixed_freq_exp = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return len(self.cores)

    def _grow(self, minimum: int) -> None:
        new_capacity = max(minimum, 2 * self.capacity)
        for name in self._FLOAT_COLUMNS + self._BOOL_COLUMNS + self._INT_COLUMNS:
            old = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=old.dtype)
            grown[: self.n] = old[: self.n]
            setattr(self, name, grown)

    def add_server(
        self,
        server_id: int,
        cores: float,
        memory_gb: float,
        power_params: "PowerModelParams",
        background_utilization: float,
    ) -> int:
        """Register one server; returns its slot index.

        Inputs are assumed validated by the caller (``Server.__init__``
        keeps its historical validation).
        """
        if self.n >= self.capacity:
            self._grow(self.n + 1)
        i = self.n
        self.server_ids[i] = server_id
        self.cores[i] = cores
        self.memory_gb[i] = memory_gb
        self.background_utilization[i] = background_utilization
        self.idle_watts[i] = power_params.idle_watts
        self.dynamic_watts[i] = power_params.dynamic_watts
        self.rated_watts[i] = power_params.rated_watts
        self.util_exp[i] = power_params.utilization_exponent
        self.freq_exp[i] = power_params.frequency_power_exponent
        self.frequency[i] = 1.0
        self._note_exponent(power_params)
        self.n += 1
        return i

    def _note_exponent(self, power_params: "PowerModelParams") -> None:
        ue = float(power_params.utilization_exponent)
        fe = float(power_params.frequency_power_exponent)
        if self._uniform_util_exp is None:
            self._uniform_util_exp = ue
        elif self._uniform_util_exp != ue:
            self._mixed_util_exp = True
        if self._uniform_freq_exp is None:
            self._uniform_freq_exp = fe
        elif self._uniform_freq_exp != fe:
            self._mixed_freq_exp = True

    # ------------------------------------------------------------------
    # Vectorized math (the hot loops)
    # ------------------------------------------------------------------
    def utilization_of(self, indices: np.ndarray) -> np.ndarray:
        """Per-server utilization, identical to ``Server.utilization``."""
        task_util = self.used_cores[indices] / self.cores[indices]
        return np.minimum(1.0, self.background_utilization[indices] + task_util)

    def _pow_column(
        self,
        base: np.ndarray,
        exponents: np.ndarray,
        uniform: Optional[float],
        mixed: bool,
    ) -> np.ndarray:
        if not mixed and uniform is not None:
            return _exact_pow(base, uniform)
        out = np.empty_like(base)
        for exponent in np.unique(exponents):
            mask = exponents == exponent
            out[mask] = _exact_pow(base[mask], float(exponent))
        return out

    def server_powers(self, indices: np.ndarray) -> np.ndarray:
        """True power draw per server, bit-identical to the scalar model.

        Replicates the op order of
        :func:`~repro.cluster.power.server_power_watts`:
        ``idle + (dynamic * util**ue) * freq**fe`` with dark (failed or
        powered-off) servers drawing exactly 0.0 W. The shared
        ``power_cache`` is *not* consulted: recomputation is cheaper than
        a gather-and-merge and yields the same bits (power is a pure
        function of the state columns).
        """
        util = self.utilization_of(indices)
        u_pow = self._pow_column(
            util, self.util_exp[indices], self._uniform_util_exp, self._mixed_util_exp
        )
        f_pow = self._pow_column(
            self.frequency[indices],
            self.freq_exp[indices],
            self._uniform_freq_exp,
            self._mixed_freq_exp,
        )
        powers = self.idle_watts[indices] + self.dynamic_watts[indices] * u_pow * f_pow
        dark = self.failed[indices] | self.powered_off[indices]
        if dark.any():
            powers = powers.copy() if powers.base is not None else powers
            powers[dark] = 0.0
        return powers

    def total_power(self, indices: np.ndarray) -> float:
        """Aggregate power with Python-``sum`` bit semantics.

        ``cumsum`` adds strictly left to right, matching the object
        backend's ``sum(s.power_watts() for s in servers)`` bit-for-bit;
        ``np.sum``'s pairwise tree would differ in the last ulp.
        """
        powers = self.server_powers(indices)
        if powers.size == 0:
            return 0.0
        return float(powers.cumsum()[-1])

    def live_mask(self, indices: np.ndarray) -> np.ndarray:
        """Servers that are neither failed nor powered off."""
        return ~(self.failed[indices] | self.powered_off[indices])

    def capped_mask(self, indices: np.ndarray) -> np.ndarray:
        """Servers below full DVFS frequency (``Server.is_capped``)."""
        return self.frequency[indices] < 1.0

    def frozen_count(self, indices: np.ndarray) -> int:
        return int(np.count_nonzero(self.frozen[indices]))

    # ------------------------------------------------------------------
    # Vectorized mutations
    # ------------------------------------------------------------------
    def invalidate_power(self, indices) -> None:
        """Drop cached power for the given slots (scalar index or array)."""
        self.power_valid[indices] = False

    def fail_servers(self, indices) -> None:
        """Mask-apply ``Server.fail()`` semantics to many servers at once.

        Mirrors the scalar path exactly: the machine goes dark *and*
        loses its DVFS state (it will POST at full frequency), so a
        capped server that fails mid-tick stops accruing capped time in
        either backend. Listeners are not notified -- there are no
        running jobs left to re-time on a dark machine, and the caller
        (scheduler/injector) owns the kill-and-resubmit bookkeeping.
        """
        self.failed[indices] = True
        self.frequency[indices] = 1.0
        self.power_valid[indices] = False

    def repair_servers(self, indices) -> None:
        """Mask-apply ``Server.repair()``: back, empty, full frequency."""
        self.failed[indices] = False
        self.frequency[indices] = 1.0
        self.power_valid[indices] = False

    def set_frozen(self, indices, frozen: bool) -> None:
        """Mask-apply freeze/unfreeze (power-neutral, cache untouched)."""
        self.frozen[indices] = frozen

    def set_tenant(self, indices, tenant_id: int) -> None:
        """Tag slots with a tenant ordinal (0 = untenanted, the default).

        Tenant ids are 1-based positions in the run's
        :class:`~repro.tenancy.TenancyConfig` tenant order; the mapping
        back to names lives with the config, keeping the hot columns
        free of Python objects. Tagging is observational only -- no hot
        loop branches on it -- so writes never invalidate power.
        """
        if tenant_id < 0:
            raise ValueError(f"tenant_id must be non-negative, got {tenant_id}")
        self.tenant_ids[indices] = tenant_id

    def tenant_counts(self, indices: np.ndarray) -> "np.ndarray":
        """Occurrences of each tenant ordinal among ``indices`` (bincount)."""
        return np.bincount(self.tenant_ids[indices])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Total bytes held by the state columns (capacity included)."""
        return int(
            sum(
                getattr(self, name).nbytes
                for name in (
                    self._FLOAT_COLUMNS + self._BOOL_COLUMNS + self._INT_COLUMNS
                )
            )
        )

    def bytes_per_server(self) -> float:
        """Column bytes per registered server (the scaling-gate metric)."""
        return self.nbytes / self.n if self.n else 0.0

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClusterState(n={self.n}, capacity={self.capacity}, "
            f"backend={self.backend!r}, {self.nbytes / 1024:.0f} KiB)"
        )


def shared_state_of(
    servers: Sequence,
) -> Tuple[Optional[ClusterState], Optional[np.ndarray]]:
    """The store and slot indices shared by ``servers``, if they share one.

    Groups assembled from servers of different stores (ad-hoc test
    fixtures) get ``(None, None)`` and fall back to the object path
    regardless of the configured backend.
    """
    if not servers:
        return None, None
    first = servers[0]
    state = getattr(first, "_state", None)
    if state is None:
        return None, None
    indices: List[int] = []
    for server in servers:
        if getattr(server, "_state", None) is not state:
            return None, None
        indices.append(server._index)
    return state, np.asarray(indices, dtype=np.intp)


__all__ = [
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "ClusterState",
    "resolve_backend",
    "set_default_backend",
    "shared_state_of",
]
