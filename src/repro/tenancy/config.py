"""Tenant model: SLA classes, shares, entitlements and builtin mixes.

A :class:`TenantSpec` names one tenant, its SLA class and its *share* --
the fraction of the row's capacity (servers and workload) the tenant is
entitled to. A :class:`TenancyConfig` is an ordered set of tenants plus
the freeze-fairness policy to run (``fair`` or the tenancy-``blind``
baseline used as the A/B control arm).

Fairness weights combine the share with the SLA class's *freeze
tolerance*: a ``critical`` tenant tolerates a quarter of its
share-proportional frozen time, ``batch`` tolerates double. The
fairness-aware policies target frozen time proportional to
``share * tolerance``, so normalized frozen time (frozen / weight) comes
out equal across tenants -- that is what Jain's index is computed on.

Everything here is a pure function of its inputs: server-to-tenant
assignment consumes no RNG, so enabling tenancy never perturbs any other
random stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Tuple

#: recognized SLA classes, most to least freeze-averse
SLA_CLASSES = ("critical", "standard", "batch")

#: how much frozen time an SLA class tolerates, relative to its share
#: (multiplied into the fairness weight: critical tenants should absorb
#: a quarter of their share-proportional frozen time, batch double)
SLA_FREEZE_TOLERANCE = {"critical": 0.25, "standard": 1.0, "batch": 2.0}

#: freeze-selection policies a tenancy-enabled run can use ("blind" is
#: the tenancy-ignorant baseline, the control arm of the A/B)
TENANCY_POLICIES = ("fair", "blind")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a name, an SLA class and a capacity share."""

    name: str
    sla: str = "standard"
    share: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or "=" in self.name or "," in self.name:
            raise ValueError(f"invalid tenant name {self.name!r}")
        if self.sla not in SLA_CLASSES:
            raise ValueError(
                f"unknown SLA class {self.sla!r}; expected one of {SLA_CLASSES}"
            )
        if self.share <= 0:
            raise ValueError(f"share must be positive, got {self.share}")

    @property
    def freeze_weight(self) -> float:
        """Fairness weight: share scaled by the SLA freeze tolerance."""
        return self.share * SLA_FREEZE_TOLERANCE[self.sla]


@dataclass(frozen=True)
class TenancyConfig:
    """An ordered tenant mix plus the freeze-fairness policy to apply."""

    tenants: Tuple[TenantSpec, ...] = field(default_factory=tuple)
    #: "fair" runs the weighted max-min freeze policy; "blind" keeps the
    #: paper's power-ordered selection but still tags and accounts per
    #: tenant (the A/B baseline)
    policy: str = "fair"

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        if not self.tenants:
            raise ValueError("tenancy needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        if self.policy not in TENANCY_POLICIES:
            raise ValueError(
                f"unknown tenancy policy {self.policy!r}; "
                f"expected one of {TENANCY_POLICIES}"
            )

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.tenants)

    def spec(self, name: str) -> TenantSpec:
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        raise KeyError(f"unknown tenant {name!r}")

    def weights(self) -> Dict[str, float]:
        """Fairness weight per tenant (share x SLA freeze tolerance)."""
        return {t.name: t.freeze_weight for t in self.tenants}

    def entitlements(self) -> Dict[str, float]:
        """Share of capacity per tenant, normalized to sum to 1."""
        total = sum(t.share for t in self.tenants)
        return {t.name: t.share / total for t in self.tenants}


def assign_to_tenants(
    items: Sequence[Hashable], config: TenancyConfig
) -> Dict[Hashable, str]:
    """Deterministic share-weighted interleave of ``items`` over tenants.

    Walks ``items`` in the given order and hands each to the tenant with
    the lowest filled fraction of its share (ties broken by declared
    tenant order), so any prefix of the assignment is as close to the
    share proportions as integer counts allow. Used for servers (by
    sorted id) and fleet rows (by position); pure and RNG-free.
    """
    counts = {t.name: 0 for t in config.tenants}
    order = {t.name: i for i, t in enumerate(config.tenants)}
    shares = {t.name: t.share for t in config.tenants}
    assignment: Dict[Hashable, str] = {}
    for item in items:
        name = min(
            counts,
            key=lambda n: ((counts[n] + 1) / shares[n], order[n]),
        )
        counts[name] += 1
        assignment[item] = name
    return assignment


def builtin_mixes() -> Dict[str, TenancyConfig]:
    """Named tenant mixes selectable from the CLI (``--tenants``)."""
    return {
        # The representative facility: a small latency-critical tenant,
        # a standard production tenant and an opportunistic batch tier.
        "three-tier": TenancyConfig(
            tenants=(
                TenantSpec("alpha", sla="critical", share=0.2),
                TenantSpec("bravo", sla="standard", share=0.5),
                TenantSpec("charlie", sla="batch", share=0.3),
            )
        ),
        # Two equal standard tenants: fairness should be trivially even.
        "even-pair": TenancyConfig(
            tenants=(
                TenantSpec("left", sla="standard", share=0.5),
                TenantSpec("right", sla="standard", share=0.5),
            )
        ),
        # Maximum SLA contrast at equal shares: the blind policy freezes
        # both tenants alike while the weights differ 8x, so this mix
        # shows the largest Jain-index delta in the A/B.
        "critical-batch": TenancyConfig(
            tenants=(
                TenantSpec("prod", sla="critical", share=0.5),
                TenantSpec("backfill", sla="batch", share=0.5),
            )
        ),
    }


__all__ = [
    "SLA_CLASSES",
    "SLA_FREEZE_TOLERANCE",
    "TENANCY_POLICIES",
    "TenancyConfig",
    "TenantSpec",
    "assign_to_tenants",
    "builtin_mixes",
]
