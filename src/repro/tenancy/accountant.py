"""Per-tenant accounting of control impact (frozen time, shed actions).

The accountant is a passive listener on the scheduler's control stream:
``freeze`` opens a per-server interval, ``unfreeze`` closes it, ``shed``
counts against the server's tenant. It consumes no randomness and never
schedules events, so attaching it leaves trajectories byte-identical --
which is what lets the tenancy-blind A/B arm be measured with the exact
same instrument as the fair arm.

At collection time, :meth:`TenancyAccountant.stats_snapshot` closes any
still-open intervals at the current simulation time and rolls the ledger
up into a picklable :class:`TenancyStats`, including Jain's index on
weight-normalized frozen time (see :mod:`repro.telemetry.fairness`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

from repro.telemetry import Telemetry, jains_index
from repro.tenancy.config import TenancyConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine


@dataclass(frozen=True)
class TenantStats:
    """One tenant's measured control impact over a run."""

    name: str
    sla: str
    share: float
    n_servers: int
    #: server-minutes this tenant's servers spent frozen
    frozen_server_minutes: float
    #: freeze commands that landed on this tenant's servers
    freeze_events: int
    #: emergency shed actions that hit this tenant's servers
    shed_events: int
    #: frozen server-minutes divided by the fairness weight -- the
    #: quantity the fair policy equalizes and Jain's index is read on
    normalized_frozen: float


@dataclass(frozen=True)
class TenancyStats:
    """Roll-up of a tenancy-enabled run (picklable, serializable)."""

    policy: str
    jain_index: float
    tenants: Tuple[TenantStats, ...]

    @property
    def total_frozen_server_minutes(self) -> float:
        return sum(t.frozen_server_minutes for t in self.tenants)

    @property
    def total_shed_events(self) -> int:
        return sum(t.shed_events for t in self.tenants)


class TenancyAccountant:
    """Attribute freeze/shed control actions to tenants as they happen."""

    def __init__(
        self,
        engine: "Engine",
        config: TenancyConfig,
        tenant_of: Mapping[int, str],
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.tenant_of = dict(tenant_of)
        telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self._frozen_seconds: Dict[str, float] = {
            name: 0.0 for name in config.names
        }
        self._freeze_events: Dict[str, int] = {name: 0 for name in config.names}
        self._shed_events: Dict[str, int] = {name: 0 for name in config.names}
        self._open_since: Dict[int, float] = {}
        self._n_servers: Dict[str, int] = {name: 0 for name in config.names}
        for tenant in self.tenant_of.values():
            if tenant in self._n_servers:
                self._n_servers[tenant] += 1
        self._freeze_counters = {
            name: telemetry.counter(
                "repro_tenant_freeze_events_total",
                "freeze commands attributed to a tenant's servers",
                labels={"tenant": name},
            )
            for name in config.names
        }
        self._shed_counters = {
            name: telemetry.counter(
                "repro_tenant_shed_events_total",
                "emergency shed actions attributed to a tenant's servers",
                labels={"tenant": name},
            )
            for name in config.names
        }

    def resolve(self, server_id: int) -> str:
        """Tenant name owning ``server_id`` (``"-"`` when untagged)."""
        return self.tenant_of.get(server_id, "-")

    # ------------------------------------------------------------------
    # scheduler.control_listeners signature: (action, server_id)
    # ------------------------------------------------------------------
    def on_control_event(self, action: str, server_id: int) -> None:
        tenant = self.tenant_of.get(server_id)
        if tenant is None:
            return
        if action == "freeze":
            self._open_since[server_id] = self.engine.now
            self._freeze_events[tenant] += 1
            self._freeze_counters[tenant].inc()
        elif action == "unfreeze":
            opened = self._open_since.pop(server_id, None)
            if opened is not None:
                self._frozen_seconds[tenant] += self.engine.now - opened
        elif action == "shed":
            self._shed_events[tenant] += 1
            self._shed_counters[tenant].inc()

    # ------------------------------------------------------------------
    def frozen_server_seconds(self, at: Optional[float] = None) -> Dict[str, float]:
        """Per-tenant frozen server-seconds, counting open intervals to
        ``at`` (default: the current simulation time)."""
        now = self.engine.now if at is None else float(at)
        totals = dict(self._frozen_seconds)
        for server_id, opened in self._open_since.items():
            tenant = self.tenant_of.get(server_id)
            if tenant is not None and now > opened:
                totals[tenant] += now - opened
        return totals

    def stats_snapshot(self) -> TenancyStats:
        """Roll the ledger up (open freeze intervals counted to now)."""
        weights = self.config.weights()
        seconds = self.frozen_server_seconds()
        tenants = []
        for spec in self.config.tenants:
            minutes = seconds[spec.name] / 60.0
            tenants.append(
                TenantStats(
                    name=spec.name,
                    sla=spec.sla,
                    share=spec.share,
                    n_servers=self._n_servers[spec.name],
                    frozen_server_minutes=minutes,
                    freeze_events=self._freeze_events[spec.name],
                    shed_events=self._shed_events[spec.name],
                    normalized_frozen=minutes / weights[spec.name],
                )
            )
        return TenancyStats(
            policy=self.config.policy,
            jain_index=jains_index([t.normalized_frozen for t in tenants]),
            tenants=tuple(tenants),
        )


__all__ = ["TenancyAccountant", "TenancyStats", "TenantStats"]
