"""Weighted max-min (DRF-style) allocation of freeze quota over tenants.

The dominant resource of the power plane is frozen capacity: every
server-interval a tenant spends frozen is capacity it cannot use. The
fairness-aware freeze policy therefore runs a weighted max-min
allocation over *cumulative* per-tenant frozen time: each control tick's
freeze quota is handed out one server at a time to the tenant whose
normalized burden -- ``(cumulative + granted) / weight`` -- is lowest,
exactly the greedy DRF step with frozen-server-intervals as the single
dominant resource.

The greedy gives the two properties the tests pin down:

- **conservation**: the per-tenant counts always sum to the full quota
  (clamped only by total capacity);
- **envy-freeness up to one server**: after allocation, no tenant with
  spare capacity could take a server from another tenant without the
  donor ending up strictly better normalized than the recipient was
  before the transfer -- burdens are equalized to within one grant.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional, Sequence, Set

import numpy as np

from repro.core.policy import FreezePlan, FreezePolicy


def fair_freeze_counts(
    quota: int,
    order: Sequence[str],
    weights: Mapping[str, float],
    cumulative: Mapping[str, float],
    capacity: Mapping[str, int],
) -> Dict[str, int]:
    """Split a freeze quota across tenants by weighted max-min burden.

    Parameters
    ----------
    quota:
        Servers to freeze this tick (clamped to total capacity).
    order:
        Tenant names in declared order -- the deterministic tie-break.
    weights:
        Fairness weight per tenant (share x SLA freeze tolerance).
    cumulative:
        Frozen server-intervals each tenant has already absorbed.
    capacity:
        Freezable servers each tenant has available this tick.

    Returns
    -------
    dict
        Servers to freeze per tenant; ``sum(counts.values()) ==
        min(quota, sum(capacity.values()))``.
    """
    if quota < 0:
        raise ValueError(f"quota must be non-negative, got {quota}")
    counts = {name: 0 for name in order}
    quota = min(quota, sum(capacity.get(name, 0) for name in order))
    # One heap entry per tenant, keyed exactly like the naive greedy's
    # min() -- (normalized burden, declared rank). Only the granted
    # tenant's burden changes per step, so re-pushing just that entry
    # keeps every heap key current (O(quota log T) instead of
    # O(quota x T)).
    heap = [
        (cumulative.get(name, 0.0) / weights[name], rank, name)
        for rank, name in enumerate(order)
        if capacity.get(name, 0) > 0
    ]
    heapq.heapify(heap)
    for _ in range(quota):
        burden, rank, name = heapq.heappop(heap)
        counts[name] += 1
        if counts[name] < capacity.get(name, 0):
            heapq.heappush(
                heap,
                (
                    (cumulative.get(name, 0.0) + counts[name])
                    / weights[name],
                    rank,
                    name,
                ),
            )
    return counts


class FairShareFreezePolicy(FreezePolicy):
    """Tenancy-aware freeze selection for the controller's policy seam.

    Each tick, the target freeze count is divided across tenants by
    :func:`fair_freeze_counts` over the policy's own cumulative
    frozen-interval ledger; within a tenant, currently frozen servers
    are kept first (hysteresis) and new picks go hottest-first, matching
    the paper's cost argument. The cumulative ledger is plain state and
    pickles with the controller, so snapshots resume byte-identically.

    Servers missing from ``tenant_of`` are grouped under ``"-"`` with
    weight 1.0, so a partially tagged row still produces a full plan.
    """

    UNTENANTED = "-"

    def __init__(
        self,
        tenant_of: Mapping[int, str],
        weights: Mapping[str, float],
        order: Sequence[str],
    ) -> None:
        unknown = set(tenant_of.values()) - set(order)
        if unknown:
            raise ValueError(f"tenants missing from order: {sorted(unknown)}")
        bad = [n for n in order if weights.get(n, 0.0) <= 0.0]
        if bad:
            raise ValueError(f"tenants need positive weights: {bad}")
        self.tenant_of = dict(tenant_of)
        self.weights = dict(weights)
        self.order = tuple(order)
        #: frozen server-intervals granted so far, the max-min burden
        self.cumulative: Dict[str, float] = {name: 0.0 for name in order}
        # Per-tick tenant-ordinal cache: the server population of a row
        # is stable across control ticks, so the sid -> tenant ordinal
        # mapping is resolved once and reused while the sid vector
        # matches (plain arrays; pickles with the controller).
        self._cached_sids: Optional[np.ndarray] = None
        self._cached_ordinals: Optional[np.ndarray] = None

    def _full_order(self) -> List[str]:
        if self.UNTENANTED in self.order:
            return list(self.order)
        return list(self.order) + [self.UNTENANTED]

    def plan(
        self,
        server_powers: Dict[int, float],
        n_freeze: int,
        currently_frozen: Set[int],
        r_stable: float = 0.8,
    ) -> FreezePlan:
        if n_freeze < 0:
            raise ValueError(f"n_freeze must be non-negative, got {n_freeze}")
        if not 0.0 < r_stable <= 1.0:
            raise ValueError(f"r_stable must be in (0, 1], got {r_stable}")
        unknown = currently_frozen - server_powers.keys()
        if unknown:
            raise KeyError(
                f"frozen servers missing power readings: {sorted(unknown)}"
            )

        n_freeze = min(n_freeze, len(server_powers))
        if n_freeze == 0:
            return FreezePlan(
                to_freeze=frozenset(),
                to_unfreeze=frozenset(currently_frozen),
                new_frozen=frozenset(),
            )

        n = len(server_powers)
        sids = np.fromiter(server_powers.keys(), dtype=np.int64, count=n)
        if self._cached_sids is None or not np.array_equal(
            self._cached_sids, sids
        ):
            ordinal = {
                name: index
                for index, name in enumerate(self._full_order())
            }
            untenanted = ordinal[self.UNTENANTED]
            self._cached_ordinals = np.fromiter(
                (
                    ordinal.get(
                        self.tenant_of.get(int(sid), self.UNTENANTED),
                        untenanted,
                    )
                    for sid in sids
                ),
                dtype=np.int64,
                count=n,
            )
            self._cached_sids = sids
        ordinals = self._cached_ordinals
        powers = np.fromiter(
            server_powers.values(), dtype=np.float64, count=n
        )
        if currently_frozen:
            frozen_mask = np.isin(
                sids,
                np.fromiter(
                    currently_frozen,
                    dtype=np.int64,
                    count=len(currently_frozen),
                ),
            )
        else:
            frozen_mask = np.zeros(n, dtype=bool)
        # Keep-frozen-first is the hysteresis: a frozen server stays in
        # its tenant's slice while the tenant's quota covers it, so the
        # per-tenant churn profile mirrors the r_stable band's intent.
        # lexsort's last key is primary; the full key (frozen-first,
        # hottest-first, sid) is a total order, so the ranking matches
        # the object policy's tuple sort exactly.
        ranked = np.lexsort((sids, -powers, ~frozen_mask))
        ranked_sids = sids[ranked]
        ranked_ordinals = ordinals[ranked]
        order = self._full_order()
        weights = dict(self.weights)
        weights.setdefault(self.UNTENANTED, 1.0)
        per_tenant = np.bincount(ordinals, minlength=len(order))
        counts = fair_freeze_counts(
            n_freeze,
            order,
            weights,
            self.cumulative,
            {name: int(per_tenant[i]) for i, name in enumerate(order)},
        )
        picks: List[np.ndarray] = []
        for index, name in enumerate(order):
            take = counts.get(name, 0)
            if take:
                picks.append(
                    ranked_sids[ranked_ordinals == index][:take]
                )
                self.cumulative[name] = (
                    self.cumulative.get(name, 0.0) + take
                )
        new_frozen: Set[int] = (
            set(map(int, np.concatenate(picks))) if picks else set()
        )
        return FreezePlan(
            to_freeze=frozenset(new_frozen - currently_frozen),
            to_unfreeze=frozenset(currently_frozen - new_frozen),
            new_frozen=frozenset(new_frozen),
        )


__all__ = ["FairShareFreezePolicy", "fair_freeze_counts"]
