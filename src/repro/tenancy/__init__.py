"""``repro.tenancy`` -- multi-tenant power fairness.

The paper treats a row as anonymous batch capacity; real facilities
oversubscribe power across *tenants* with different SLAs, and a freeze
policy that ignores tenancy lets one tenant's servers absorb a
disproportionate share of frozen time. This subsystem introduces tenants
with SLA classes, power entitlements and weighted shares, and makes the
two allocation seams tenancy-aware:

- freeze victim selection (:class:`FairShareFreezePolicy`, plugging into
  the :class:`~repro.core.policy.FreezePolicy` seam of the controller)
  runs a weighted max-min allocation over cumulative per-tenant frozen
  time instead of a global power ordering;
- fleet budget reallocation (the ``fair`` policy in
  :mod:`repro.fleet.policy`) water-fills the facility budget across
  tenants' entitlements before dividing within each tenant's rows.

Tenancy is strictly opt-in: with ``TenancyConfig`` unset every code path
is bit-identical to the tenancy-blind baseline (proven by the golden
trajectories and ``tests/test_tenancy.py``).
"""

from repro.tenancy.accountant import (
    TenancyAccountant,
    TenancyStats,
    TenantStats,
)
from repro.tenancy.allocator import (
    FairShareFreezePolicy,
    fair_freeze_counts,
)
from repro.tenancy.config import (
    SLA_CLASSES,
    SLA_FREEZE_TOLERANCE,
    TENANCY_POLICIES,
    TenancyConfig,
    TenantSpec,
    assign_to_tenants,
    builtin_mixes,
)

__all__ = [
    "FairShareFreezePolicy",
    "SLA_CLASSES",
    "SLA_FREEZE_TOLERANCE",
    "TENANCY_POLICIES",
    "TenancyAccountant",
    "TenancyConfig",
    "TenancyStats",
    "TenantSpec",
    "TenantStats",
    "assign_to_tenants",
    "builtin_mixes",
    "fair_freeze_counts",
]
