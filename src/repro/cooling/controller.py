"""Workload-sensitive cooling controller on Ampere's statistical pattern.

Like Ampere, the controller runs every monitoring interval, reads only
the aggregated row power from the monitor, adds a conservative
one-interval demand margin E_t, and actuates a minimal interface. Every
tick it:

1. predicts the worst-case IT power for the next interval,
   ``Q = P_now * (1 + margin)`` with the margin from the same demand
   estimator family Ampere uses;
2. sets the supply setpoint as warm as the inlet limit allows (warmer
   supply = better chiller COP = less energy);
3. sets the airflow to the minimum that keeps the outlet under its limit
   at the predicted load, plus a small actuation margin, never below a
   floor fraction of maximum.

The baseline it is evaluated against is the standard static worst-case
configuration: coldest setpoint, airflow sized for the row's rated
power -- safe but maximally wasteful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.group import ServerGroup
from repro.cooling.thermal import CoolingUnit
from repro.core.demand import ConstantDemandEstimator, DemandEstimator
from repro.monitor.power_monitor import PowerMonitor
from repro.sim.engine import Engine
from repro.sim.events import EventPriority


@dataclass(frozen=True)
class CoolingControllerConfig:
    """Tunables of the cooling controller."""

    control_interval: float = 60.0
    #: extra airflow above the computed requirement
    airflow_margin: float = 0.10
    #: never run fans below this fraction of max (pressurization floor)
    min_airflow_fraction: float = 0.15
    #: safety gap kept between supply setpoint and the inlet limit
    inlet_margin_c: float = 1.0
    #: default relative one-interval power increase (E_t analogue)
    default_power_margin: float = 0.05

    def __post_init__(self) -> None:
        if self.control_interval <= 0:
            raise ValueError("control_interval must be positive")
        if self.airflow_margin < 0:
            raise ValueError("airflow_margin must be non-negative")
        if not 0.0 < self.min_airflow_fraction <= 1.0:
            raise ValueError("min_airflow_fraction must be in (0, 1]")
        if self.inlet_margin_c < 0:
            raise ValueError("inlet_margin_c must be non-negative")


class CoolingController:
    """Per-row workload-sensitive cooling control loop."""

    def __init__(
        self,
        engine: Engine,
        monitor: PowerMonitor,
        group: ServerGroup,
        unit: CoolingUnit,
        config: CoolingControllerConfig = CoolingControllerConfig(),
        demand_estimator: Optional[DemandEstimator] = None,
    ) -> None:
        self.engine = engine
        self.monitor = monitor
        self.group = group
        self.unit = unit
        self.config = config
        self.demand_estimator = (
            demand_estimator
            if demand_estimator is not None
            else ConstantDemandEstimator(config.default_power_margin)
        )
        self.ticks = 0

    def start(self, until: float, first_at: Optional[float] = None) -> None:
        self.engine.schedule_periodic(
            self.config.control_interval,
            EventPriority.CONTROLLER_TICK,
            self.tick,
            first_at=first_at,
            until=until,
        )

    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One control action, then account the interval's energy."""
        self.ticks += 1
        try:
            it_power = self.monitor.latest_power(self.group.name)
        except (KeyError, LookupError):
            it_power = self.group.rated_watts()  # no data yet: assume worst
        margin = self.demand_estimator.estimate(self.engine.now)
        predicted = it_power * (1.0 + max(0.0, margin))
        predicted = min(predicted, self.group.rated_watts())

        params = self.unit.params
        # Warmest safe setpoint maximizes chiller COP.
        supply = params.max_inlet_c - self.config.inlet_margin_c
        self.unit.set_supply_temperature(max(params.min_supply_c, supply))
        # Minimum airflow for the predicted load, plus margins and floor.
        required = self.unit.required_airflow(predicted)
        airflow = required * (1.0 + self.config.airflow_margin)
        airflow = max(airflow, params.max_airflow_m3s * self.config.min_airflow_fraction)
        airflow = min(airflow, params.max_airflow_m3s)
        self.unit.set_airflow(airflow)

        # Account the interval against the *actual* current power (the
        # violation check is what punishes a bad prediction).
        self.unit.evaluate(self.group.power_watts(), self.config.control_interval)
        self.monitor.db.write(
            f"cooling_power/{self.group.name}",
            self.engine.now,
            self.unit.cooling_power_watts(self.group.power_watts()),
        )


class StaticWorstCaseCooling:
    """Baseline: knobs fixed for the rated load, coldest setpoint."""

    def __init__(
        self,
        engine: Engine,
        group: ServerGroup,
        unit: CoolingUnit,
        interval: float = 60.0,
    ) -> None:
        self.engine = engine
        self.group = group
        self.unit = unit
        self.interval = interval
        unit.set_supply_temperature(unit.params.min_supply_c)
        required = unit.required_airflow(group.rated_watts()) * 1.10
        unit.set_airflow(
            min(max(required, unit.params.max_airflow_m3s * 0.15),
                unit.params.max_airflow_m3s)
        )

    def start(self, until: float, first_at: Optional[float] = None) -> None:
        self.engine.schedule_periodic(
            self.interval,
            EventPriority.CONTROLLER_TICK,
            self.tick,
            first_at=first_at,
            until=until,
        )

    def tick(self) -> None:
        self.unit.evaluate(self.group.power_watts(), self.interval)


__all__ = ["CoolingController", "CoolingControllerConfig", "StaticWorstCaseCooling"]
