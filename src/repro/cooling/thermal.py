"""Row-level thermal and cooling-power model.

A row's IT power is dissipated as heat into the cold-aisle air stream
supplied by a CRAH/CRAC unit. Steady-state energy balance over the air
stream:

    T_outlet = T_supply + Q / (rho * c_p * airflow)

with ``Q`` the row's IT power (W), ``airflow`` in m^3/s, and
``rho * c_p ~ 1200 J/(m^3 K)`` for air. The cooling unit spends power in
two places:

- **Fans**: cubic in airflow, ``P_fan = P_fan_max * (airflow/max)^3``.
- **Chiller**: ``P_chiller = Q / COP(T_supply)`` where the coefficient of
  performance improves with warmer supply air (the standard free-cooling
  economics), modelled as an affine function of the setpoint.

The operational constraints are ASHRAE-style: server inlet (== supply)
temperature at most ``max_inlet_c`` and outlet temperature at most
``max_outlet_c``. A *thermal violation* is one evaluation with the outlet
above the limit -- the cooling analogue of the paper's power violation.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Volumetric heat capacity of air, J / (m^3 * K).
AIR_RHO_CP = 1200.0


@dataclass(frozen=True)
class ThermalParams:
    """Physical parameters of one row's cooling unit."""

    max_airflow_m3s: float = 50.0
    fan_power_max_watts: float = 12_000.0
    #: COP(T_supply) = cop_base + cop_slope * (T_supply - cop_ref_c)
    cop_base: float = 3.5
    cop_slope: float = 0.12
    cop_ref_c: float = 15.0
    min_supply_c: float = 14.0
    max_inlet_c: float = 27.0
    max_outlet_c: float = 45.0
    #: First-order thermal time constant in seconds; 0 = steady-state
    #: (the air stream has little mass, but racks and containment have
    #: enough that sub-minute spikes are filtered -- enable for dynamic
    #: studies).
    thermal_time_constant_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_airflow_m3s <= 0:
            raise ValueError(f"max_airflow must be positive, got {self.max_airflow_m3s}")
        if self.fan_power_max_watts < 0:
            raise ValueError("fan_power_max_watts must be non-negative")
        if self.min_supply_c >= self.max_inlet_c:
            raise ValueError("min_supply_c must be below max_inlet_c")
        if self.max_inlet_c >= self.max_outlet_c:
            raise ValueError("max_inlet_c must be below max_outlet_c")
        if self.thermal_time_constant_s < 0:
            raise ValueError("thermal_time_constant_s must be non-negative")

    def cop(self, supply_c: float) -> float:
        """Chiller coefficient of performance at a supply setpoint."""
        return self.cop_base + self.cop_slope * (supply_c - self.cop_ref_c)


class CoolingUnit:
    """One row's cooling actuator: two knobs, a few readbacks.

    Mirrors Ampere's minimal interface philosophy: the controller may call
    :meth:`set_airflow` and :meth:`set_supply_temperature`, and read
    temperatures/power; nothing else about the cooling plant is exposed.
    """

    def __init__(self, params: ThermalParams = ThermalParams()) -> None:
        self.params = params
        self.airflow_m3s = params.max_airflow_m3s
        self.supply_c = params.min_supply_c
        self.thermal_violations = 0
        self.evaluations = 0
        self.cooling_energy_joules = 0.0
        #: dynamic outlet temperature; tracks steady state through the
        #: first-order lag when thermal_time_constant_s > 0
        self.outlet_c = params.min_supply_c

    # ------------------------------------------------------------------
    # Actuation
    # ------------------------------------------------------------------
    def set_airflow(self, airflow_m3s: float) -> None:
        if not 0.0 < airflow_m3s <= self.params.max_airflow_m3s + 1e-9:
            raise ValueError(
                f"airflow must be in (0, {self.params.max_airflow_m3s}], "
                f"got {airflow_m3s}"
            )
        self.airflow_m3s = min(airflow_m3s, self.params.max_airflow_m3s)

    def set_supply_temperature(self, supply_c: float) -> None:
        if not self.params.min_supply_c <= supply_c <= self.params.max_inlet_c:
            raise ValueError(
                f"supply temperature must be in "
                f"[{self.params.min_supply_c}, {self.params.max_inlet_c}], "
                f"got {supply_c}"
            )
        self.supply_c = supply_c

    # ------------------------------------------------------------------
    # Physics
    # ------------------------------------------------------------------
    def outlet_temperature_c(self, it_power_watts: float) -> float:
        """Hot-aisle temperature for the current knobs and IT load."""
        if it_power_watts < 0:
            raise ValueError(f"it_power_watts must be non-negative, got {it_power_watts}")
        return self.supply_c + it_power_watts / (AIR_RHO_CP * self.airflow_m3s)

    def fan_power_watts(self) -> float:
        ratio = self.airflow_m3s / self.params.max_airflow_m3s
        return self.params.fan_power_max_watts * ratio**3

    def chiller_power_watts(self, it_power_watts: float) -> float:
        return it_power_watts / self.params.cop(self.supply_c)

    def cooling_power_watts(self, it_power_watts: float) -> float:
        """Total cooling overhead for the current knob settings."""
        return self.fan_power_watts() + self.chiller_power_watts(it_power_watts)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def evaluate(self, it_power_watts: float, interval_seconds: float) -> float:
        """Account one interval: energy spent and violation check.

        With a thermal time constant configured, the observed outlet
        temperature lags the steady state through a first-order response
        (rack/containment thermal mass filters sub-interval spikes);
        otherwise the steady-state value is used directly. Returns the
        cooling power during the interval.
        """
        if interval_seconds <= 0:
            raise ValueError(f"interval must be positive, got {interval_seconds}")
        self.evaluations += 1
        power = self.cooling_power_watts(it_power_watts)
        self.cooling_energy_joules += power * interval_seconds
        steady = self.outlet_temperature_c(it_power_watts)
        tau = self.params.thermal_time_constant_s
        if tau > 0:
            import math

            decay = math.exp(-interval_seconds / tau)
            self.outlet_c = steady + (self.outlet_c - steady) * decay
        else:
            self.outlet_c = steady
        if self.outlet_c > self.params.max_outlet_c + 1e-9:
            self.thermal_violations += 1
        return power

    def required_airflow(self, it_power_watts: float) -> float:
        """Minimum airflow keeping the outlet at the limit for this load."""
        headroom = self.params.max_outlet_c - self.supply_c
        return it_power_watts / (AIR_RHO_CP * headroom)


__all__ = ["CoolingUnit", "ThermalParams", "AIR_RHO_CP"]
