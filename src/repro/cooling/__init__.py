"""Workload-sensitive cooling control (the paper's second future work).

Section 6: "we believe the simple statistical interface is a promising
design to connect the low-level data center infrastructure to the
higher-level software components ... We are building a workload-sensitive
cooling control system based on a similar interface."

This package builds that system on the same substrate: a row-level
thermal model (:mod:`repro.cooling.thermal`) and a controller
(:mod:`repro.cooling.controller`) that -- exactly like Ampere -- consumes
only the per-minute aggregated row power from the monitor, keeps a
conservative one-interval safety margin, and actuates through a minimal
two-knob interface (airflow, supply temperature).
"""

from repro.cooling.thermal import CoolingUnit, ThermalParams
from repro.cooling.controller import CoolingController, CoolingControllerConfig

__all__ = [
    "CoolingUnit",
    "ThermalParams",
    "CoolingController",
    "CoolingControllerConfig",
]
