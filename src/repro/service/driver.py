"""The real-time driver: one simulation thread, one command queue.

The batch harnesses promise byte-identical trajectories because exactly
one call stack mutates the engine. A live service must keep that promise
while an HTTP thread pool fields concurrent requests, so the driver
enforces a **single-writer** discipline:

- One background thread (the *sim thread*) owns the experiment. It is
  the only code that ever calls ``advance()``, touches cluster state, or
  reads live object graphs.
- Every observation and every act -- including reads -- is a
  :class:`_Command` posted to a queue and executed *on the sim thread*
  between ``advance()`` slices. HTTP threads block on a completion
  event and receive the result (or the raised exception). There are no
  locks around simulation state because there is no second reader.

Three pacing modes:

``manual``
    Simulated time moves only on explicit ``step`` commands. A
    manual-step service run issues exactly the same ``advance()``
    sequence a batch run would, so the trajectory is byte-identical to
    ``ControlledExperiment.run()`` (pinned in tests/test_service.py).
``realtime`` / ``accelerated``
    The sim thread tracks wall clock: after each slice it sleeps (in the
    command poll) until simulated time falls behind
    ``anchor + (wall - wall_anchor) * speedup`` again. ``speedup=1`` is
    real time; ``speedup=60`` plays one simulated hour per wall minute.

Long advances are cut into ``slice_seconds`` pieces, and *read-only*
commands are serviced between pieces, so observation latency stays
bounded by one slice even while a large step is in flight. Mutating
commands that arrive mid-advance are deferred, in order, to the next
slice boundary after the advance completes -- an act never lands inside
an ``advance()`` call, which is also what keeps every boundary
snapshot-safe.

Supervision hooks (PR 9): the command queue is *bounded* and overflow
raises :class:`DriverBusy` (the API maps it to ``429 Retry-After``); a
caller whose :meth:`_Command.wait` times out marks the command
*abandoned* so the sim thread skips its side effects instead of running
acts nobody is waiting for; the sim thread stamps a wall-clock
``heartbeat`` every loop iteration and every advance slice so the
supervisor's watchdog can tell a hung engine from an idle one; and at
each slice boundary the driver can hand a freshly encoded snapshot
frame to the supervisor (``on_auto_snapshot``) for durable, verified
checkpointing off-thread.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.service.harness import ExperimentHarness

logger = logging.getLogger(__name__)

#: default sim-seconds advanced per slice (one monitor sweep)
DEFAULT_SLICE_SECONDS = 60.0
#: default command-queue poll period for timed modes, in wall seconds
DEFAULT_POLL_SECONDS = 0.02
#: default bound on queued commands before submissions get DriverBusy
DEFAULT_QUEUE_CAPACITY = 64
#: default number of recent events kept for Last-Event-ID replay
DEFAULT_RING_SIZE = 512

MODES = ("manual", "realtime", "accelerated")


class DriverError(RuntimeError):
    """A driver command could not be executed."""


class DriverBusy(DriverError):
    """The command queue is full; retry after backing off."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DriverTimeout(DriverError):
    """A submitted command did not complete within its deadline."""


class _Command:
    """One closure to run on the sim thread, with a completion event."""

    __slots__ = ("fn", "readonly", "label", "done", "result", "error",
                 "abandoned")

    def __init__(self, fn: Callable[[], object], readonly: bool, label: str):
        self.fn = fn
        self.readonly = readonly
        self.label = label
        self.done = threading.Event()
        self.result: object = None
        self.error: Optional[BaseException] = None
        self.abandoned = False

    def run(self) -> None:
        if self.abandoned:
            # The waiter gave up; running the closure now would apply an
            # act nobody is watching (and nobody would WAL-ack).
            self.done.set()
            return
        try:
            self.result = self.fn()
        except BaseException as exc:  # delivered to the waiting caller
            self.error = exc
        finally:
            self.done.set()

    def wait(self, timeout: Optional[float]):
        if not self.done.wait(timeout):
            self.abandoned = True
            raise DriverTimeout(
                f"command {self.label!r} timed out after {timeout}s"
            )
        if self.error is not None:
            raise self.error
        return self.result


class _Subscription:
    """One SSE consumer: its event queue plus drop accounting."""

    __slots__ = ("name", "queue", "dropped")

    def __init__(self, name: str, maxsize: int) -> None:
        self.name = name
        self.queue: "queue.Queue[Tuple[Optional[int], dict]]" = queue.Queue(
            maxsize=maxsize
        )
        self.dropped = 0

    def get(self, timeout: Optional[float] = None):
        return self.queue.get(timeout=timeout)


class EventBus:
    """Fan-out of driver/engine events to SSE subscribers.

    Publishing never blocks the sim thread: a subscriber whose queue is
    full loses the event -- counted per subscriber (and, when a metrics
    registry is attached, as the labeled
    ``repro_service_events_dropped_total`` counter) rather than stalling
    the simulation.

    Every published event gets a monotonically increasing id, and the
    bus keeps the last ``ring_size`` events. A subscriber reconnecting
    with ``Last-Event-ID: n`` replays everything after ``n`` gap-free if
    ``n`` is still inside the ring window; beyond it, the subscriber
    first receives an id-less ``{"type": "stream", "action": "reset"}``
    marker (carrying the count of unrecoverable events) and then the
    full ring.

    The bus deliberately outlives any one driver: the supervisor owns it
    and hands it to each rebuilt driver, so event ids stay monotonic and
    the replay ring stays intact across a recovery.
    """

    def __init__(self, maxsize: int = 1000,
                 ring_size: int = DEFAULT_RING_SIZE,
                 registry=None) -> None:
        if ring_size > maxsize:
            raise ValueError(
                f"ring_size {ring_size} must fit in a subscriber queue "
                f"(maxsize {maxsize})"
            )
        self._maxsize = maxsize
        self._subscribers: List[_Subscription] = []
        self._lock = threading.Lock()
        self._ring: "deque[Tuple[int, dict]]" = deque(maxlen=ring_size)
        self._next_id = 1
        self._sub_serial = 0
        self.published = 0
        self.dropped = 0
        self._registry = registry

    def subscribe(self, last_event_id: Optional[int] = None) -> _Subscription:
        with self._lock:
            self._sub_serial += 1
            sub = _Subscription(f"sse-{self._sub_serial}", self._maxsize)
            if last_event_id is not None and self._ring:
                first_id = self._ring[0][0]
                last_id = self._ring[-1][0]
                if last_event_id >= last_id:
                    pass  # already caught up (or claims future ids)
                elif last_event_id >= first_id - 1:
                    for eid, doc in self._ring:
                        if eid > last_event_id:
                            sub.queue.put_nowait((eid, doc))
                else:
                    missed = first_id - 1 - last_event_id
                    sub.queue.put_nowait(
                        (
                            None,
                            {
                                "type": "stream",
                                "action": "reset",
                                "missed_events": missed,
                            },
                        )
                    )
                    for eid, doc in self._ring:
                        sub.queue.put_nowait((eid, doc))
            self._subscribers.append(sub)
        return sub

    def unsubscribe(self, sub: _Subscription) -> None:
        with self._lock:
            if sub in self._subscribers:
                self._subscribers.remove(sub)

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    @property
    def last_event_id(self) -> int:
        with self._lock:
            return self._next_id - 1

    def drops_by_subscriber(self) -> Dict[str, int]:
        """Per-subscriber drop counts for the currently connected set."""
        with self._lock:
            return {sub.name: sub.dropped for sub in self._subscribers}

    def publish(self, doc: dict) -> None:
        with self._lock:
            eid = self._next_id
            self._next_id += 1
            self._ring.append((eid, doc))
            subscribers = list(self._subscribers)
        self.published += 1
        for sub in subscribers:
            try:
                sub.queue.put_nowait((eid, doc))
            except queue.Full:
                self.dropped += 1
                sub.dropped += 1
                if self._registry is not None:
                    self._registry.counter(
                        "repro_service_events_dropped_total",
                        "SSE events dropped because a subscriber queue "
                        "was full",
                        labels={"subscriber": sub.name},
                    ).inc()


class RealTimeDriver:
    """Ticks one staged experiment on a dedicated simulation thread."""

    def __init__(
        self,
        harness: ExperimentHarness,
        mode: str = "manual",
        speedup: float = 1.0,
        slice_seconds: float = DEFAULT_SLICE_SECONDS,
        poll_seconds: float = DEFAULT_POLL_SECONDS,
        clock: Callable[[], float] = time.monotonic,
        bus: Optional[EventBus] = None,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        advance_hook: Optional[Callable[[float], None]] = None,
        auto_snapshot_every: Optional[float] = None,
        auto_snapshot_min_wall: float = 0.0,
        on_auto_snapshot: Optional[Callable[[bytes, float], None]] = None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if speedup <= 0:
            raise ValueError(f"speedup must be positive, got {speedup}")
        if slice_seconds <= 0:
            raise ValueError(
                f"slice_seconds must be positive, got {slice_seconds}"
            )
        if queue_capacity < 0:
            raise ValueError(
                f"queue_capacity must be >= 0 (0 = unbounded), "
                f"got {queue_capacity}"
            )
        if mode == "realtime":
            speedup = 1.0
        self.harness = harness
        self.mode = mode
        self.speedup = float(speedup)
        self.slice_seconds = float(slice_seconds)
        self.poll_seconds = float(poll_seconds)
        self.clock = clock
        self.bus = bus if bus is not None else EventBus()
        self.queue_capacity = int(queue_capacity)
        self.advance_hook = advance_hook
        self.auto_snapshot_every = (
            float(auto_snapshot_every) if auto_snapshot_every else None
        )
        self.auto_snapshot_min_wall = float(auto_snapshot_min_wall)
        self.on_auto_snapshot = on_auto_snapshot
        self._last_snapshot_wall: Optional[float] = None

        self._queue: "queue.Queue[_Command]" = queue.Queue()
        self._deferred: List[_Command] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-sim-driver", daemon=True
        )
        # --- state owned by the sim thread --------------------------------
        self._paused = mode == "manual"
        self._advancing = False
        self._anchor_wall: Optional[float] = None
        self._anchor_sim = 0.0
        self._result = None
        self._result_doc: Optional[dict] = None
        self._fatal: Optional[str] = None
        self._published_events = 0
        self._steps = 0
        self._commands_run = 0
        self._wall_started: Optional[float] = None
        self._next_auto_snapshot: Optional[float] = None
        #: wall-clock stamp of the sim thread's latest sign of life;
        #: written by the sim thread, read by the supervisor's watchdog
        self.heartbeat: float = self.clock()

    # ------------------------------------------------------------------
    # Lifecycle (called from the main / HTTP threads)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the sim thread; it arms the experiment immediately."""
        if self._thread.is_alive():
            raise DriverError("driver already started")
        self._wall_started = self.clock()
        self.heartbeat = self.clock()
        self._thread.start()
        # Arm the experiment as the first command so construction errors
        # surface here, synchronously, not on a later request.
        self.act(self._do_start, label="start", force=True)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    @property
    def fatal(self) -> Optional[str]:
        return self._fatal

    def heartbeat_age(self) -> float:
        """Wall seconds since the sim thread last signalled progress."""
        return max(0.0, self.clock() - self.heartbeat)

    def abandon(self) -> None:
        """Ask the sim thread to stop without waiting for it.

        The supervisor's recovery path: a hung thread cannot be killed,
        so it is signalled and *left behind* -- a fresh driver takes over
        a fresh object graph, and the abandoned thread can at worst keep
        mutating state nobody reads anymore.
        """
        self._stop.set()

    def shutdown(
        self, snapshot_path: Optional[str] = None, timeout: float = 60.0
    ) -> Optional[int]:
        """Stop the sim thread, optionally writing a final snapshot.

        The snapshot lands between advances (never mid-event), so it is
        restorable and auditable like any other durable frame. Returns
        the snapshot size in bytes when a path was given.
        """
        written: Optional[int] = None
        if self._thread.is_alive():
            def _final():
                size = None
                if snapshot_path is not None:
                    size = self.harness.save_snapshot(snapshot_path)
                    logger.info(
                        "final snapshot written to %s (%d bytes)",
                        snapshot_path,
                        size,
                    )
                self._stop.set()
                return size

            written = self.act(
                _final, label="shutdown", timeout=timeout, force=True
            )
        self._stop.set()
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise DriverError("sim thread did not stop in time")
        return written

    # ------------------------------------------------------------------
    # Command submission (HTTP threads)
    # ------------------------------------------------------------------
    def read(self, fn: Callable[[], object], label: str = "read",
             timeout: float = 30.0):
        """Run a read-only closure on the sim thread; return its result."""
        return self._submit(fn, readonly=True, label=label, timeout=timeout)

    def act(self, fn: Callable[[], object], label: str = "act",
            timeout: float = 300.0, force: bool = False):
        """Run a mutating closure on the sim thread; return its result."""
        return self._submit(
            fn, readonly=False, label=label, timeout=timeout, force=force
        )

    def _submit(self, fn, readonly: bool, label: str, timeout: float,
                force: bool = False):
        if not self._thread.is_alive():
            raise DriverError("driver is not running")
        if (
            not force
            and self.queue_capacity
            and self._queue.qsize() >= self.queue_capacity
        ):
            raise DriverBusy(
                f"command queue full ({self.queue_capacity} in flight); "
                f"retry {label!r} shortly"
            )
        command = _Command(fn, readonly, label)
        self._queue.put(command)
        return command.wait(timeout)

    # ------------------------------------------------------------------
    # Control commands
    # ------------------------------------------------------------------
    def pause(self) -> dict:
        return self.act(self._do_pause, label="pause", force=True)

    def resume(self) -> dict:
        return self.act(self._do_resume, label="resume", force=True)

    def step(self, seconds: Optional[float] = None,
             until: Optional[float] = None) -> dict:
        """Advance simulated time explicitly (any mode; re-anchors timed
        modes so wall-clock pacing resumes from the new position)."""
        if seconds is not None and seconds <= 0:
            raise DriverError(f"step seconds must be positive, got {seconds}")
        return self.act(
            lambda: self._do_step(seconds, until), label="step", timeout=3600.0
        )

    def finish(self) -> dict:
        """Run to the horizon and collect the result (idempotent)."""
        return self.act(self._do_finish, label="finish", timeout=3600.0)

    def snapshot(self, path: str) -> dict:
        return self.act(lambda: self._do_snapshot(path), label="snapshot")

    def status(self) -> dict:
        """The driver's status document (served at ``/api/status``)."""
        return self.read(self._status_doc, label="status")

    @property
    def result_doc(self) -> Optional[dict]:
        return self._result_doc

    # ------------------------------------------------------------------
    # Sim-thread internals
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            self.heartbeat = self.clock()
            block = not self._should_advance()
            try:
                command = self._queue.get(
                    timeout=0.25 if block else self.poll_seconds
                )
            except queue.Empty:
                command = None
            if command is not None:
                self._execute(command)
                continue
            self._run_deferred()
            if self._should_advance():
                self._advance_tick()
        # Unblock any callers still waiting so shutdown never hangs them.
        self._run_deferred()
        while True:
            try:
                command = self._queue.get_nowait()
            except queue.Empty:
                break
            self._execute(command)

    def _execute(self, command: _Command) -> None:
        if command.abandoned:
            command.done.set()
            return
        if self._advancing and not command.readonly:
            # An act arriving while an advance slices forward: defer to
            # the next boundary; order among deferred acts is preserved.
            self._deferred.append(command)
            return
        self._commands_run += 1
        command.run()

    def _run_deferred(self) -> None:
        while self._deferred:
            command = self._deferred.pop(0)
            self._commands_run += 1
            command.run()

    def _drain_reads_mid_advance(self) -> None:
        """Between slices of a long advance, serve queued reads."""
        while True:
            try:
                command = self._queue.get_nowait()
            except queue.Empty:
                return
            self._execute(command)

    # -- pacing ---------------------------------------------------------
    def _should_advance(self) -> bool:
        return (
            self.mode != "manual"
            and not self._paused
            and self._fatal is None
            and self._result is None
        )

    def _advance_tick(self) -> None:
        now = self.harness.engine.now
        if self._anchor_wall is None:
            self._anchor_wall = self.clock()
            self._anchor_sim = now
        target = self._anchor_sim + (
            (self.clock() - self._anchor_wall) * self.speedup
        )
        horizon = self.harness.end_seconds
        target = min(target, horizon)
        if target > now:
            self._advance_toward(target)
        if self.harness.engine.now >= horizon and self._result is None:
            self._do_finish()

    def _advance_toward(self, target: float) -> None:
        """Advance in slices, serving reads at each boundary."""
        self._advancing = True
        try:
            while not self._stop.is_set():
                now = self.harness.engine.now
                if now >= target:
                    break
                boundary = min(now + self.slice_seconds, target)
                if self.advance_hook is not None:
                    self.advance_hook(boundary)
                self.harness.advance(boundary)
                self.heartbeat = self.clock()
                self._maybe_auto_snapshot()
                self._publish_control_events()
                self._drain_reads_mid_advance()
        except Exception as exc:
            self._fatal = f"{type(exc).__name__}: {exc}"
            logger.exception("simulation advance failed; driver halted")
            self.bus.publish(
                {"type": "driver", "action": "fatal", "detail": self._fatal,
                 "sim_now": self.harness.engine.now}
            )
        finally:
            self._advancing = False
        self._run_deferred()

    def _maybe_auto_snapshot(self) -> None:
        """At a slice boundary, hand the supervisor a checkpoint frame.

        Encoding happens here on the sim thread (the only place a
        consistent frame exists); everything slow and fallible --
        fsync'd write, restore-and-audit verification, rotation -- runs
        on the supervisor's watchdog thread from the bytes handed over.
        """
        if self.auto_snapshot_every is None or self.on_auto_snapshot is None:
            return
        now = self.harness.engine.now
        if self._next_auto_snapshot is None:
            self._next_auto_snapshot = now + self.auto_snapshot_every
            return
        if now + 1e-9 < self._next_auto_snapshot:
            return
        if (
            self.auto_snapshot_min_wall
            and self._last_snapshot_wall is not None
            and self.clock() - self._last_snapshot_wall
            < self.auto_snapshot_min_wall
        ):
            # Wall-clock throttle: checkpoint cadence exists to bound the
            # wall time a recovery loses, so when a manual-step run blasts
            # through simulated time faster than real time there is no
            # point encoding a frame at every sim-cadence tick. Re-arm
            # and try again a cadence later.
            self._next_auto_snapshot = now + self.auto_snapshot_every
            return
        self._last_snapshot_wall = self.clock()
        try:
            frame = self.harness.snapshot_bytes()
            self.on_auto_snapshot(frame, now)
        except Exception:
            logger.exception("auto-snapshot failed; run continues unharmed")
        self._next_auto_snapshot = now + self.auto_snapshot_every

    # -- command bodies (sim thread only) -------------------------------
    def _do_start(self) -> dict:
        if not self.harness.started:
            self.harness.start()
        if (
            self.auto_snapshot_every is not None
            and self._next_auto_snapshot is None
        ):
            self._next_auto_snapshot = (
                self.harness.engine.now + self.auto_snapshot_every
            )
            # The genesis checkpoint covers the first wall window.
            self._last_snapshot_wall = self.clock()
        self._publish_driver_event("started")
        return self._status_doc()

    def _do_pause(self) -> dict:
        if not self._paused:
            self._paused = True
            self._anchor_wall = None
            self._publish_driver_event("paused")
        return self._status_doc()

    def _do_resume(self) -> dict:
        if self.mode == "manual":
            raise DriverError(
                "manual mode has no wall-clock pacing to resume; use step"
            )
        if self._paused:
            self._paused = False
            self._anchor_wall = None
            self._publish_driver_event("resumed")
        return self._status_doc()

    def _do_step(self, seconds: Optional[float],
                 until: Optional[float]) -> dict:
        if self._fatal is not None:
            raise DriverError(f"driver halted: {self._fatal}")
        if self._result is not None:
            raise DriverError("experiment already finished")
        now = self.harness.engine.now
        if until is not None:
            target = float(until)
            if target <= now:
                raise DriverError(
                    f"step target t={target:.1f}s is not ahead of now "
                    f"(t={now:.1f}s)"
                )
        else:
            target = now + float(
                seconds if seconds is not None else self.slice_seconds
            )
        target = min(target, self.harness.end_seconds)
        self._advance_toward(target)
        if self._fatal is not None:
            raise DriverError(f"driver halted: {self._fatal}")
        self._steps += 1
        self._anchor_wall = None  # re-anchor timed pacing after the jump
        self._publish_driver_event("stepped")
        return self._status_doc()

    def _do_finish(self) -> dict:
        if self._fatal is not None:
            raise DriverError(f"driver halted: {self._fatal}")
        if self._result is None:
            # Slice the remaining distance to the horizon instead of one
            # monolithic advance inside harness.finish(): identical
            # trajectory (advance composes exactly), but heartbeats,
            # auto-snapshots, reads and SSE events keep flowing while a
            # long finish runs.
            self._advance_toward(self.harness.end_seconds)
            if self._fatal is not None:
                raise DriverError(f"driver halted: {self._fatal}")
            result = self.harness.finish()
            self._result = result
            self._result_doc = self.harness.result_to_dict(result)
            self._publish_control_events()
            self._publish_driver_event("finished")
        return self._status_doc()

    def _do_snapshot(self, path: str) -> dict:
        size = self.harness.save_snapshot(path)
        self._publish_driver_event("snapshot", path=str(path), bytes=size)
        return {"path": str(path), "bytes": size,
                "sim_now": self.harness.engine.now}

    # -- events ---------------------------------------------------------
    def _publish_control_events(self) -> None:
        """Bridge new engine eventlog entries onto the SSE bus."""
        events = self.harness.event_log.events
        if self._published_events >= len(events):
            return
        for event in events[self._published_events:]:
            self.bus.publish(
                {
                    "type": "control",
                    "time": event.time,
                    "kind": event.kind,
                    "server_id": event.server_id,
                    "detail": event.detail,
                }
            )
        self._published_events = len(events)

    def _publish_driver_event(self, action: str, **extra) -> None:
        doc = {
            "type": "driver",
            "action": action,
            "sim_now": self.harness.engine.now,
        }
        doc.update(extra)
        self.bus.publish(doc)

    # -- status ---------------------------------------------------------
    def _status_doc(self) -> dict:
        now = self.harness.engine.now
        horizon = self.harness.end_seconds
        return {
            "mode": self.mode,
            "speedup": self.speedup,
            "paused": self._paused,
            "started": self.harness.started,
            "finished": self._result is not None,
            "fatal": self._fatal,
            "sim_now": now,
            "horizon": horizon,
            "progress": min(1.0, now / horizon) if horizon > 0 else 0.0,
            "steps": self._steps,
            "commands": self._commands_run,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self.queue_capacity,
            "heartbeat_age_seconds": self.heartbeat_age(),
            "events_published": self.bus.published,
            "events_dropped": self.bus.dropped,
            "events_dropped_by_subscriber": self.bus.drops_by_subscriber(),
            "last_event_id": self.bus.last_event_id,
            "subscribers": self.bus.subscriber_count,
            "wall_uptime_seconds": (
                self.clock() - self._wall_started
                if self._wall_started is not None
                else 0.0
            ),
        }


__all__ = [
    "DEFAULT_QUEUE_CAPACITY",
    "DEFAULT_RING_SIZE",
    "DriverBusy",
    "DriverError",
    "DriverTimeout",
    "EventBus",
    "RealTimeDriver",
    "MODES",
]
