"""The real-time driver: one simulation thread, one command queue.

The batch harnesses promise byte-identical trajectories because exactly
one call stack mutates the engine. A live service must keep that promise
while an HTTP thread pool fields concurrent requests, so the driver
enforces a **single-writer** discipline:

- One background thread (the *sim thread*) owns the experiment. It is
  the only code that ever calls ``advance()``, touches cluster state, or
  reads live object graphs.
- Every observation and every act -- including reads -- is a
  :class:`_Command` posted to a queue and executed *on the sim thread*
  between ``advance()`` slices. HTTP threads block on a completion
  event and receive the result (or the raised exception). There are no
  locks around simulation state because there is no second reader.

Three pacing modes:

``manual``
    Simulated time moves only on explicit ``step`` commands. A
    manual-step service run issues exactly the same ``advance()``
    sequence a batch run would, so the trajectory is byte-identical to
    ``ControlledExperiment.run()`` (pinned in tests/test_service.py).
``realtime`` / ``accelerated``
    The sim thread tracks wall clock: after each slice it sleeps (in the
    command poll) until simulated time falls behind
    ``anchor + (wall - wall_anchor) * speedup`` again. ``speedup=1`` is
    real time; ``speedup=60`` plays one simulated hour per wall minute.

Long advances are cut into ``slice_seconds`` pieces, and *read-only*
commands are serviced between pieces, so observation latency stays
bounded by one slice even while a large step is in flight. Mutating
commands that arrive mid-advance are deferred, in order, to the next
slice boundary after the advance completes -- an act never lands inside
an ``advance()`` call, which is also what keeps every boundary

snapshot-safe.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from typing import Callable, List, Optional

from repro.service.harness import ExperimentHarness

logger = logging.getLogger(__name__)

#: default sim-seconds advanced per slice (one monitor sweep)
DEFAULT_SLICE_SECONDS = 60.0
#: default command-queue poll period for timed modes, in wall seconds
DEFAULT_POLL_SECONDS = 0.02

MODES = ("manual", "realtime", "accelerated")


class DriverError(RuntimeError):
    """A driver command could not be executed."""


class _Command:
    """One closure to run on the sim thread, with a completion event."""

    __slots__ = ("fn", "readonly", "label", "done", "result", "error")

    def __init__(self, fn: Callable[[], object], readonly: bool, label: str):
        self.fn = fn
        self.readonly = readonly
        self.label = label
        self.done = threading.Event()
        self.result: object = None
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            self.result = self.fn()
        except BaseException as exc:  # delivered to the waiting caller
            self.error = exc
        finally:
            self.done.set()

    def wait(self, timeout: Optional[float]):
        if not self.done.wait(timeout):
            raise DriverError(f"command {self.label!r} timed out")
        if self.error is not None:
            raise self.error
        return self.result


class EventBus:
    """Fan-out of driver/engine events to SSE subscribers.

    Publishing never blocks the sim thread: a subscriber whose queue is
    full loses the event (counted, and visible in the status document)
    rather than stalling the simulation.
    """

    def __init__(self, maxsize: int = 1000) -> None:
        self._subscribers: List[queue.Queue] = []
        self._lock = threading.Lock()
        self.published = 0
        self.dropped = 0

    def subscribe(self) -> queue.Queue:
        q: queue.Queue = queue.Queue(maxsize=1000)
        with self._lock:
            self._subscribers.append(q)
        return q

    def unsubscribe(self, q: queue.Queue) -> None:
        with self._lock:
            if q in self._subscribers:
                self._subscribers.remove(q)

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def publish(self, doc: dict) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
        self.published += 1
        for q in subscribers:
            try:
                q.put_nowait(doc)
            except queue.Full:
                self.dropped += 1


class RealTimeDriver:
    """Ticks one staged experiment on a dedicated simulation thread."""

    def __init__(
        self,
        harness: ExperimentHarness,
        mode: str = "manual",
        speedup: float = 1.0,
        slice_seconds: float = DEFAULT_SLICE_SECONDS,
        poll_seconds: float = DEFAULT_POLL_SECONDS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if speedup <= 0:
            raise ValueError(f"speedup must be positive, got {speedup}")
        if slice_seconds <= 0:
            raise ValueError(
                f"slice_seconds must be positive, got {slice_seconds}"
            )
        if mode == "realtime":
            speedup = 1.0
        self.harness = harness
        self.mode = mode
        self.speedup = float(speedup)
        self.slice_seconds = float(slice_seconds)
        self.poll_seconds = float(poll_seconds)
        self.clock = clock
        self.bus = EventBus()

        self._queue: "queue.Queue[_Command]" = queue.Queue()
        self._deferred: List[_Command] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-sim-driver", daemon=True
        )
        # --- state owned by the sim thread --------------------------------
        self._paused = mode == "manual"
        self._advancing = False
        self._anchor_wall: Optional[float] = None
        self._anchor_sim = 0.0
        self._result = None
        self._result_doc: Optional[dict] = None
        self._fatal: Optional[str] = None
        self._published_events = 0
        self._steps = 0
        self._commands_run = 0
        self._wall_started: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle (called from the main / HTTP threads)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the sim thread; it arms the experiment immediately."""
        if self._thread.is_alive():
            raise DriverError("driver already started")
        self._wall_started = self.clock()
        self._thread.start()
        # Arm the experiment as the first command so construction errors
        # surface here, synchronously, not on a later request.
        self.act(self._do_start, label="start")

    def shutdown(
        self, snapshot_path: Optional[str] = None, timeout: float = 60.0
    ) -> Optional[int]:
        """Stop the sim thread, optionally writing a final snapshot.

        The snapshot lands between advances (never mid-event), so it is
        restorable and auditable like any other durable frame. Returns
        the snapshot size in bytes when a path was given.
        """
        written: Optional[int] = None
        if self._thread.is_alive():
            def _final():
                size = None
                if snapshot_path is not None:
                    size = self.harness.save_snapshot(snapshot_path)
                    logger.info(
                        "final snapshot written to %s (%d bytes)",
                        snapshot_path,
                        size,
                    )
                self._stop.set()
                return size

            written = self.act(_final, label="shutdown", timeout=timeout)
        self._stop.set()
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise DriverError("sim thread did not stop in time")
        return written

    # ------------------------------------------------------------------
    # Command submission (HTTP threads)
    # ------------------------------------------------------------------
    def read(self, fn: Callable[[], object], label: str = "read",
             timeout: float = 30.0):
        """Run a read-only closure on the sim thread; return its result."""
        return self._submit(fn, readonly=True, label=label, timeout=timeout)

    def act(self, fn: Callable[[], object], label: str = "act",
            timeout: float = 300.0):
        """Run a mutating closure on the sim thread; return its result."""
        return self._submit(fn, readonly=False, label=label, timeout=timeout)

    def _submit(self, fn, readonly: bool, label: str, timeout: float):
        if not self._thread.is_alive():
            raise DriverError("driver is not running")
        command = _Command(fn, readonly, label)
        self._queue.put(command)
        return command.wait(timeout)

    # ------------------------------------------------------------------
    # Control commands
    # ------------------------------------------------------------------
    def pause(self) -> dict:
        return self.act(self._do_pause, label="pause")

    def resume(self) -> dict:
        return self.act(self._do_resume, label="resume")

    def step(self, seconds: Optional[float] = None,
             until: Optional[float] = None) -> dict:
        """Advance simulated time explicitly (any mode; re-anchors timed
        modes so wall-clock pacing resumes from the new position)."""
        if seconds is not None and seconds <= 0:
            raise DriverError(f"step seconds must be positive, got {seconds}")
        return self.act(
            lambda: self._do_step(seconds, until), label="step", timeout=3600.0
        )

    def finish(self) -> dict:
        """Run to the horizon and collect the result (idempotent)."""
        return self.act(self._do_finish, label="finish", timeout=3600.0)

    def snapshot(self, path: str) -> dict:
        return self.act(lambda: self._do_snapshot(path), label="snapshot")

    def status(self) -> dict:
        """The driver's status document (served at ``/api/status``)."""
        return self.read(self._status_doc, label="status")

    @property
    def result_doc(self) -> Optional[dict]:
        return self._result_doc

    # ------------------------------------------------------------------
    # Sim-thread internals
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            block = not self._should_advance()
            try:
                command = self._queue.get(
                    timeout=0.25 if block else self.poll_seconds
                )
            except queue.Empty:
                command = None
            if command is not None:
                self._execute(command)
                continue
            self._run_deferred()
            if self._should_advance():
                self._advance_tick()
        # Unblock any callers still waiting so shutdown never hangs them.
        self._run_deferred()
        while True:
            try:
                command = self._queue.get_nowait()
            except queue.Empty:
                break
            self._execute(command)

    def _execute(self, command: _Command) -> None:
        if self._advancing and not command.readonly:
            # An act arriving while an advance slices forward: defer to
            # the next boundary; order among deferred acts is preserved.
            self._deferred.append(command)
            return
        self._commands_run += 1
        command.run()

    def _run_deferred(self) -> None:
        while self._deferred:
            command = self._deferred.pop(0)
            self._commands_run += 1
            command.run()

    def _drain_reads_mid_advance(self) -> None:
        """Between slices of a long advance, serve queued reads."""
        while True:
            try:
                command = self._queue.get_nowait()
            except queue.Empty:
                return
            self._execute(command)

    # -- pacing ---------------------------------------------------------
    def _should_advance(self) -> bool:
        return (
            self.mode != "manual"
            and not self._paused
            and self._fatal is None
            and self._result is None
        )

    def _advance_tick(self) -> None:
        now = self.harness.engine.now
        if self._anchor_wall is None:
            self._anchor_wall = self.clock()
            self._anchor_sim = now
        target = self._anchor_sim + (
            (self.clock() - self._anchor_wall) * self.speedup
        )
        horizon = self.harness.end_seconds
        target = min(target, horizon)
        if target > now:
            self._advance_toward(target)
        if self.harness.engine.now >= horizon and self._result is None:
            self._do_finish()

    def _advance_toward(self, target: float) -> None:
        """Advance in slices, serving reads at each boundary."""
        self._advancing = True
        try:
            while not self._stop.is_set():
                now = self.harness.engine.now
                if now >= target:
                    break
                boundary = min(now + self.slice_seconds, target)
                self.harness.advance(boundary)
                self._publish_control_events()
                self._drain_reads_mid_advance()
        except Exception as exc:
            self._fatal = f"{type(exc).__name__}: {exc}"
            logger.exception("simulation advance failed; driver halted")
            self.bus.publish(
                {"type": "driver", "action": "fatal", "detail": self._fatal,
                 "sim_now": self.harness.engine.now}
            )
        finally:
            self._advancing = False
        self._run_deferred()

    # -- command bodies (sim thread only) -------------------------------
    def _do_start(self) -> dict:
        if not self.harness.started:
            self.harness.start()
        self._publish_driver_event("started")
        return self._status_doc()

    def _do_pause(self) -> dict:
        if not self._paused:
            self._paused = True
            self._anchor_wall = None
            self._publish_driver_event("paused")
        return self._status_doc()

    def _do_resume(self) -> dict:
        if self.mode == "manual":
            raise DriverError(
                "manual mode has no wall-clock pacing to resume; use step"
            )
        if self._paused:
            self._paused = False
            self._anchor_wall = None
            self._publish_driver_event("resumed")
        return self._status_doc()

    def _do_step(self, seconds: Optional[float],
                 until: Optional[float]) -> dict:
        if self._fatal is not None:
            raise DriverError(f"driver halted: {self._fatal}")
        if self._result is not None:
            raise DriverError("experiment already finished")
        now = self.harness.engine.now
        if until is not None:
            target = float(until)
            if target <= now:
                raise DriverError(
                    f"step target t={target:.1f}s is not ahead of now "
                    f"(t={now:.1f}s)"
                )
        else:
            target = now + float(
                seconds if seconds is not None else self.slice_seconds
            )
        target = min(target, self.harness.end_seconds)
        self._advance_toward(target)
        if self._fatal is not None:
            raise DriverError(f"driver halted: {self._fatal}")
        self._steps += 1
        self._anchor_wall = None  # re-anchor timed pacing after the jump
        self._publish_driver_event("stepped")
        return self._status_doc()

    def _do_finish(self) -> dict:
        if self._fatal is not None:
            raise DriverError(f"driver halted: {self._fatal}")
        if self._result is None:
            result = self.harness.finish()
            self._result = result
            self._result_doc = self.harness.result_to_dict(result)
            self._publish_control_events()
            self._publish_driver_event("finished")
        return self._status_doc()

    def _do_snapshot(self, path: str) -> dict:
        size = self.harness.save_snapshot(path)
        self._publish_driver_event("snapshot", path=str(path), bytes=size)
        return {"path": str(path), "bytes": size,
                "sim_now": self.harness.engine.now}

    # -- events ---------------------------------------------------------
    def _publish_control_events(self) -> None:
        """Bridge new engine eventlog entries onto the SSE bus."""
        events = self.harness.event_log.events
        if self._published_events >= len(events):
            return
        for event in events[self._published_events:]:
            self.bus.publish(
                {
                    "type": "control",
                    "time": event.time,
                    "kind": event.kind,
                    "server_id": event.server_id,
                    "detail": event.detail,
                }
            )
        self._published_events = len(events)

    def _publish_driver_event(self, action: str, **extra) -> None:
        doc = {
            "type": "driver",
            "action": action,
            "sim_now": self.harness.engine.now,
        }
        doc.update(extra)
        self.bus.publish(doc)

    # -- status ---------------------------------------------------------
    def _status_doc(self) -> dict:
        now = self.harness.engine.now
        horizon = self.harness.end_seconds
        return {
            "mode": self.mode,
            "speedup": self.speedup,
            "paused": self._paused,
            "started": self.harness.started,
            "finished": self._result is not None,
            "fatal": self._fatal,
            "sim_now": now,
            "horizon": horizon,
            "progress": min(1.0, now / horizon) if horizon > 0 else 0.0,
            "steps": self._steps,
            "commands": self._commands_run,
            "events_published": self.bus.published,
            "events_dropped": self.bus.dropped,
            "subscribers": self.bus.subscriber_count,
            "wall_uptime_seconds": (
                self.clock() - self._wall_started
                if self._wall_started is not None
                else 0.0
            ),
        }


__all__ = ["DriverError", "EventBus", "RealTimeDriver", "MODES"]
