"""Observe-side JSON documents built from live experiment state.

Every function here takes an :class:`~repro.service.harness.ExperimentHarness`
and returns plain dicts/lists of JSON-native values. They are called
*on the simulation thread* (via :meth:`RealTimeDriver.read`), so they
may walk live object graphs freely -- but they must **copy** everything
they return, because by the time the HTTP thread serializes the
document the sim thread has moved on.

``json.dumps`` happily emits ``NaN``/``Infinity``, which browsers'
``JSON.parse`` rejects -- and live power telemetry legitimately holds
NaNs (an IPMI read during a monitoring blackout carries last-known
value with a NaN marker, a never-sampled group has no latest point).
:func:`jsonsafe` scrubs every document to ``null`` before it leaves the
sim thread.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Optional

import numpy as np

from repro.service.harness import ExperimentHarness


def jsonsafe(value):
    """Recursively coerce a document to JSON-native, finite values.

    NaN/Inf become ``None`` (valid JSON, parseable by browsers), numpy
    scalars and arrays become Python numbers and lists, tuples become
    lists, enums their values, dataclasses dicts. Unknown objects fall
    back to ``str`` so an observe endpoint never 500s on an exotic leaf.
    """
    if value is None or isinstance(value, (bool, str, int)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, np.generic):
        return jsonsafe(value.item())
    if isinstance(value, np.ndarray):
        return [jsonsafe(v) for v in value.tolist()]
    if isinstance(value, enum.Enum):
        return jsonsafe(value.value)
    if isinstance(value, dict):
        return {str(k): jsonsafe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [jsonsafe(v) for v in items]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonsafe(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    return str(value)


# ----------------------------------------------------------------------
# Documents
# ----------------------------------------------------------------------
def config_doc(harness: ExperimentHarness) -> dict:
    return jsonsafe(
        {
            "kind": harness.kind,
            "config": harness.config,
            "end_seconds": harness.end_seconds,
        }
    )


def _group_summary(harness: ExperimentHarness, name: str, group) -> dict:
    servers = group.servers
    breaker = harness.breakers().get(name)
    supervisor = harness.supervisors().get(name)
    doc = {
        "name": name,
        "n_servers": len(servers),
        "power_watts": group.power_watts(),
        "budget_watts": group.power_budget_watts,
        "rated_watts": group.rated_watts(),
        "normalized_power": group.normalized_power(),
        "over_provision_ratio": group.over_provision_ratio,
        "frozen": sum(1 for s in servers if s.frozen),
        "capped": sum(1 for s in servers if s.is_capped),
        "failed": sum(1 for s in servers if s.failed),
        "powered_off": sum(1 for s in servers if s.powered_off),
        "controlled": name in harness.controllers(),
        "safety_state": supervisor.state.name if supervisor else None,
        "safety_level": int(supervisor.state) if supervisor else None,
        "breaker": (
            {
                "tripped": breaker.tripped,
                "thermal_fraction": breaker.thermal_fraction,
                "trips": breaker.stats.trips,
            }
            if breaker
            else None
        ),
    }
    try:
        doc["violations"] = harness.monitor.violation_count(name)
    except KeyError:
        doc["violations"] = None
    return doc


def state_doc(harness: ExperimentHarness) -> dict:
    """The facility overview: every group, one summary row each."""
    monitor = harness.monitor
    groups = harness.groups()
    return jsonsafe(
        {
            "kind": harness.kind,
            "sim_now": harness.engine.now,
            "facility_budget_watts": monitor.facility_budget_watts,
            "facility_power_watts": sum(
                g.power_watts() for g in groups.values()
            ),
            "in_outage": monitor.in_outage,
            "sensor_bias": monitor.sensor_bias,
            "groups": [
                _group_summary(harness, name, group)
                for name, group in groups.items()
            ],
        }
    )


def group_doc(harness: ExperimentHarness, name: str) -> Optional[dict]:
    """One group in depth: per-server masks plus controller state."""
    groups = harness.groups()
    if name not in groups:
        return None
    group = groups[name]
    doc = _group_summary(harness, name, group)
    doc["servers"] = [
        {
            "id": s.server_id,
            "power_watts": s.power_watts(),
            "frozen": s.frozen,
            "capped": s.is_capped,
            "failed": s.failed,
            "powered_off": s.powered_off,
        }
        for s in group.servers
    ]
    controller = harness.controllers().get(name)
    if controller is not None:
        state = controller.state_of(name)
        doc["controller"] = {
            "ticks": state.ticks,
            "active_ticks": state.active_ticks,
            "freeze_actions": state.freeze_actions,
            "unfreeze_actions": state.unfreeze_actions,
            "u_mean": state.u_mean,
            "u_max": state.u_max,
            "intended_frozen": len(state.intended_frozen),
            "residuals": state.residual_summary(),
        }
    else:
        doc["controller"] = None
    return jsonsafe(doc)


def controllers_doc(harness: ExperimentHarness) -> dict:
    """Controller health counters per controlled group."""
    out = {}
    for name, controller in harness.controllers().items():
        state = controller.state_of(name)
        out[name] = {
            "crashed": controller.crashed,
            "health": controller.health.summary(),
            "u_mean": state.u_mean,
            "u_max": state.u_max,
            "ticks": state.ticks,
        }
    return jsonsafe({"controllers": out})


def ledger_doc(harness: ExperimentHarness) -> Optional[dict]:
    """The facility budget ledger (fleet runs only)."""
    ledger = harness.ledger
    if ledger is None:
        return None
    return jsonsafe(
        {
            "facility_budget_watts": ledger.facility_budget_watts,
            "frozen": ledger.frozen,
            "rows": [
                {
                    "name": row.name,
                    "allocation_watts": row.allocation_watts,
                    "static_watts": row.static_watts,
                    "rating_watts": row.rating_watts,
                    "floor_watts": row.floor_watts,
                }
                for row in ledger.rows()
            ],
        }
    )


def tenants_doc(harness: ExperimentHarness) -> Optional[dict]:
    """Per-tenant fairness accounting (multi-tenant runs only)."""
    accountant = harness.tenancy
    if accountant is None:
        return None
    stats = accountant.stats_snapshot()
    return jsonsafe(
        {
            "policy": stats.policy,
            "jain_index": stats.jain_index,
            "total_frozen_server_minutes": stats.total_frozen_server_minutes,
            "total_shed_events": stats.total_shed_events,
            "tenants": stats.tenants,
        }
    )


def events_doc(harness: ExperimentHarness, limit: int = 100,
               kind: Optional[str] = None) -> dict:
    """The tail of the control-plane eventlog, newest last."""
    events = harness.event_log.events
    if kind is not None:
        events = [e for e in events if e.kind == kind]
    tail = events[-limit:] if limit > 0 else list(events)
    return jsonsafe(
        {
            "total": len(harness.event_log.events),
            "returned": len(tail),
            "events": [
                {
                    "time": e.time,
                    "kind": e.kind,
                    "server_id": e.server_id,
                    "detail": e.detail,
                }
                for e in tail
            ],
        }
    )


def series_doc(harness: ExperimentHarness,
               window_seconds: float = 3600.0) -> dict:
    """Power-vs-budget traces for the dashboard's charts.

    Returns the trailing ``window_seconds`` of each group's monitor
    series plus the facility roll-up when one exists.
    """
    monitor = harness.monitor
    now = harness.engine.now
    start = max(0.0, now - window_seconds)
    series = {}
    for name, group in harness.groups().items():
        try:
            times, watts = monitor.power_series(name, start, now)
        except KeyError:
            continue
        series[name] = {
            "times": times,
            "watts": watts,
            "budget_watts": group.power_budget_watts,
        }
    try:
        times, watts = monitor.facility_power_series(start, now)
        facility = {
            "times": times,
            "watts": watts,
            "budget_watts": monitor.facility_budget_watts,
        }
    except KeyError:
        facility = None
    return jsonsafe(
        {"sim_now": now, "window_seconds": window_seconds,
         "groups": series, "facility": facility}
    )


def safety_doc(harness: ExperimentHarness) -> dict:
    """Safety-ladder and breaker state for every protected group."""
    out = {}
    breakers = harness.breakers()
    for name, supervisor in harness.supervisors().items():
        stats = supervisor.stats
        out[name] = {
            "state": supervisor.state.name,
            "level": int(supervisor.state),
            "escalations": stats.escalations,
            "deescalations": stats.deescalations,
            "max_state": stats.max_state,
            "freezes_issued": stats.freezes_issued,
            "slams": stats.slams,
            "jobs_shed": stats.jobs_shed,
            "seconds_in_state": stats.seconds_in_state,
        }
    breaker_docs = {}
    for name, breaker in breakers.items():
        breaker_docs[name] = {
            "tripped": breaker.tripped,
            "thermal_fraction": breaker.thermal_fraction,
            "trips": breaker.stats.trips,
            "resets": breaker.stats.resets,
            "jobs_killed": breaker.stats.jobs_killed,
        }
    return jsonsafe({"supervisors": out, "breakers": breaker_docs})


def faults_doc(harness: ExperimentHarness) -> dict:
    """Build-time and runtime-armed fault injector statistics."""

    def injector_doc(injector) -> dict:
        stats = injector.stats_snapshot()
        return {
            "scenario": injector.scenario.name,
            "stats": stats,
        }

    build = harness.build_injector
    return jsonsafe(
        {
            "build": injector_doc(build) if build is not None else None,
            "runtime": [
                injector_doc(inj) for inj in harness.runtime_injectors
            ],
        }
    )


def audit_doc(harness: ExperimentHarness) -> dict:
    """Run a full (unsampled) invariant sweep right now and report it.

    Also includes the cumulative stats of the experiment's *online*
    auditor when one was armed via config.
    """
    from repro.sim.audit import AuditorConfig

    auditor = harness.build_auditor(
        AuditorConfig(sample_fraction=1.0, on_violation="record")
    )
    violations = auditor.audit(sample=False)
    online = harness.auditor
    return jsonsafe(
        {
            "clean": not violations,
            "violations": [
                {"check": v.check, "time": v.time, "message": v.message,
                 "details": v.details}
                for v in violations
            ],
            "online": (
                {
                    "passes": online.stats.passes,
                    "checks_run": online.stats.checks_run,
                    "violations": online.stats.violations,
                    "violations_by_check": online.stats.violations_by_check,
                }
                if online is not None
                else None
            ),
        }
    )


__all__ = [
    "audit_doc",
    "config_doc",
    "controllers_doc",
    "events_doc",
    "faults_doc",
    "group_doc",
    "jsonsafe",
    "ledger_doc",
    "safety_doc",
    "series_doc",
    "state_doc",
    "tenants_doc",
]
