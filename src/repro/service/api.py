"""The HTTP surface: routing, JSON envelopes, SSE, and the server.

Built on ``http.server.ThreadingHTTPServer`` -- the whole service runs
on the standard library by design (the repo's no-new-runtime-deps
rule). Each request runs on its own thread, but handlers never touch
simulation state: they call :class:`~repro.service.app.ServiceApp`,
which funnels every read and act through the driver's single-writer
command queue.

API table (all JSON unless noted):

====== ========================= ==========================================
method path                      semantics
====== ========================= ==========================================
GET    /                         HTML dashboard
GET    /api/status               driver status (mode, sim time, progress)
GET    /api/config               experiment kind + full config
GET    /api/state                facility overview, one row per group
GET    /api/groups/<name>        one group in depth (per-server masks)
GET    /api/controllers          controller health + steering statistics
GET    /api/ledger               fleet budget ledger (404 on single-row)
GET    /api/tenants              per-tenant fairness (404 when untenanted)
GET    /api/events               eventlog tail (``?limit=&kind=``)
GET    /api/series               power/budget traces (``?window=seconds``)
GET    /api/safety               safety ladders + breaker states
GET    /api/faults               armed injectors and their fault counts
GET    /api/audit                full invariant sweep of live state, now
GET    /api/result               final result document (404 until finished)
GET    /api/scenarios            builtin fault scenario registry
GET    /healthz                  liveness probe (200 while serving)
GET    /readyz                   readiness probe (503 while degraded)
GET    /metrics                  Prometheus text exposition
GET    /events                   SSE stream (control + driver events)
POST   /api/pause                stop wall-clock pacing
POST   /api/resume               resume wall-clock pacing (409 in manual)
POST   /api/step                 advance {"seconds": s} or {"until": t}
POST   /api/finish               run to horizon, collect the result
POST   /api/freeze               freeze every server in {"group": name}
POST   /api/unfreeze             thaw a group the same way
POST   /api/budgets              reallocate {"allocations": {row: watts}}
POST   /api/faults               arm {"scenario": name} or {"spec": {...}}
POST   /api/snapshot             write durable frame to {"path": p}
POST   /api/verify-snapshot      restore + audit {"path": p} off-thread
====== ========================= ==========================================

Errors come back as ``{"error": message}`` with a meaningful status
(400 bad input, 404 unknown resource, 409 wrong state, 413 oversized
body, 422 rejected by an invariant, 429 command queue full, 500
unexpected, 503 degraded/timed out). 429 and 503 responses carry a
``Retry-After`` header so well-behaved clients back off instead of
hammering a recovering service.
"""

from __future__ import annotations

import json
import logging
import queue
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.app import ServiceApp, ServiceError
from repro.service.dashboard import DASHBOARD_HTML
from repro.service.driver import DriverBusy, DriverError, DriverTimeout
from repro.telemetry import PROMETHEUS_CONTENT_TYPE

logger = logging.getLogger(__name__)

JSON_CONTENT_TYPE = "application/json; charset=utf-8"
HTML_CONTENT_TYPE = "text/html; charset=utf-8"
SSE_CONTENT_TYPE = "text/event-stream"

#: wall seconds between SSE keepalive comments when no events flow; short
#: so closed connections are detected promptly and shutdown never hangs
SSE_KEEPALIVE_SECONDS = 2.0

#: request bodies larger than this are refused with 413 -- the biggest
#: legitimate body (a full fleet budget reallocation or an inline fault
#: scenario spec) is a few KiB
MAX_BODY_BYTES = 1 << 20


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server carrying the app as shared context."""

    # Request threads must never block interpreter exit: SSE streams are
    # open-ended, so they are daemonic and close() does not join them.
    daemon_threads = True
    block_on_close = False
    # Fast restart of the smoke/CI loops on the same port.
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], app: ServiceApp) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.app = app
        self.shutting_down = threading.Event()


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes one request to the app; owns serialization and errors."""

    protocol_version = "HTTP/1.1"
    server: ServiceHTTPServer

    @property
    def app(self) -> ServiceApp:
        return self.server.app

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def _send(self, status: int, body: bytes, content_type: str,
              retry_after: Optional[float] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, int(retry_after))))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, doc,
                   retry_after: Optional[float] = None) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        self._send(status, body, JSON_CONTENT_TYPE, retry_after=retry_after)

    def _send_error(self, status: int, message: str,
                    retry_after: Optional[float] = None) -> None:
        self._send_json(status, {"error": message}, retry_after=retry_after)

    def _read_body(self) -> dict:
        """Parse the JSON request body, defensively.

        Bounded on purpose: a malformed ``Content-Length`` is a 400 (not
        an uncaught ``ValueError`` turned 500), anything over
        ``MAX_BODY_BYTES`` is refused with 413 before a byte is read,
        and the read itself is capped by the validated length -- never
        an unbounded ``rfile.read()``.
        """
        declared = self.headers.get("Content-Length")
        if declared is None:
            return {}
        try:
            length = int(declared)
        except (TypeError, ValueError):
            raise ServiceError(
                400, f"malformed Content-Length: {declared!r}"
            ) from None
        if length < 0:
            raise ServiceError(
                400, f"malformed Content-Length: {declared!r}"
            )
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(400, f"request body is not JSON: {exc}")
        if not isinstance(doc, dict):
            raise ServiceError(400, "request body must be a JSON object")
        return doc

    def _query(self) -> dict:
        return parse_qs(urlparse(self.path).query)

    def _qs_float(self, query: dict, name: str,
                  default: Optional[float]) -> Optional[float]:
        if name not in query:
            return default
        try:
            return float(query[name][0])
        except ValueError as exc:
            raise ServiceError(400, f"query param {name!r} must be a number") \
                from exc

    # -- dispatch -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        path = urlparse(self.path).path.rstrip("/") or "/"
        try:
            handled = self._route(method, path)
        except ServiceError as exc:
            self._send_error(exc.status, exc.message,
                             retry_after=exc.retry_after)
            return
        except DriverBusy as exc:
            self._send_error(429, str(exc), retry_after=exc.retry_after)
            return
        except DriverTimeout as exc:
            self._send_error(503, str(exc), retry_after=5.0)
            return
        except DriverError as exc:
            self._send_error(409, str(exc))
            return
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away; nothing to answer
        except Exception as exc:  # pragma: no cover - last-resort guard
            logger.exception("unhandled error serving %s %s", method, path)
            self._send_error(500, f"{type(exc).__name__}: {exc}")
            return
        if not handled:
            self._send_error(404, f"no route for {method} {path}")

    def _route(self, method: str, path: str) -> bool:
        app = self.app
        if method == "GET":
            if path == "/" or path == "/dashboard":
                self._send(200, DASHBOARD_HTML.encode("utf-8"),
                           HTML_CONTENT_TYPE)
            elif path == "/api/status":
                self._send_json(200, app.status())
            elif path == "/api/config":
                self._send_json(200, app.config())
            elif path == "/api/state":
                self._send_json(200, app.state())
            elif path.startswith("/api/groups/"):
                name = path[len("/api/groups/"):]
                self._send_json(200, app.group(name))
            elif path == "/api/controllers":
                self._send_json(200, app.controllers())
            elif path == "/api/ledger":
                self._send_json(200, app.ledger())
            elif path == "/api/tenants":
                self._send_json(200, app.tenants())
            elif path == "/api/events":
                query = self._query()
                limit = int(self._qs_float(query, "limit", 100.0))
                kind = query.get("kind", [None])[0]
                self._send_json(200, app.events(limit=limit, kind=kind))
            elif path == "/api/series":
                window = self._qs_float(self._query(), "window", 3600.0)
                self._send_json(200, app.series(window_seconds=window))
            elif path == "/api/safety":
                self._send_json(200, app.safety())
            elif path == "/api/faults":
                self._send_json(200, app.faults())
            elif path == "/api/audit":
                self._send_json(200, app.audit())
            elif path == "/api/result":
                self._send_json(200, app.result())
            elif path == "/api/scenarios":
                self._send_json(200, app.scenarios())
            elif path == "/healthz":
                self._send_json(200, app.healthz())
            elif path == "/readyz":
                status, doc = app.readyz()
                self._send_json(
                    status, doc,
                    retry_after=2.0 if status != 200 else None,
                )
            elif path == "/metrics":
                text = app.metrics_text()
                self._send(200, text.encode("utf-8"),
                           PROMETHEUS_CONTENT_TYPE)
            elif path == "/events":
                self._serve_sse()
            else:
                return False
            return True
        if method == "POST":
            body = self._read_body()
            if path == "/api/pause":
                self._send_json(200, app.pause())
            elif path == "/api/resume":
                self._send_json(200, app.resume())
            elif path == "/api/step":
                seconds = body.get("seconds")
                until = body.get("until")
                self._send_json(
                    200,
                    app.step(
                        seconds=float(seconds) if seconds is not None
                        else None,
                        until=float(until) if until is not None else None,
                    ),
                )
            elif path == "/api/finish":
                self._send_json(200, app.finish())
            elif path == "/api/freeze":
                self._send_json(
                    200, app.freeze_group(self._require(body, "group"))
                )
            elif path == "/api/unfreeze":
                self._send_json(
                    200, app.unfreeze_group(self._require(body, "group"))
                )
            elif path == "/api/budgets":
                allocations = body.get("allocations")
                if not isinstance(allocations, dict):
                    raise ServiceError(
                        400, "body needs an 'allocations' object"
                    )
                self._send_json(200, app.set_budgets(allocations))
            elif path == "/api/faults":
                self._send_json(
                    200,
                    app.arm_faults(
                        scenario=body.get("scenario"), spec=body.get("spec")
                    ),
                )
            elif path == "/api/snapshot":
                self._send_json(
                    200, app.snapshot(self._require(body, "path"))
                )
            elif path == "/api/verify-snapshot":
                report = app.verify_snapshot(
                    self._require(body, "path"), checks=body.get("checks")
                )
                status = 200 if report["ok"] else 422
                if report["error"] is not None:
                    status = 422
                self._send_json(status, report)
            else:
                return False
            return True
        return False

    @staticmethod
    def _require(body: dict, key: str) -> str:
        value = body.get(key)
        if not isinstance(value, str) or not value:
            raise ServiceError(400, f"body needs a string {key!r}")
        return value

    # -- SSE ------------------------------------------------------------
    def _serve_sse(self) -> None:
        """Stream driver/control events until the client disconnects.

        Events are fanned out by the :class:`EventBus` (owned by the
        supervisor, so the stream survives driver recoveries); this
        thread only formats and writes. Every event carries its
        monotonic ``id:`` line, and a reconnecting client's
        ``Last-Event-ID`` header replays the gap from the bus's ring
        buffer -- or delivers an explicit ``reset`` marker when the gap
        fell off the ring. Keepalive comments flow when idle so a dead
        client surfaces as a broken pipe within seconds, and
        ``Connection: close`` keeps HTTP/1.1 keep-alive from pinning the
        socket open after the stream ends.
        """
        bus = self.app.bus
        last_event_id: Optional[int] = None
        raw_last = self.headers.get("Last-Event-ID")
        if raw_last is not None:
            try:
                last_event_id = int(raw_last)
            except (TypeError, ValueError):
                last_event_id = None  # ignore garbage; serve from now
        subscription = bus.subscribe(last_event_id=last_event_id)
        try:
            self.send_response(200)
            self.send_header("Content-Type", SSE_CONTENT_TYPE)
            self.send_header("Cache-Control", "no-store")
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(b": stream open\n\n")
            self.wfile.flush()
            while not self.server.shutting_down.is_set():
                try:
                    eid, doc = subscription.get(
                        timeout=SSE_KEEPALIVE_SECONDS
                    )
                except queue.Empty:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                payload = json.dumps(doc, sort_keys=True)
                if eid is not None:
                    frame = f"id: {eid}\ndata: {payload}\n\n"
                else:  # synthesized marker (e.g. replay reset): no id
                    frame = f"data: {payload}\n\n"
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client disconnected; unsubscribe below
        finally:
            bus.unsubscribe(subscription)
            self.close_connection = True


def make_server(app: ServiceApp, host: str = "127.0.0.1",
                port: int = 0) -> ServiceHTTPServer:
    """Bind the service; ``port=0`` picks an ephemeral port (tests)."""
    return ServiceHTTPServer((host, port), app)


__all__ = [
    "JSON_CONTENT_TYPE",
    "ServiceHTTPServer",
    "ServiceRequestHandler",
    "make_server",
]
