"""Write-ahead log of operator acts, and their one shared apply path.

Every mutating act the service accepts -- ``freeze``/``unfreeze``,
budget ``reallocate``, ``arm-faults`` -- flows through
:func:`apply_act`, both when a live request lands on the sim thread and
when the supervisor replays history during recovery. One code path
means replay cannot drift from live behaviour.

The log discipline (see :class:`ActWal`):

- A record is appended *after* its act applied successfully and *before*
  the HTTP 200 goes out (ack-after-durable). A crash between apply and
  append loses the act -- but the client never saw a success, so the
  recovered state is exactly what an unacknowledged request promises.
- Records carry the simulated time they executed at. Replay advances the
  restored experiment to each record's sim-time and re-applies; because
  ``engine.run(until=T)`` composes exactly (events strictly before ``T``
  fire, the clock lands on ``T``, events at ``T`` stay pending), the
  recovered trajectory is byte-identical to the uninterrupted one.
- Appends are single ``write``+``fsync`` lines
  (:func:`repro.durability.append_line_fsync`), so a torn write can
  damage at most the final line. :class:`ActWal` drops an unparseable
  tail on load (counted, never silent) and refuses corruption anywhere
  else.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.durability import append_line_fsync
from repro.faults.scenario import FaultScenario, builtin_scenarios
from repro.service.harness import ExperimentHarness, HarnessError

logger = logging.getLogger(__name__)

#: eventlog actor id for operator actions issued through the API (the
#: breaker is -1, the fleet coordinator -2)
OPERATOR_EVENT_ID = -3

#: acts the service logs and replays; anything else is rejected loudly
WAL_OPS = ("freeze", "unfreeze", "reallocate", "arm-faults")


class ActError(RuntimeError):
    """An act failed in an anticipated way (HTTP-ish status attached)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class WalError(RuntimeError):
    """The write-ahead log is corrupted beyond its repairable tail."""


class WalRecord:
    """One applied act: monotonic ``seq``, sim-time, op name, payload."""

    __slots__ = ("seq", "sim_time", "op", "payload")

    def __init__(self, seq: int, sim_time: float, op: str, payload: dict):
        self.seq = seq
        self.sim_time = sim_time
        self.op = op
        self.payload = payload

    def to_line(self) -> str:
        return json.dumps(
            {
                "seq": self.seq,
                "sim_time": self.sim_time,
                "op": self.op,
                "payload": self.payload,
            },
            sort_keys=True,
        )

    @classmethod
    def from_line(cls, line: str) -> "WalRecord":
        doc = json.loads(line)
        return cls(
            seq=int(doc["seq"]),
            sim_time=float(doc["sim_time"]),
            op=str(doc["op"]),
            payload=dict(doc["payload"]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WalRecord(seq={self.seq}, sim_time={self.sim_time}, "
            f"op={self.op!r})"
        )


class ActWal:
    """Durable JSONL act log (or an in-memory one when ``path`` is None).

    Loading tolerates exactly the damage a crash can cause: a torn final
    line (no newline, or unparseable JSON) is dropped and counted in
    ``torn_tail_dropped``. Corruption anywhere *before* the tail -- or a
    non-monotonic ``seq`` -- raises :class:`WalError`, because appends
    never rewrite earlier bytes and such damage means the file is not
    our log.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.records: List[WalRecord] = []
        self.torn_tail_dropped = 0
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        raw = self.path.read_bytes()
        if not raw:
            return
        lines = raw.split(b"\n")
        torn_tail = lines[-1] != b""  # no terminating newline
        body, tail = (lines[:-1], lines[-1]) if torn_tail else (lines[:-1], None)
        for index, line in enumerate(body):
            try:
                record = WalRecord.from_line(line.decode("utf-8"))
            except (UnicodeDecodeError, ValueError, KeyError, TypeError) as exc:
                if index == len(body) - 1 and tail is None:
                    # A complete-looking but unparseable final line: treat
                    # as the torn tail (fsync ordered, content was not).
                    self.torn_tail_dropped += 1
                    logger.warning(
                        "WAL %s: dropped unparseable final record", self.path
                    )
                    break
                raise WalError(
                    f"WAL {self.path}: corrupt record at line {index + 1}: "
                    f"{exc}"
                ) from exc
            if record.seq != self.last_seq + 1:
                raise WalError(
                    f"WAL {self.path}: seq {record.seq} after "
                    f"{self.last_seq} (expected {self.last_seq + 1})"
                )
            self.records.append(record)
        if torn_tail:
            self.torn_tail_dropped += 1
            logger.warning(
                "WAL %s: dropped torn final line (%d bytes, no newline)",
                self.path,
                len(tail),
            )

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0

    def append(self, op: str, payload: dict, sim_time: float) -> WalRecord:
        """Durably log one applied act; returns the record."""
        if op not in WAL_OPS:
            raise WalError(f"op {op!r} is not WAL-able (one of {WAL_OPS})")
        record = WalRecord(self.last_seq + 1, float(sim_time), op, payload)
        if self.path is not None:
            append_line_fsync(self.path, record.to_line())
        self.records.append(record)
        return record

    def records_after(self, seq: int) -> List[WalRecord]:
        return [record for record in self.records if record.seq > seq]


# ----------------------------------------------------------------------
# The one apply path (live requests and replay both land here)
# ----------------------------------------------------------------------
def apply_act(harness: ExperimentHarness, op: str, payload: dict) -> dict:
    """Execute one act against the live harness; sim thread only.

    Deterministic given (harness state, op, payload): replaying the same
    records against the same restored state reproduces the same
    mutations, which is what makes the WAL a recovery log rather than an
    audit trail.
    """
    if op == "freeze":
        return _set_group_frozen(harness, payload, frozen=True)
    if op == "unfreeze":
        return _set_group_frozen(harness, payload, frozen=False)
    if op == "reallocate":
        return _reallocate(harness, payload)
    if op == "arm-faults":
        return _arm_faults(harness, payload)
    raise ActError(400, f"unknown act {op!r}")


def _set_group_frozen(
    harness: ExperimentHarness, payload: dict, frozen: bool
) -> dict:
    name = payload.get("group")
    if not isinstance(name, str) or not name:
        raise ActError(400, "freeze/unfreeze needs a 'group' name")
    groups = harness.groups()
    if name not in groups:
        raise ActError(404, f"unknown group {name!r}")
    scheduler = harness.scheduler_for(name)
    changed = 0
    for server in groups[name].servers:
        if server.failed or server.powered_off:
            continue
        if frozen and not server.frozen:
            scheduler.freeze(server.server_id)
            changed += 1
        elif not frozen and server.frozen:
            scheduler.unfreeze(server.server_id)
            changed += 1
    return {
        "group": name,
        "action": "freeze" if frozen else "unfreeze",
        "servers_changed": changed,
        "sim_now": harness.engine.now,
    }


def _reallocate(harness: ExperimentHarness, payload: dict) -> dict:
    from repro.fleet.ledger import LedgerError

    allocations = payload.get("allocations")
    if not isinstance(allocations, dict) or not allocations:
        raise ActError(400, "allocations must be a non-empty object")
    try:
        requested = {
            str(name): float(watts) for name, watts in allocations.items()
        }
    except (TypeError, ValueError) as exc:
        raise ActError(
            400, f"allocations must map row names to watts: {exc}"
        ) from exc

    ledger = harness.ledger
    if ledger is None:
        raise ActError(409, "no budget ledger: this is a single-row run")
    merged = ledger.allocations()
    unknown = sorted(set(requested) - set(merged))
    if unknown:
        raise ActError(404, f"unknown rows: {unknown}")
    previous = dict(merged)
    merged.update(requested)
    try:
        moved = ledger.apply(merged)
    except LedgerError as exc:
        raise ActError(422, f"ledger rejected: {exc}") from exc
    controllers = harness.controllers()
    changed = []
    for row_name, watts in merged.items():
        if watts == previous[row_name]:
            continue
        controller = controllers.get(row_name)
        if controller is not None:
            controller.update_budget(row_name, watts)
        else:
            harness.groups()[row_name].power_budget_watts = watts
        changed.append(f"{row_name}:{previous[row_name]:.0f}->{watts:.0f}")
    harness.event_log.record(
        "budget",
        OPERATOR_EVENT_ID,
        f"operator moved={moved:.0f}W " + " ".join(changed),
    )
    return {
        "moved_watts": moved,
        "changed": changed,
        "allocations": merged,
        "sim_now": harness.engine.now,
    }


def _arm_faults(harness: ExperimentHarness, payload: dict) -> dict:
    scenario = payload.get("scenario")
    spec = payload.get("spec")
    if (scenario is None) == (spec is None):
        raise ActError(
            400, "provide exactly one of 'scenario' (name) or 'spec'"
        )
    if scenario is not None:
        registry = builtin_scenarios()
        if scenario not in registry:
            raise ActError(
                404,
                f"unknown scenario {scenario!r}; known: {sorted(registry)}",
            )
        built = registry[scenario]
    else:
        try:
            built = FaultScenario(**spec)
        except (TypeError, ValueError) as exc:
            raise ActError(400, f"invalid scenario spec: {exc}") from exc
    try:
        return harness.arm_faults(built)
    except HarnessError as exc:
        raise ActError(409, str(exc)) from exc


class WalReplayError(RuntimeError):
    """Replay diverged: a logged act failed against the restored state."""


def replay(harness: ExperimentHarness, records: List[WalRecord]) -> int:
    """Re-apply ``records`` in order, advancing to each act's sim-time.

    The harness must be restored to a state at or before the first
    record's sim-time (the checkpoint the records were logged after).
    Returns the number of acts re-applied.
    """
    applied = 0
    for record in records:
        now = harness.engine.now
        if record.sim_time < now:
            raise WalReplayError(
                f"WAL seq {record.seq} at t={record.sim_time:.1f}s is "
                f"behind the restored state (t={now:.1f}s); checkpoint "
                "and log disagree"
            )
        if record.sim_time > now:
            harness.advance(record.sim_time)
        try:
            apply_act(harness, record.op, record.payload)
        except ActError as exc:
            raise WalReplayError(
                f"WAL seq {record.seq} ({record.op}) failed on replay: "
                f"{exc.message}"
            ) from exc
        applied += 1
    return applied


__all__ = [
    "ActError",
    "ActWal",
    "OPERATOR_EVENT_ID",
    "WAL_OPS",
    "WalError",
    "WalRecord",
    "WalReplayError",
    "apply_act",
    "replay",
]
