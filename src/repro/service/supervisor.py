"""Self-healing runtime around the driver: checkpoints, WAL, watchdog.

PR 8's service put the whole control plane on one unsupervised thread;
this module is the fail-operational layer around it. The supervisor
owns everything that must *outlive* a driver -- the SSE event bus, the
act write-ahead log, the service-plane metrics registry, and the most
recent *verified* checkpoint -- and runs a watchdog thread that detects
a dead, halted, hung, or audit-escalated simulation and rebuilds a
fresh harness + :class:`~repro.service.driver.RealTimeDriver` from
checkpoint + deterministic WAL replay.

Recovery model
--------------
- **Checkpoints.** The driver encodes a snapshot frame at slice
  boundaries every ``auto_snapshot_every`` sim-seconds (plus one genesis
  frame right after start). Encoding is the only sim-thread work;
  durable write, restore-and-audit verification, rotation and manifest
  bookkeeping all happen on the watchdog thread. Only frames that
  restore into an auditor-clean state become the recovery checkpoint.
- **WAL replay.** Mutating acts are logged with their sim-time
  (:mod:`repro.service.wal`). Recovery restores the checkpoint, then
  advances to each later act's sim-time and re-applies it through the
  same ``apply_act`` path the live request used. Because ``advance()``
  composes exactly, the recovered trajectory is byte-identical to the
  uninterrupted one.
- **Hung threads.** Python threads cannot be killed, so a hung sim
  thread is signalled (``abandon``) and left behind; the new driver
  works on a *fresh object graph* restored from bytes, which the
  abandoned thread has no references into.
- **Giving up.** After ``max_recoveries`` the supervisor parks in the
  ``failed`` state: acts stay 503, observes keep serving last-known
  views -- degraded beats flapping.

The service-plane metrics (recoveries, checkpoints, WAL appends, SSE
drops) live in a *separate* :class:`~repro.telemetry.MetricsRegistry`
from the harness's own telemetry: the harness registry is pickled into
every snapshot, and counting recoveries there would make the recovered
run's bytes diverge from the uninterrupted run it must match.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from pathlib import Path
from typing import List, Optional, Tuple

from repro.durability import atomic_write_text, decode_header
from repro.service.driver import (
    DEFAULT_QUEUE_CAPACITY,
    DEFAULT_SLICE_SECONDS,
    EventBus,
    RealTimeDriver,
)
from repro.service.harness import ExperimentHarness, harness_for
from repro.service.wal import ActWal, replay
from repro.telemetry import MetricsRegistry

logger = logging.getLogger(__name__)

#: default sim-seconds between auto-snapshots (ten sim-minutes)
DEFAULT_AUTO_SNAPSHOT_EVERY = 600.0

#: supervisor states surfaced in /api/status and the probes
STATES = ("running", "recovering", "degraded", "failed", "stopped")

MANIFEST_NAME = "manifest.json"
WAL_NAME = "acts.wal"
MANIFEST_VERSION = 1


class SupervisorError(RuntimeError):
    """The supervisor cannot start or resume as asked."""


class SupervisorConfig:
    """Knobs of the self-healing layer (all have serviceable defaults)."""

    def __init__(
        self,
        state_dir: Optional[str] = None,
        auto_snapshot_every: Optional[float] = DEFAULT_AUTO_SNAPSHOT_EVERY,
        auto_snapshot_min_wall_seconds: float = 5.0,
        keep_snapshots: int = 3,
        verify_snapshots: bool = True,
        heartbeat_timeout: float = 30.0,
        watchdog_poll_seconds: float = 0.25,
        max_recoveries: int = 5,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        read_timeout: float = 30.0,
        act_timeout: float = 300.0,
    ) -> None:
        if keep_snapshots < 1:
            raise ValueError(
                f"keep_snapshots must be >= 1, got {keep_snapshots}"
            )
        if heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}"
            )
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.auto_snapshot_every = (
            float(auto_snapshot_every) if auto_snapshot_every else None
        )
        # Checkpoints bound *wall-clock* recovery loss; when simulated
        # time outruns real time (manual-step blasts), offers are
        # throttled to at most one per this many wall seconds.
        self.auto_snapshot_min_wall_seconds = float(
            auto_snapshot_min_wall_seconds
        )
        self.keep_snapshots = int(keep_snapshots)
        self.verify_snapshots = bool(verify_snapshots)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.watchdog_poll_seconds = float(watchdog_poll_seconds)
        self.max_recoveries = int(max_recoveries)
        self.queue_capacity = int(queue_capacity)
        self.read_timeout = float(read_timeout)
        self.act_timeout = float(act_timeout)


class _Checkpoint:
    """One adopted recovery point: frame bytes plus its WAL position."""

    __slots__ = ("frame", "sim_now", "wal_seq", "path", "verified")

    def __init__(self, frame: bytes, sim_now: float, wal_seq: int,
                 path: Optional[Path], verified: bool) -> None:
        self.frame = frame
        self.sim_now = sim_now
        self.wal_seq = wal_seq
        self.path = path
        self.verified = verified

    def to_doc(self) -> dict:
        return {
            "sim_now": self.sim_now,
            "wal_seq": self.wal_seq,
            "bytes": len(self.frame),
            "path": str(self.path) if self.path is not None else None,
            "verified": self.verified,
        }


def restore_experiment(frame: bytes):
    """Restore a staged experiment from frame bytes, by header kind."""
    from repro.sim.experiment import ControlledExperiment
    from repro.sim.fleet_experiment import FleetExperiment

    kind = decode_header(frame).get("kind")
    if kind == "experiment":
        return ControlledExperiment.restore(frame)
    if kind == "fleet":
        return FleetExperiment.restore(frame)
    raise SupervisorError(f"unknown snapshot kind {kind!r}")


def load_resume_state(
    config: SupervisorConfig,
) -> Tuple[ExperimentHarness, ActWal, _Checkpoint, int]:
    """Rebuild a harness from a ``--state-dir``: checkpoint + WAL replay.

    Returns ``(harness, wal, checkpoint, acts_replayed)``. Raises
    :class:`SupervisorError` when the directory holds nothing resumable.
    """
    state_dir = config.state_dir
    if state_dir is None:
        raise SupervisorError("--resume needs a --state-dir")
    manifest_path = state_dir / MANIFEST_NAME
    if not manifest_path.exists():
        raise SupervisorError(
            f"nothing to resume: no {MANIFEST_NAME} in {state_dir}"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SupervisorError(f"unreadable manifest: {exc}") from exc
    entries = [
        entry for entry in manifest.get("snapshots", [])
        if entry.get("verified")
    ]
    if not entries:
        raise SupervisorError(
            f"nothing to resume: no verified snapshot listed in {manifest_path}"
        )
    newest = entries[-1]
    frame_path = state_dir / str(newest["file"])
    frame = frame_path.read_bytes()  # decode validates the checksum below
    experiment = restore_experiment(frame)
    harness = harness_for(experiment)
    wal = ActWal(state_dir / WAL_NAME)
    checkpoint = _Checkpoint(
        frame,
        float(newest["sim_now"]),
        int(newest["wal_seq"]),
        frame_path,
        True,
    )
    replayed = replay(harness, wal.records_after(checkpoint.wal_seq))
    logger.info(
        "resumed from %s at t=%.1fs, replayed %d act(s) from the WAL",
        frame_path.name,
        checkpoint.sim_now,
        replayed,
    )
    return harness, wal, checkpoint, replayed


class DriverSupervisor:
    """Owns the driver's lifecycle; rebuilds it when it dies or hangs."""

    def __init__(
        self,
        harness: ExperimentHarness,
        mode: str = "manual",
        speedup: float = 1.0,
        slice_seconds: float = DEFAULT_SLICE_SECONDS,
        config: Optional[SupervisorConfig] = None,
        advance_hook=None,
        clock=time.monotonic,
        wal: Optional[ActWal] = None,
        initial_checkpoint: Optional[_Checkpoint] = None,
    ) -> None:
        self.config = config if config is not None else SupervisorConfig()
        self.mode = mode
        self.speedup = speedup
        self.slice_seconds = slice_seconds
        self.advance_hook = advance_hook
        self.clock = clock

        self.registry = MetricsRegistry()
        self.bus = EventBus(registry=self.registry)
        self._recoveries_counter = self.registry.counter(
            "repro_service_recoveries_total",
            "Driver recoveries performed by the supervisor",
        )
        self._checkpoints_counter = self.registry.counter(
            "repro_service_checkpoints_total",
            "Verified checkpoints adopted as the recovery point",
        )
        self._checkpoint_failures_counter = self.registry.counter(
            "repro_service_checkpoint_failures_total",
            "Auto-snapshots rejected by verification",
        )
        self._wal_counter = self.registry.counter(
            "repro_service_wal_records_total",
            "Operator acts appended to the write-ahead log",
        )

        state_dir = self.config.state_dir
        if state_dir is not None:
            state_dir.mkdir(parents=True, exist_ok=True)
        if wal is not None:
            self.wal = wal
        else:
            self.wal = ActWal(
                state_dir / WAL_NAME if state_dir is not None else None
            )

        self.harness = harness
        self._checkpoint = initial_checkpoint
        self._snap_index = self._next_snapshot_index()
        self.driver = self._build_driver(harness)

        self._lock = threading.Lock()
        self._pending: Optional[Tuple[bytes, float, int]] = None
        self._escalation: Optional[str] = None
        self._state = "stopped"
        self.recoveries = 0
        self.last_recovery_reason: Optional[str] = None
        self._stop = threading.Event()
        self._watchdog: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _build_driver(self, harness: ExperimentHarness) -> RealTimeDriver:
        return RealTimeDriver(
            harness,
            mode=self.mode,
            speedup=self.speedup,
            slice_seconds=self.slice_seconds,
            clock=self.clock,
            bus=self.bus,
            queue_capacity=self.config.queue_capacity,
            advance_hook=self.advance_hook,
            auto_snapshot_every=self.config.auto_snapshot_every,
            auto_snapshot_min_wall=self.config.auto_snapshot_min_wall_seconds,
            on_auto_snapshot=self._offer_snapshot,
        )

    def _register_escalation_hook(self) -> None:
        auditor = self.harness.auditor
        if auditor is not None:
            auditor.add_escalation_hook(self._on_escalation)

    def _on_escalation(self, violation) -> None:
        # Called on the sim thread, mid-audit: record and get out; the
        # watchdog turns the flag into a recovery.
        with self._lock:
            if self._escalation is None:
                self._escalation = str(violation)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._state != "stopped":
            raise SupervisorError(f"supervisor already {self._state}")
        self._state = "running"
        self.driver.start()
        self._register_escalation_hook()
        # Genesis checkpoint: recovery must have a restore point before
        # the first periodic auto-snapshot ever fires.
        if self._checkpoint is None:
            frame, sim_now, wal_seq = self.driver.act(
                self._capture, label="genesis-snapshot", force=True
            )
            self._adopt(frame, sim_now, wal_seq)
        self._watchdog = threading.Thread(
            target=self._watchdog_loop,
            name="repro-service-watchdog",
            daemon=True,
        )
        self._watchdog.start()

    def stop(self, snapshot_path: Optional[str] = None,
             timeout: float = 60.0) -> Optional[int]:
        """Stop watchdog first (so shutdown is not 'recovered'), then driver."""
        self._stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=10.0)
        self._state = "stopped"
        if self.driver.alive:
            return self.driver.shutdown(
                snapshot_path=snapshot_path, timeout=timeout
            )
        return None

    # ------------------------------------------------------------------
    # Status / probes
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    def ready(self) -> bool:
        """True when acts may be submitted to a live, healthy driver."""
        return (
            self._state == "running"
            and self.driver.alive
            and self.driver.fatal is None
            and self.driver.heartbeat_age() <= self.config.heartbeat_timeout
        )

    def not_ready_reason(self) -> Optional[str]:
        if self._state != "running":
            return f"supervisor state is {self._state!r}"
        if not self.driver.alive:
            return "sim thread is not running"
        if self.driver.fatal is not None:
            return f"driver halted: {self.driver.fatal}"
        age = self.driver.heartbeat_age()
        if age > self.config.heartbeat_timeout:
            return f"sim thread heartbeat is {age:.1f}s stale"
        return None

    def log_act(self, op: str, payload: dict) -> None:
        """Durably append one applied act (sim thread, post-apply)."""
        self.wal.append(op, payload, self.harness.engine.now)
        self._wal_counter.inc()

    def summary(self) -> dict:
        with self._lock:
            escalation = self._escalation
        checkpoint = self._checkpoint
        return {
            "state": self._state,
            "ready": self.ready(),
            "recoveries": self.recoveries,
            "max_recoveries": self.config.max_recoveries,
            "last_recovery_reason": self.last_recovery_reason,
            "escalation": escalation,
            "checkpoint": (
                checkpoint.to_doc() if checkpoint is not None else None
            ),
            "wal": {
                "last_seq": self.wal.last_seq,
                "records": len(self.wal.records),
                "torn_tail_dropped": self.wal.torn_tail_dropped,
                "path": (
                    str(self.wal.path) if self.wal.path is not None else None
                ),
            },
            "auto_snapshot_every": self.config.auto_snapshot_every,
            "state_dir": (
                str(self.config.state_dir)
                if self.config.state_dir is not None
                else None
            ),
        }

    # ------------------------------------------------------------------
    # Checkpointing (sim thread hands over; watchdog persists)
    # ------------------------------------------------------------------
    def _capture(self) -> Tuple[bytes, float, int]:
        return (
            self.harness.snapshot_bytes(),
            self.harness.engine.now,
            self.wal.last_seq,
        )

    def _offer_snapshot(self, frame: bytes, sim_now: float) -> None:
        # Sim thread: stash the frame and return immediately. Only the
        # newest pending frame matters; an unconsumed older one is
        # superseded.
        wal_seq = self.wal.last_seq
        with self._lock:
            self._pending = (frame, sim_now, wal_seq)

    def _take_pending(self) -> Optional[Tuple[bytes, float, int]]:
        with self._lock:
            pending, self._pending = self._pending, None
        return pending

    def _next_snapshot_index(self) -> int:
        state_dir = self.config.state_dir
        if state_dir is None or not state_dir.exists():
            return 1
        highest = 0
        for existing in state_dir.glob("auto-*.snap"):
            try:
                highest = max(highest, int(existing.stem.split("-")[1]))
            except (IndexError, ValueError):
                continue
        return highest + 1

    def _adopt(self, frame: bytes, sim_now: float, wal_seq: int) -> bool:
        """Verify, persist, rotate; make ``frame`` the recovery point."""
        if self.config.verify_snapshots and not self._verify_frame(frame):
            self._checkpoint_failures_counter.inc()
            logger.error(
                "auto-snapshot at t=%.1fs failed verification; "
                "keeping previous checkpoint",
                sim_now,
            )
            self.bus.publish(
                {
                    "type": "supervisor",
                    "action": "checkpoint-rejected",
                    "sim_now": sim_now,
                }
            )
            return False
        path: Optional[Path] = None
        state_dir = self.config.state_dir
        if state_dir is not None:
            from repro.durability import atomic_write_bytes

            path = state_dir / f"auto-{self._snap_index:06d}.snap"
            self._snap_index += 1
            atomic_write_bytes(path, frame)
        checkpoint = _Checkpoint(frame, sim_now, wal_seq, path, True)
        self._checkpoint = checkpoint
        self._checkpoints_counter.inc()
        if state_dir is not None:
            self._rotate_and_write_manifest()
        self.bus.publish(
            {
                "type": "supervisor",
                "action": "checkpoint",
                "sim_now": sim_now,
                "wal_seq": wal_seq,
                "path": str(path) if path is not None else None,
            }
        )
        return True

    def _verify_frame(self, frame: bytes) -> bool:
        """Restore a copy from bytes and run a full invariant sweep."""
        from repro.sim.audit import AuditorConfig

        try:
            experiment = restore_experiment(frame)
            auditor = experiment.build_auditor(
                AuditorConfig(sample_fraction=1.0, on_violation="record")
            )
            violations = auditor.audit(sample=False)
        except Exception:
            logger.exception("checkpoint verification crashed")
            return False
        if violations:
            logger.error(
                "checkpoint verification found %d violation(s); first: %s",
                len(violations),
                violations[0],
            )
        return not violations

    def _rotate_and_write_manifest(self) -> None:
        state_dir = self.config.state_dir
        entries: List[dict] = []
        manifest_path = state_dir / MANIFEST_NAME
        if manifest_path.exists():
            try:
                entries = json.loads(manifest_path.read_text()).get(
                    "snapshots", []
                )
            except (OSError, json.JSONDecodeError):
                entries = []
        checkpoint = self._checkpoint
        entries.append(
            {
                "file": checkpoint.path.name,
                "sim_now": checkpoint.sim_now,
                "wal_seq": checkpoint.wal_seq,
                "verified": checkpoint.verified,
            }
        )
        while len(entries) > self.config.keep_snapshots:
            stale = entries.pop(0)
            stale_path = state_dir / str(stale.get("file", ""))
            try:
                if stale_path.exists():
                    stale_path.unlink()
            except OSError:  # rotation is best-effort; manifest is truth
                logger.warning("could not remove stale %s", stale_path)
        atomic_write_text(
            manifest_path,
            json.dumps(
                {"version": MANIFEST_VERSION, "snapshots": entries},
                indent=2,
                sort_keys=True,
            ),
        )

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        while not self._stop.is_set():
            self._stop.wait(self.config.watchdog_poll_seconds)
            if self._stop.is_set():
                break
            pending = self._take_pending()
            if pending is not None:
                self._adopt(*pending)
            reason = self._failure_reason()
            if reason is not None:
                self._recover(reason)

    def _failure_reason(self) -> Optional[str]:
        if self._state != "running":
            return None
        with self._lock:
            if self._escalation is not None:
                return f"auditor escalation: {self._escalation}"
        driver = self.driver
        if not driver.alive:
            return "sim thread died"
        if driver.fatal is not None:
            return f"driver halted: {driver.fatal}"
        age = driver.heartbeat_age()
        if age > self.config.heartbeat_timeout:
            return f"sim thread hung ({age:.1f}s without a heartbeat)"
        return None

    def _recover(self, reason: str) -> None:
        self.last_recovery_reason = reason
        if self.recoveries >= self.config.max_recoveries:
            self._state = "failed"
            logger.error(
                "not recovering (%s): recovery budget exhausted after %d "
                "attempts; service stays read-only",
                reason,
                self.recoveries,
            )
            self.bus.publish(
                {"type": "supervisor", "action": "failed", "reason": reason}
            )
            return
        checkpoint = self._checkpoint
        if checkpoint is None:
            self._state = "failed"
            logger.error("not recovering (%s): no checkpoint adopted", reason)
            self.bus.publish(
                {"type": "supervisor", "action": "failed", "reason": reason}
            )
            return
        self._state = "recovering"
        logger.warning("recovering driver: %s", reason)
        self.bus.publish(
            {"type": "supervisor", "action": "recovering", "reason": reason}
        )
        old = self.driver
        was_paused = old._paused
        old.abandon()
        old._thread.join(timeout=2.0)  # best effort; a hung thread stays

        try:
            experiment = restore_experiment(checkpoint.frame)
            harness = harness_for(experiment)
            replayed = replay(
                harness, self.wal.records_after(checkpoint.wal_seq)
            )
            driver = self._build_driver(harness)
            with self._lock:
                self._escalation = None
            self.harness = harness
            self.driver = driver
            driver.start()
            if self.mode != "manual":
                driver._paused = was_paused
            self._register_escalation_hook()
        except Exception:
            logger.exception("recovery failed; service stays read-only")
            self._state = "failed"
            self.bus.publish(
                {"type": "supervisor", "action": "failed", "reason": reason}
            )
            return
        self.recoveries += 1
        self._recoveries_counter.inc()
        self._state = "running"
        logger.warning(
            "recovered: restored t=%.1fs checkpoint, replayed %d WAL act(s) "
            "(recovery %d/%d)",
            checkpoint.sim_now,
            replayed,
            self.recoveries,
            self.config.max_recoveries,
        )
        self.bus.publish(
            {
                "type": "supervisor",
                "action": "recovered",
                "reason": reason,
                "checkpoint_sim_now": checkpoint.sim_now,
                "wal_replayed": replayed,
                "recoveries": self.recoveries,
            }
        )


__all__ = [
    "DEFAULT_AUTO_SNAPSHOT_EVERY",
    "DriverSupervisor",
    "STATES",
    "SupervisorConfig",
    "SupervisorError",
    "load_resume_state",
    "restore_experiment",
]
