"""Uniform adapter over the two staged experiment harnesses.

The live control-plane service drives either a single-row
:class:`~repro.sim.experiment.ControlledExperiment` or a multi-row
:class:`~repro.sim.fleet_experiment.FleetExperiment`. Both already expose
the staged ``start()/advance()/finish()`` lifecycle and durable
snapshots; what differs is where the groups, schedulers, controllers,
breakers and the budget ledger hang off the object graph. The harness
adapters normalize that shape so the driver, the observe views and the
act operations are written once.

Everything here runs on the *simulation thread* (see
:mod:`repro.service.driver`): adapters mutate and read live experiment
state and are not thread-safe on their own.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.faults.injector import FaultInjector
from repro.faults.scenario import FaultScenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.breaker import RowBreaker
    from repro.cluster.group import ServerGroup
    from repro.core.controller import AmpereController
    from repro.core.safety import SafetySupervisor
    from repro.fleet.ledger import BudgetLedger
    from repro.monitor.power_monitor import PowerMonitor
    from repro.scheduler.omega import OmegaScheduler
    from repro.sim.eventlog import ControlEventLog
    from repro.sim.experiment import ControlledExperiment
    from repro.sim.fleet_experiment import FleetExperiment


class HarnessError(RuntimeError):
    """An act operation is not applicable to this harness."""


class ExperimentHarness(abc.ABC):
    """What the service needs from a staged experiment."""

    #: "experiment" (single-row A/B) or "fleet" (multi-row facility)
    kind: str

    # -- lifecycle (delegated to the staged experiment) ----------------
    @property
    @abc.abstractmethod
    def experiment(self):
        """The underlying staged experiment object."""

    @property
    def config(self):
        return self.experiment.config

    @property
    def end_seconds(self) -> float:
        return self.config.end_seconds

    @property
    def engine(self):
        return self.experiment_engine()

    @abc.abstractmethod
    def experiment_engine(self):
        """The simulation engine of the run."""

    def start(self) -> None:
        self.experiment.start()

    @property
    def started(self) -> bool:
        return self.experiment._started

    def advance(self, until: Optional[float] = None) -> None:
        self.experiment.advance(until)

    def finish(self):
        return self.experiment.finish()

    @property
    def finished(self) -> bool:
        return self.experiment._ran

    def save_snapshot(self, path: str) -> int:
        return self.experiment.save_snapshot(path)

    def snapshot_bytes(self) -> bytes:
        """Encode the live state as a durable frame (sim thread only)."""
        return self.experiment.snapshot()

    def build_auditor(self, config=None):
        return self.experiment.build_auditor(config)

    @abc.abstractmethod
    def result_to_dict(self, result) -> dict:
        """Serialize a finished result the way the batch CLI would."""

    # -- topology ------------------------------------------------------
    @abc.abstractmethod
    def groups(self) -> Dict[str, "ServerGroup"]:
        """Observable groups by name (rows, or the A/B split)."""

    @abc.abstractmethod
    def controlled_groups(self) -> List[str]:
        """Names of groups an Ampere controller actively steers."""

    @abc.abstractmethod
    def scheduler_for(self, group_name: str) -> "OmegaScheduler":
        """The *real* cluster scheduler owning a group's servers."""

    @abc.abstractmethod
    def controllers(self) -> Dict[str, "AmpereController"]:
        """Controllers by controlled group name."""

    @abc.abstractmethod
    def breakers(self) -> Dict[str, "RowBreaker"]:
        """Armed row breakers by group name (may be empty)."""

    @abc.abstractmethod
    def supervisors(self) -> Dict[str, "SafetySupervisor"]:
        """Safety-ladder supervisors by group name (may be empty)."""

    @property
    @abc.abstractmethod
    def monitor(self) -> "PowerMonitor":
        """The shared monitoring plane."""

    @property
    @abc.abstractmethod
    def event_log(self) -> "ControlEventLog":
        """The control-plane audit trail."""

    @property
    def ledger(self) -> Optional["BudgetLedger"]:
        """The facility budget ledger (fleet runs only)."""
        return None

    @property
    def telemetry(self):
        return self.experiment.telemetry

    @property
    def tenancy(self):
        """The live tenancy accountant (None for untenanted runs)."""
        return self.experiment.accountant

    @property
    def auditor(self):
        return self.experiment.auditor

    @property
    def build_injector(self) -> Optional[FaultInjector]:
        """The injector configured at build time, if any."""
        return self.experiment.injector

    # -- runtime fault arming ------------------------------------------
    def arm_faults(self, scenario: FaultScenario) -> dict:
        """Arm a fault scenario against the *live* run.

        The scenario's windows are interpreted relative to now (a
        scenario whose first blackout starts at t=600 begins blacking
        out ten minutes after the operator arms it). Seams that can only
        be installed at build time -- the flaky-RPC transport wrapper and
        demand-surge profile wrapping -- cannot be armed mid-run and are
        reported back as ignored rather than silently dropped.
        """
        ignored = []
        if scenario.rpc_failure_rate > 0:
            ignored.append("rpc")
        if scenario.surges:
            ignored.append("surges")
        shifted = scenario.shifted(self.engine.now)
        injector = FaultInjector(self.engine, shifted)
        self._attach_runtime_injector(injector)
        injector.arm(self.end_seconds)
        self.runtime_injectors.append(injector)
        return {
            "scenario": scenario.name,
            "armed_at": self.engine.now,
            "ignored": ignored,
        }

    @abc.abstractmethod
    def _attach_runtime_injector(self, injector: FaultInjector) -> None:
        """Attach every seam available on this harness mid-run."""


class SingleRowHarness(ExperimentHarness):
    """Adapter over the paper's controlled A/B experiment."""

    kind = "experiment"

    def __init__(self, experiment: "ControlledExperiment") -> None:
        self._experiment = experiment
        self.runtime_injectors: List[FaultInjector] = []

    @property
    def experiment(self) -> "ControlledExperiment":
        return self._experiment

    def experiment_engine(self):
        return self._experiment.testbed.engine

    def result_to_dict(self, result) -> dict:
        from repro.analysis.serialize import result_to_dict

        return result_to_dict(result, include_series=False)

    # -- topology ------------------------------------------------------
    def groups(self) -> Dict[str, "ServerGroup"]:
        exp = self._experiment
        return {
            exp.experiment_group.name: exp.experiment_group,
            exp.control_group.name: exp.control_group,
        }

    def controlled_groups(self) -> List[str]:
        if self._experiment.controller is None:
            return []
        return [self._experiment.experiment_group.name]

    def scheduler_for(self, group_name: str) -> "OmegaScheduler":
        if group_name not in self.groups():
            raise HarnessError(f"unknown group {group_name!r}")
        return self._experiment.testbed.scheduler

    def controllers(self) -> Dict[str, "AmpereController"]:
        controller = self._experiment.controller
        if controller is None:
            return {}
        return {self._experiment.experiment_group.name: controller}

    def breakers(self) -> Dict[str, "RowBreaker"]:
        breaker = self._experiment.breaker
        if breaker is None:
            return {}
        return {self._experiment.experiment_group.name: breaker}

    def supervisors(self) -> Dict[str, "SafetySupervisor"]:
        safety = self._experiment.safety
        if safety is None:
            return {}
        return {self._experiment.experiment_group.name: safety}

    @property
    def monitor(self) -> "PowerMonitor":
        return self._experiment.testbed.monitor

    @property
    def event_log(self) -> "ControlEventLog":
        return self._experiment.event_log

    def _attach_runtime_injector(self, injector: FaultInjector) -> None:
        exp = self._experiment
        injector.attach_monitor(exp.testbed.monitor)
        if exp.controller is not None:
            injector.attach_controller(exp.controller)
        injector.attach_cluster(exp.testbed.scheduler)


class FleetHarness(ExperimentHarness):
    """Adapter over the multi-row facility experiment."""

    kind = "fleet"

    def __init__(self, experiment: "FleetExperiment") -> None:
        self._experiment = experiment
        self.runtime_injectors: List[FaultInjector] = []

    @property
    def experiment(self) -> "FleetExperiment":
        return self._experiment

    def experiment_engine(self):
        return self._experiment.engine

    def result_to_dict(self, result) -> dict:
        from repro.analysis.serialize import fleet_result_to_dict

        return fleet_result_to_dict(result)

    # -- topology ------------------------------------------------------
    def groups(self) -> Dict[str, "ServerGroup"]:
        return {row.name: row for row in self._experiment.rows}

    def controlled_groups(self) -> List[str]:
        return sorted(self._experiment.controllers)

    def scheduler_for(self, group_name: str) -> "OmegaScheduler":
        for row, scheduler in zip(
            self._experiment.rows, self._experiment.schedulers
        ):
            if row.name == group_name:
                return scheduler
        raise HarnessError(f"unknown group {group_name!r}")

    def controllers(self) -> Dict[str, "AmpereController"]:
        return dict(self._experiment.controllers)

    def breakers(self) -> Dict[str, "RowBreaker"]:
        return dict(self._experiment.breakers)

    def supervisors(self) -> Dict[str, "SafetySupervisor"]:
        return dict(self._experiment.supervisors)

    @property
    def monitor(self) -> "PowerMonitor":
        return self._experiment.monitor

    @property
    def event_log(self) -> "ControlEventLog":
        return self._experiment.event_log

    @property
    def ledger(self) -> Optional["BudgetLedger"]:
        return self._experiment.ledger

    def _attach_runtime_injector(self, injector: FaultInjector) -> None:
        exp = self._experiment
        injector.attach_monitor(exp.monitor)
        if exp.coordinator is not None:
            injector.attach_coordinator(exp.coordinator)


def harness_for(experiment) -> ExperimentHarness:
    """The right adapter for a staged experiment instance."""
    from repro.sim.experiment import ControlledExperiment
    from repro.sim.fleet_experiment import FleetExperiment

    if isinstance(experiment, ControlledExperiment):
        return SingleRowHarness(experiment)
    if isinstance(experiment, FleetExperiment):
        return FleetHarness(experiment)
    raise TypeError(
        f"no service harness for {type(experiment).__name__}; expected "
        "ControlledExperiment or FleetExperiment"
    )


__all__ = [
    "ExperimentHarness",
    "FleetHarness",
    "HarnessError",
    "SingleRowHarness",
    "harness_for",
]
