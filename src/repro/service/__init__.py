"""repro.service: the live control-plane service over a staged run.

The batch harnesses answer "what happened"; this package answers "what
is happening" -- it runs a :class:`~repro.sim.experiment.ControlledExperiment`
or :class:`~repro.sim.fleet_experiment.FleetExperiment` as a long-lived
process and exposes observe/act surfaces over HTTP, stdlib-only.

Layers, bottom up:

- :mod:`repro.service.harness` -- one adapter shape over both staged
  experiment kinds (groups, controllers, breakers, ledger, eventlog).
- :mod:`repro.service.driver` -- the single-writer simulation thread
  with its bounded command queue; real, accelerated and manual-step
  pacing; heartbeat and auto-snapshot hooks.
- :mod:`repro.service.wal` -- the write-ahead log of operator acts and
  the one ``apply_act`` path shared by live requests and replay.
- :mod:`repro.service.supervisor` -- verified checkpoints, the watchdog
  that rebuilds a dead/hung driver from checkpoint + WAL replay, and
  the service-plane metrics registry.
- :mod:`repro.service.views` -- observe-side JSON documents (NaN-safe).
- :mod:`repro.service.app` -- validated act operations (freeze, budget
  reallocation, fault arming, snapshot/verify), observe dispatch with
  read-only degraded mode, health/readiness probes.
- :mod:`repro.service.api` -- ThreadingHTTPServer routing, SSE bridge
  with ``Last-Event-ID`` replay, backpressure mapping (429/503 +
  Retry-After), the Prometheus endpoint.
- :mod:`repro.service.dashboard` -- the zero-dependency HTML operator
  console served at ``/``.

Manual-step mode issues exactly the batch ``advance()`` sequence, so a
service-driven run is byte-identical to ``run()`` -- pinned in
tests/test_service.py on both engine backends -- and a crash-recovered
run is byte-identical to an uninterrupted one (tests/
test_service_resilience.py).
"""

from __future__ import annotations

import logging
import threading
from typing import Optional

from repro.service.api import ServiceHTTPServer, make_server
from repro.service.app import ServiceApp, ServiceError
from repro.service.driver import (
    DriverBusy,
    DriverError,
    DriverTimeout,
    EventBus,
    RealTimeDriver,
)
from repro.service.harness import (
    ExperimentHarness,
    FleetHarness,
    HarnessError,
    SingleRowHarness,
    harness_for,
)
from repro.service.supervisor import (
    DriverSupervisor,
    SupervisorConfig,
    SupervisorError,
    load_resume_state,
)
from repro.service.wal import ActWal, apply_act

logger = logging.getLogger(__name__)


class ServiceHandle:
    """One wired service instance: supervisor + app + HTTP server.

    The single entry point the CLI and the tests share, so both always
    exercise the same wiring. ``start()`` launches the sim thread, the
    supervision watchdog and the HTTP accept loop; ``stop()`` tears them
    down in the only safe order (stop accepting, stop the watchdog,
    write the final snapshot from the sim thread, stop the sim thread,
    close sockets).
    """

    def __init__(self, supervisor: DriverSupervisor, app: ServiceApp,
                 httpd: ServiceHTTPServer) -> None:
        self.supervisor = supervisor
        self.app = app
        self.httpd = httpd
        self._http_thread: Optional[threading.Thread] = None

    # The driver/harness pair is volatile across recoveries; route every
    # access through the supervisor so callers never hold a stale one.
    @property
    def driver(self) -> RealTimeDriver:
        return self.supervisor.driver

    @property
    def harness(self) -> ExperimentHarness:
        return self.supervisor.harness

    @property
    def address(self) -> "tuple[str, int]":
        """The bound ``(host, port)`` (resolves ephemeral port 0)."""
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        self.supervisor.start()
        self._http_thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-service-http",
            daemon=True,
        )
        self._http_thread.start()
        logger.info("service listening on %s", self.url)

    def stop(self, snapshot_path: Optional[str] = None) -> Optional[int]:
        """Graceful teardown; returns final snapshot size when written."""
        self.httpd.shutting_down.set()
        written = self.supervisor.stop(snapshot_path=snapshot_path)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=10.0)
        return written

    def __enter__(self) -> "ServiceHandle":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def build_service(
    experiment=None,
    mode: str = "manual",
    speedup: float = 60.0,
    host: str = "127.0.0.1",
    port: int = 0,
    slice_seconds: float = 60.0,
    supervisor_config: Optional[SupervisorConfig] = None,
    resume: bool = False,
    advance_hook=None,
) -> ServiceHandle:
    """Wire a staged experiment into a ready-to-start supervised service.

    ``resume=True`` ignores ``experiment`` and rebuilds the harness from
    the supervisor config's ``state_dir`` (newest verified checkpoint
    plus WAL replay). Supervision is always on; without a ``state_dir``
    the checkpoints and the WAL simply live in memory, which still
    recovers from driver crashes and hangs (just not from a killed
    process).
    """
    config = supervisor_config or SupervisorConfig()
    if resume:
        harness, wal, checkpoint, _ = load_resume_state(config)
        supervisor = DriverSupervisor(
            harness,
            mode=mode,
            speedup=speedup,
            slice_seconds=slice_seconds,
            config=config,
            advance_hook=advance_hook,
            wal=wal,
            initial_checkpoint=checkpoint,
        )
    else:
        if experiment is None:
            raise SupervisorError(
                "build_service needs an experiment (or resume=True)"
            )
        harness = harness_for(experiment)
        supervisor = DriverSupervisor(
            harness,
            mode=mode,
            speedup=speedup,
            slice_seconds=slice_seconds,
            config=config,
            advance_hook=advance_hook,
        )
    app = ServiceApp(supervisor)
    httpd = make_server(app, host=host, port=port)
    return ServiceHandle(supervisor, app, httpd)


__all__ = [
    "ActWal",
    "DriverBusy",
    "DriverError",
    "DriverSupervisor",
    "DriverTimeout",
    "EventBus",
    "ExperimentHarness",
    "FleetHarness",
    "HarnessError",
    "RealTimeDriver",
    "ServiceApp",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceHandle",
    "SingleRowHarness",
    "SupervisorConfig",
    "SupervisorError",
    "apply_act",
    "build_service",
    "harness_for",
    "load_resume_state",
    "make_server",
]
