"""repro.service: the live control-plane service over a staged run.

The batch harnesses answer "what happened"; this package answers "what
is happening" -- it runs a :class:`~repro.sim.experiment.ControlledExperiment`
or :class:`~repro.sim.fleet_experiment.FleetExperiment` as a long-lived
process and exposes observe/act surfaces over HTTP, stdlib-only.

Layers, bottom up:

- :mod:`repro.service.harness` -- one adapter shape over both staged
  experiment kinds (groups, controllers, breakers, ledger, eventlog).
- :mod:`repro.service.driver` -- the single-writer simulation thread
  with its command queue; real, accelerated and manual-step pacing.
- :mod:`repro.service.views` -- observe-side JSON documents (NaN-safe).
- :mod:`repro.service.app` -- validated act operations (freeze, budget
  reallocation, fault arming, snapshot/verify) and observe dispatch.
- :mod:`repro.service.api` -- ThreadingHTTPServer routing, SSE bridge,
  the Prometheus endpoint.
- :mod:`repro.service.dashboard` -- the zero-dependency HTML operator
  console served at ``/``.

Manual-step mode issues exactly the batch ``advance()`` sequence, so a
service-driven run is byte-identical to ``run()`` -- pinned in
tests/test_service.py on both engine backends.
"""

from __future__ import annotations

import logging
import threading
from typing import Optional

from repro.service.api import ServiceHTTPServer, make_server
from repro.service.app import ServiceApp, ServiceError
from repro.service.driver import DriverError, EventBus, RealTimeDriver
from repro.service.harness import (
    ExperimentHarness,
    FleetHarness,
    HarnessError,
    SingleRowHarness,
    harness_for,
)

logger = logging.getLogger(__name__)


class ServiceHandle:
    """One wired service instance: harness + driver + app + HTTP server.

    The single entry point the CLI and the tests share, so both always
    exercise the same wiring. ``start()`` launches the sim thread and
    the HTTP accept loop; ``stop()`` tears both down in the only safe
    order (stop accepting, write the final snapshot from the sim
    thread, stop the sim thread, close sockets).
    """

    def __init__(self, harness: ExperimentHarness, driver: RealTimeDriver,
                 app: ServiceApp, httpd: ServiceHTTPServer) -> None:
        self.harness = harness
        self.driver = driver
        self.app = app
        self.httpd = httpd
        self._http_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> "tuple[str, int]":
        """The bound ``(host, port)`` (resolves ephemeral port 0)."""
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        self.driver.start()
        self._http_thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-service-http",
            daemon=True,
        )
        self._http_thread.start()
        logger.info("service listening on %s", self.url)

    def stop(self, snapshot_path: Optional[str] = None) -> Optional[int]:
        """Graceful teardown; returns final snapshot size when written."""
        self.httpd.shutting_down.set()
        written = self.driver.shutdown(snapshot_path=snapshot_path)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=10.0)
        return written

    def __enter__(self) -> "ServiceHandle":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def build_service(
    experiment,
    mode: str = "manual",
    speedup: float = 60.0,
    host: str = "127.0.0.1",
    port: int = 0,
    slice_seconds: float = 60.0,
) -> ServiceHandle:
    """Wire a staged experiment into a ready-to-start service."""
    harness = harness_for(experiment)
    driver = RealTimeDriver(
        harness, mode=mode, speedup=speedup, slice_seconds=slice_seconds
    )
    app = ServiceApp(harness, driver)
    httpd = make_server(app, host=host, port=port)
    return ServiceHandle(harness, driver, app, httpd)


__all__ = [
    "DriverError",
    "EventBus",
    "ExperimentHarness",
    "FleetHarness",
    "HarnessError",
    "RealTimeDriver",
    "ServiceApp",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceHandle",
    "SingleRowHarness",
    "build_service",
    "harness_for",
    "make_server",
]
