"""ServiceApp: the operations the REST API exposes, supervisor-mediated.

One layer below the HTTP handler and one above the driver: every public
method validates its inputs, then submits a closure to the current
:class:`~repro.service.driver.RealTimeDriver` so it executes on the
simulation thread. The HTTP layer never touches experiment state
directly, and the closures here are the *only* mutation paths besides
the driver's own pacing.

The app holds the :class:`~repro.service.supervisor.DriverSupervisor`,
not a driver, because the driver is *replaceable*: after a recovery the
supervisor swaps in a rebuilt one and requests keep flowing. Two
consequences shape this module:

- **Acts gate on readiness.** While the supervisor is recovering (or
  parked in ``failed``), mutations are refused with a 503 +
  ``Retry-After`` instead of being queued against a dead driver.
- **Observes degrade instead of dying.** Every successful live read is
  cached per view; when the driver is unavailable the cache is served
  with ``"degraded": true`` stamped on it, so dashboards and probes
  keep answering with last-known state through an entire recovery.

Mutating acts flow through :func:`repro.service.wal.apply_act` and are
appended to the supervisor's write-ahead log *after* they apply and
*before* the HTTP 200 goes out -- the ack-after-durable contract the
recovery replay depends on.

Raises :class:`ServiceError` with an HTTP-ish status code for every
anticipated failure (unknown group, fleet-only operation on a
single-row run, invalid budgets) so the handler can map errors without
pattern-matching message strings.
"""

from __future__ import annotations

import logging
import threading
from typing import Callable, Dict, Optional, Sequence

from repro.faults.scenario import builtin_scenarios
from repro.service import views
from repro.service.driver import DriverBusy, DriverError, DriverTimeout
from repro.service.supervisor import DriverSupervisor
from repro.service.wal import ActError, OPERATOR_EVENT_ID, apply_act

logger = logging.getLogger(__name__)

__all__ = ["OPERATOR_EVENT_ID", "ServiceApp", "ServiceError"]


class ServiceError(RuntimeError):
    """An API operation failed in an anticipated way."""

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


class ServiceApp:
    """Everything the REST API can observe and do, in one place."""

    def __init__(self, supervisor: DriverSupervisor) -> None:
        self.supervisor = supervisor
        self._cache_lock = threading.Lock()
        self._view_cache: Dict[str, dict] = {}
        self._metrics_cache: Optional[str] = None

    # The driver and harness are *volatile*: recovery replaces both.
    @property
    def driver(self):
        return self.supervisor.driver

    @property
    def harness(self):
        return self.supervisor.harness

    @property
    def bus(self):
        return self.supervisor.bus

    # ------------------------------------------------------------------
    # Observe (read-only commands; degrade to cache when not ready)
    # ------------------------------------------------------------------
    def _observe(self, key: str, build: Callable[[], object],
                 label: Optional[str] = None):
        supervisor = self.supervisor
        if not supervisor.ready():
            return self._cached(key)
        try:
            doc = supervisor.driver.read(
                build,
                label=label or key,
                timeout=supervisor.config.read_timeout,
            )
        except (DriverBusy, DriverTimeout, DriverError):
            # Dead, busy or mid-recovery driver: last-known view beats
            # an error page for a read.
            return self._cached(key)
        if isinstance(doc, dict):
            with self._cache_lock:
                self._view_cache[key] = doc
        return doc

    def _cached(self, key: str) -> dict:
        with self._cache_lock:
            entry = self._view_cache.get(key)
        if entry is None:
            raise ServiceError(
                503,
                "service is recovering and has no cached view for "
                f"{key!r} yet",
                retry_after=2.0,
            )
        doc = dict(entry)
        doc["degraded"] = True
        return doc

    def status(self) -> dict:
        supervisor = self.supervisor
        doc = self._observe("status", lambda: self.driver._status_doc())
        doc = dict(doc)
        doc["supervisor"] = supervisor.summary()
        return doc

    def config(self) -> dict:
        return self._observe(
            "config", lambda: views.config_doc(self.harness)
        )

    def state(self) -> dict:
        return self._observe("state", lambda: views.state_doc(self.harness))

    def group(self, name: str) -> dict:
        doc = self._observe(
            f"group:{name}",
            lambda: views.group_doc(self.harness, name),
            label="group",
        )
        if doc is None:
            raise ServiceError(404, f"unknown group {name!r}")
        return doc

    def controllers(self) -> dict:
        return self._observe(
            "controllers", lambda: views.controllers_doc(self.harness)
        )

    def ledger(self) -> dict:
        doc = self._observe(
            "ledger", lambda: views.ledger_doc(self.harness)
        )
        if doc is None:
            raise ServiceError(
                404, "no budget ledger: this is a single-row run"
            )
        return doc

    def tenants(self) -> dict:
        doc = self._observe(
            "tenants", lambda: views.tenants_doc(self.harness)
        )
        if doc is None:
            raise ServiceError(404, "no tenancy: this run is untenanted")
        return doc

    def events(self, limit: int = 100, kind: Optional[str] = None) -> dict:
        return self._observe(
            f"events:{limit}:{kind}",
            lambda: views.events_doc(self.harness, limit=limit, kind=kind),
            label="events",
        )

    def series(self, window_seconds: float = 3600.0) -> dict:
        return self._observe(
            f"series:{window_seconds}",
            lambda: views.series_doc(self.harness, window_seconds),
            label="series",
        )

    def safety(self) -> dict:
        return self._observe("safety", lambda: views.safety_doc(self.harness))

    def faults(self) -> dict:
        return self._observe("faults", lambda: views.faults_doc(self.harness))

    def audit(self) -> dict:
        return self._observe("audit", lambda: views.audit_doc(self.harness))

    def result(self) -> dict:
        doc = self.driver.result_doc
        if doc is None:
            raise ServiceError(404, "experiment has not finished yet")
        return views.jsonsafe(doc)

    def metrics_text(self) -> str:
        """Both registries in Prometheus text format.

        The harness registry (simulation metrics, pickled into
        snapshots) is read on the sim thread; the supervisor's
        service-plane registry (recoveries, checkpoints, WAL appends,
        SSE drops) is lock-free to read and always available -- so
        ``/metrics`` stays partially up even while recovering.
        """
        from repro.telemetry import render_prometheus

        supervisor = self.supervisor
        harness_text: Optional[str] = None
        if supervisor.ready():
            try:
                harness_text = supervisor.driver.read(
                    lambda: render_prometheus(self.harness.telemetry.registry),
                    label="metrics",
                    timeout=supervisor.config.read_timeout,
                )
                with self._cache_lock:
                    self._metrics_cache = harness_text
            except (DriverBusy, DriverTimeout, DriverError):
                harness_text = None
        if harness_text is None:
            with self._cache_lock:
                harness_text = self._metrics_cache or ""
        service_text = render_prometheus(supervisor.registry)
        if harness_text and not harness_text.endswith("\n"):
            harness_text += "\n"
        return harness_text + service_text

    def scenarios(self) -> dict:
        registry = builtin_scenarios()
        return {
            "scenarios": {
                name: scenario.describe()
                for name, scenario in sorted(registry.items())
            }
        }

    # -- probes ---------------------------------------------------------
    def healthz(self) -> dict:
        """Liveness: the process is serving; says nothing about the sim."""
        return {"ok": True, "state": self.supervisor.state}

    def readyz(self) -> "tuple[int, dict]":
        """Readiness: 200 only when acts would be accepted right now."""
        supervisor = self.supervisor
        reason = supervisor.not_ready_reason()
        doc = {
            "ready": reason is None,
            "state": supervisor.state,
            "recoveries": supervisor.recoveries,
        }
        if reason is not None:
            doc["reason"] = reason
            return 503, doc
        return 200, doc

    # ------------------------------------------------------------------
    # Act (mutating commands; refused while not ready)
    # ------------------------------------------------------------------
    def _require_ready(self) -> None:
        supervisor = self.supervisor
        reason = supervisor.not_ready_reason()
        if reason is not None:
            raise ServiceError(
                503,
                f"acts are disabled while degraded: {reason}",
                retry_after=2.0,
            )

    def pause(self) -> dict:
        self._require_ready()
        return self.driver.pause()

    def resume(self) -> dict:
        self._require_ready()
        try:
            return self.driver.resume()
        except (DriverBusy, DriverTimeout):
            raise
        except DriverError as exc:
            raise ServiceError(409, str(exc)) from exc

    def step(self, seconds: Optional[float] = None,
             until: Optional[float] = None) -> dict:
        self._require_ready()
        try:
            return self.driver.step(seconds=seconds, until=until)
        except (DriverBusy, DriverTimeout):
            raise
        except DriverError as exc:
            raise ServiceError(409, str(exc)) from exc

    def finish(self) -> dict:
        self._require_ready()
        try:
            return self.driver.finish()
        except (DriverBusy, DriverTimeout):
            raise
        except DriverError as exc:
            raise ServiceError(409, str(exc)) from exc

    def _logged_act(self, op: str, payload: dict, label: str) -> dict:
        """Apply one act on the sim thread and WAL it before acking."""
        self._require_ready()
        supervisor = self.supervisor
        driver = supervisor.driver

        def closure():
            doc = apply_act(supervisor.harness, op, payload)
            # Durable before the 200: a crash after this line replays
            # the act; a crash before it never acknowledged anything.
            supervisor.log_act(op, payload)
            return doc

        try:
            return views.jsonsafe(
                driver.act(
                    closure, label=label,
                    timeout=supervisor.config.act_timeout,
                )
            )
        except ActError as exc:
            raise ServiceError(exc.status, exc.message) from exc

    def freeze_group(self, name: str) -> dict:
        return self._logged_act("freeze", {"group": name}, "freeze")

    def unfreeze_group(self, name: str) -> dict:
        return self._logged_act("unfreeze", {"group": name}, "unfreeze")

    def set_budgets(self, allocations: Dict[str, float]) -> dict:
        """Reallocate row budgets through the ledger (fleet runs only).

        ``allocations`` may be partial; unmentioned rows keep their
        current allocation. The ledger enforces conservation, floors and
        feed ratings atomically -- an invalid division is rejected
        wholesale with a 422 and nothing changes.
        """
        if not isinstance(allocations, dict) or not allocations:
            raise ServiceError(400, "allocations must be a non-empty object")
        return self._logged_act(
            "reallocate", {"allocations": allocations}, "budgets"
        )

    def arm_faults(self, scenario: Optional[str] = None,
                   spec: Optional[dict] = None) -> dict:
        """Arm a builtin scenario by name, or an inline scenario spec.

        Window times in the scenario are interpreted relative to *now*
        (see :meth:`ExperimentHarness.arm_faults`).
        """
        payload: Dict[str, object] = {}
        if scenario is not None:
            payload["scenario"] = scenario
        if spec is not None:
            payload["spec"] = spec
        return self._logged_act("arm-faults", payload, "arm-faults")

    def snapshot(self, path: str) -> dict:
        if not path:
            raise ServiceError(400, "snapshot needs a 'path'")
        self._require_ready()
        try:
            return views.jsonsafe(self.driver.snapshot(path))
        except OSError as exc:
            raise ServiceError(422, f"cannot write snapshot: {exc}") from exc

    def verify_snapshot(self, path: str,
                        checks: Optional[Sequence[str]] = None) -> dict:
        """Restore-and-audit a durable frame (shared with the CLI).

        Runs off the sim thread on purpose: verification restores a
        *separate* experiment instance from disk and never touches the
        live run, so hammering it cannot stall the simulation.
        """
        if not path:
            raise ServiceError(400, "verify-snapshot needs a 'path'")
        from repro.sim.verify import verify_snapshot_file

        report = verify_snapshot_file(path, checks=checks)
        return views.jsonsafe(report.to_dict())
