"""ServiceApp: the operations the REST API exposes, driver-mediated.

One layer below the HTTP handler and one above the driver: every public
method validates its inputs, then submits a closure to the
:class:`~repro.service.driver.RealTimeDriver` so it executes on the
simulation thread. The HTTP layer never touches experiment state
directly, and the closures here are the *only* mutation paths besides
the driver's own pacing.

Raises :class:`ServiceError` with an HTTP-ish status code for every
anticipated failure (unknown group, fleet-only operation on a
single-row run, invalid budgets) so the handler can map errors without
pattern-matching message strings.
"""

from __future__ import annotations

import logging
from typing import Dict, Optional, Sequence

from repro.faults.scenario import FaultScenario, builtin_scenarios
from repro.service import views
from repro.service.driver import DriverError, RealTimeDriver
from repro.service.harness import ExperimentHarness, HarnessError

logger = logging.getLogger(__name__)

#: eventlog actor id for operator actions issued through the API (the
#: breaker is -1, the fleet coordinator -2)
OPERATOR_EVENT_ID = -3


class ServiceError(RuntimeError):
    """An API operation failed in an anticipated way."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ServiceApp:
    """Everything the REST API can observe and do, in one place."""

    def __init__(self, harness: ExperimentHarness,
                 driver: RealTimeDriver) -> None:
        self.harness = harness
        self.driver = driver

    # ------------------------------------------------------------------
    # Observe (read-only commands)
    # ------------------------------------------------------------------
    def status(self) -> dict:
        return self.driver.status()

    def config(self) -> dict:
        return self.driver.read(
            lambda: views.config_doc(self.harness), label="config"
        )

    def state(self) -> dict:
        return self.driver.read(
            lambda: views.state_doc(self.harness), label="state"
        )

    def group(self, name: str) -> dict:
        doc = self.driver.read(
            lambda: views.group_doc(self.harness, name), label="group"
        )
        if doc is None:
            raise ServiceError(404, f"unknown group {name!r}")
        return doc

    def controllers(self) -> dict:
        return self.driver.read(
            lambda: views.controllers_doc(self.harness), label="controllers"
        )

    def ledger(self) -> dict:
        doc = self.driver.read(
            lambda: views.ledger_doc(self.harness), label="ledger"
        )
        if doc is None:
            raise ServiceError(
                404, "no budget ledger: this is a single-row run"
            )
        return doc

    def events(self, limit: int = 100, kind: Optional[str] = None) -> dict:
        return self.driver.read(
            lambda: views.events_doc(self.harness, limit=limit, kind=kind),
            label="events",
        )

    def series(self, window_seconds: float = 3600.0) -> dict:
        return self.driver.read(
            lambda: views.series_doc(self.harness, window_seconds),
            label="series",
        )

    def safety(self) -> dict:
        return self.driver.read(
            lambda: views.safety_doc(self.harness), label="safety"
        )

    def faults(self) -> dict:
        return self.driver.read(
            lambda: views.faults_doc(self.harness), label="faults"
        )

    def audit(self) -> dict:
        return self.driver.read(
            lambda: views.audit_doc(self.harness), label="audit"
        )

    def result(self) -> dict:
        doc = self.driver.result_doc
        if doc is None:
            raise ServiceError(404, "experiment has not finished yet")
        return views.jsonsafe(doc)

    def metrics_text(self) -> str:
        """The telemetry registry in Prometheus text format."""
        from repro.telemetry import render_prometheus

        return self.driver.read(
            lambda: render_prometheus(self.harness.telemetry.registry),
            label="metrics",
        )

    def scenarios(self) -> dict:
        registry = builtin_scenarios()
        return {
            "scenarios": {
                name: scenario.describe()
                for name, scenario in sorted(registry.items())
            }
        }

    # ------------------------------------------------------------------
    # Act (mutating commands)
    # ------------------------------------------------------------------
    def pause(self) -> dict:
        return self.driver.pause()

    def resume(self) -> dict:
        try:
            return self.driver.resume()
        except DriverError as exc:
            raise ServiceError(409, str(exc)) from exc

    def step(self, seconds: Optional[float] = None,
             until: Optional[float] = None) -> dict:
        try:
            return self.driver.step(seconds=seconds, until=until)
        except DriverError as exc:
            raise ServiceError(409, str(exc)) from exc

    def finish(self) -> dict:
        try:
            return self.driver.finish()
        except DriverError as exc:
            raise ServiceError(409, str(exc)) from exc

    def freeze_group(self, name: str) -> dict:
        return self._set_group_frozen(name, frozen=True)

    def unfreeze_group(self, name: str) -> dict:
        return self._set_group_frozen(name, frozen=False)

    def _set_group_frozen(self, name: str, frozen: bool) -> dict:
        def op():
            groups = self.harness.groups()
            if name not in groups:
                raise ServiceError(404, f"unknown group {name!r}")
            scheduler = self.harness.scheduler_for(name)
            changed = 0
            for server in groups[name].servers:
                if server.failed or server.powered_off:
                    continue
                if frozen and not server.frozen:
                    scheduler.freeze(server.server_id)
                    changed += 1
                elif not frozen and server.frozen:
                    scheduler.unfreeze(server.server_id)
                    changed += 1
            return {
                "group": name,
                "action": "freeze" if frozen else "unfreeze",
                "servers_changed": changed,
                "sim_now": self.harness.engine.now,
            }

        return self.driver.act(op, label="freeze")

    def set_budgets(self, allocations: Dict[str, float]) -> dict:
        """Reallocate row budgets through the ledger (fleet runs only).

        ``allocations`` may be partial; unmentioned rows keep their
        current allocation. The ledger enforces conservation, floors and
        feed ratings atomically -- an invalid division is rejected
        wholesale with a 422 and nothing changes.
        """
        if not allocations:
            raise ServiceError(400, "allocations must be a non-empty object")
        try:
            requested = {
                str(name): float(watts)
                for name, watts in allocations.items()
            }
        except (TypeError, ValueError) as exc:
            raise ServiceError(
                400, f"allocations must map row names to watts: {exc}"
            ) from exc

        def op():
            from repro.fleet.ledger import LedgerError

            ledger = self.harness.ledger
            if ledger is None:
                raise ServiceError(
                    409, "no budget ledger: this is a single-row run"
                )
            merged = ledger.allocations()
            unknown = sorted(set(requested) - set(merged))
            if unknown:
                raise ServiceError(404, f"unknown rows: {unknown}")
            previous = dict(merged)
            merged.update(requested)
            try:
                moved = ledger.apply(merged)
            except LedgerError as exc:
                raise ServiceError(422, f"ledger rejected: {exc}") from exc
            controllers = self.harness.controllers()
            changed = []
            for row_name, watts in merged.items():
                if watts == previous[row_name]:
                    continue
                controller = controllers.get(row_name)
                if controller is not None:
                    controller.update_budget(row_name, watts)
                else:
                    self.harness.groups()[row_name].power_budget_watts = watts
                changed.append(
                    f"{row_name}:{previous[row_name]:.0f}->{watts:.0f}"
                )
            self.harness.event_log.record(
                "budget",
                OPERATOR_EVENT_ID,
                f"operator moved={moved:.0f}W " + " ".join(changed),
            )
            return {
                "moved_watts": moved,
                "changed": changed,
                "allocations": merged,
                "sim_now": self.harness.engine.now,
            }

        return views.jsonsafe(self.driver.act(op, label="budgets"))

    def arm_faults(self, scenario: Optional[str] = None,
                   spec: Optional[dict] = None) -> dict:
        """Arm a builtin scenario by name, or an inline scenario spec.

        Window times in the scenario are interpreted relative to *now*
        (see :meth:`ExperimentHarness.arm_faults`).
        """
        if (scenario is None) == (spec is None):
            raise ServiceError(
                400, "provide exactly one of 'scenario' (name) or 'spec'"
            )
        if scenario is not None:
            registry = builtin_scenarios()
            if scenario not in registry:
                raise ServiceError(
                    404,
                    f"unknown scenario {scenario!r}; "
                    f"known: {sorted(registry)}",
                )
            built = registry[scenario]
        else:
            try:
                built = FaultScenario(**spec)
            except (TypeError, ValueError) as exc:
                raise ServiceError(400, f"invalid scenario spec: {exc}") from exc

        def op():
            try:
                return self.harness.arm_faults(built)
            except HarnessError as exc:
                raise ServiceError(409, str(exc)) from exc

        return views.jsonsafe(self.driver.act(op, label="arm-faults"))

    def snapshot(self, path: str) -> dict:
        if not path:
            raise ServiceError(400, "snapshot needs a 'path'")
        try:
            return views.jsonsafe(self.driver.snapshot(path))
        except OSError as exc:
            raise ServiceError(422, f"cannot write snapshot: {exc}") from exc

    def verify_snapshot(self, path: str,
                        checks: Optional[Sequence[str]] = None) -> dict:
        """Restore-and-audit a durable frame (shared with the CLI).

        Runs off the sim thread on purpose: verification restores a
        *separate* experiment instance from disk and never touches the
        live run, so hammering it cannot stall the simulation.
        """
        if not path:
            raise ServiceError(400, "verify-snapshot needs a 'path'")
        from repro.sim.verify import verify_snapshot_file

        report = verify_snapshot_file(path, checks=checks)
        return views.jsonsafe(report.to_dict())


__all__ = ["OPERATOR_EVENT_ID", "ServiceApp", "ServiceError"]
