"""The zero-dependency operator dashboard, served at ``/``.

One self-contained HTML document: inline CSS, inline JS, no external
assets, no build step, no framework -- it must render from a headless
box over an SSH tunnel with nothing but the service itself. The page
polls the JSON API on a fixed cadence for state (charts, masks, the
safety ladder) and rides the SSE ``/events`` stream for the live
control-plane log.

Charts are hand-rolled ``<canvas>`` line plots: a power trace per group
with its budget as a dashed horizontal, exactly the paper's
Figure-7-style view of Ampere holding power under the provisioned line.
"""

from __future__ import annotations

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>ampere-repro live</title>
<style>
  :root {
    --bg: #11151c; --panel: #1a2029; --border: #2a3341;
    --text: #cfd8e3; --dim: #7a8699; --accent: #5ab0f0;
    --ok: #46c28e; --warn: #e0b44c; --crit: #e0784c; --shed: #e04c5a;
  }
  * { box-sizing: border-box; }
  body { margin: 0; background: var(--bg); color: var(--text);
         font: 13px/1.45 ui-monospace, SFMono-Regular, Menlo, monospace; }
  header { display: flex; align-items: baseline; gap: 1.2em;
           padding: 10px 16px; border-bottom: 1px solid var(--border);
           flex-wrap: wrap; }
  header h1 { font-size: 15px; margin: 0; color: var(--accent); }
  header .stat b { color: var(--text); }
  header .stat { color: var(--dim); }
  #grid { display: grid; gap: 12px; padding: 12px 16px;
          grid-template-columns: 2fr 1fr; align-items: start; }
  .panel { background: var(--panel); border: 1px solid var(--border);
           border-radius: 6px; padding: 10px 12px; }
  .panel h2 { margin: 0 0 8px; font-size: 12px; text-transform: uppercase;
              letter-spacing: .08em; color: var(--dim); }
  canvas.chart { width: 100%; height: 180px; display: block; }
  .legend { display: flex; gap: 1em; margin-top: 4px; color: var(--dim);
            flex-wrap: wrap; }
  .legend .budget { color: var(--warn); }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: right; padding: 2px 8px; border-bottom:
           1px solid var(--border); }
  th:first-child, td:first-child { text-align: left; }
  th { color: var(--dim); font-weight: normal; }
  .ladder { display: inline-block; padding: 1px 8px; border-radius: 3px;
            color: #11151c; font-weight: bold; }
  .ladder.NORMAL { background: var(--ok); }
  .ladder.WARNING { background: var(--warn); }
  .ladder.CRITICAL { background: var(--crit); }
  .ladder.SHED { background: var(--shed); }
  .sup { display: inline-block; padding: 1px 8px; border-radius: 3px;
         color: #11151c; font-weight: bold; }
  .sup.running { background: var(--ok); }
  .sup.recovering, .sup.degraded { background: var(--warn); }
  .sup.failed, .sup.stopped { background: var(--shed); }
  .masks { display: flex; flex-direction: column; gap: 8px; }
  .maskrow .label { color: var(--dim); margin-bottom: 2px; }
  .cells { display: flex; flex-wrap: wrap; gap: 2px; }
  .cell { width: 9px; height: 9px; border-radius: 2px; }
  .cell.idle { background: #31455c; }
  .cell.frozen { background: var(--accent); }
  .cell.capped { background: var(--warn); }
  .cell.failed { background: var(--shed); }
  .cell.off { background: #000; border: 1px solid var(--border); }
  #log { max-height: 260px; overflow-y: auto; }
  #log div { white-space: nowrap; }
  #log .t { color: var(--dim); }
  #log .kind { color: var(--accent); }
  .controls { display: flex; gap: 8px; flex-wrap: wrap; margin-top: 6px; }
  button, select, input { background: #222b38; color: var(--text);
      border: 1px solid var(--border); border-radius: 4px;
      padding: 3px 10px; font: inherit; cursor: pointer; }
  button:hover { border-color: var(--accent); }
  #flash { color: var(--warn); min-height: 1.2em; margin-top: 4px; }
  @media (max-width: 900px) { #grid { grid-template-columns: 1fr; } }
</style>
</head>
<body>
<header>
  <h1>ampere-repro</h1>
  <span class="stat">mode <b id="h-mode">&ndash;</b></span>
  <span class="stat">t = <b id="h-sim">&ndash;</b></span>
  <span class="stat">progress <b id="h-prog">&ndash;</b></span>
  <span class="stat">facility <b id="h-fac">&ndash;</b></span>
  <span class="stat" id="h-state"></span>
  <span class="stat">supervisor <span class="sup" id="h-sup">&ndash;</span></span>
  <span class="stat" id="h-recov"></span>
</header>
<div id="grid">
  <div class="panel" style="grid-row: span 2">
    <h2>power vs budget (trailing hour)</h2>
    <div id="charts"></div>
  </div>
  <div class="panel">
    <h2>groups</h2>
    <table id="groups"><thead><tr>
      <th>group</th><th>power</th><th>budget</th><th>frozen</th>
      <th>ladder</th><th>breaker</th>
    </tr></thead><tbody></tbody></table>
    <div class="controls">
      <button onclick="act('pause')">pause</button>
      <button onclick="act('resume')">resume</button>
      <button onclick="act('step', {seconds: 600})">step 10&thinsp;min</button>
      <select id="scenario"></select>
      <button onclick="armFaults()">arm faults</button>
      <button onclick="takeSnapshot()">snapshot</button>
    </div>
    <div id="flash"></div>
  </div>
  <div class="panel">
    <h2>server masks <span style="color:var(--dim)">
      (blue frozen &middot; yellow capped &middot; red failed)</span></h2>
    <div class="masks" id="masks"></div>
  </div>
  <div class="panel" id="tenants-panel" style="display:none">
    <h2>tenants <span id="h-jain" style="color:var(--dim)"></span></h2>
    <table id="tenants"><thead><tr>
      <th>tenant</th><th>sla</th><th>share</th><th>frozen (min)</th>
      <th>normalized</th><th>freezes</th><th>shed</th>
    </tr></thead><tbody></tbody></table>
  </div>
  <div class="panel" style="grid-column: 1 / -1">
    <h2>control-plane events (live)
      <span id="h-drops" style="color:var(--dim)"></span></h2>
    <div id="log"></div>
  </div>
</div>
<script>
"use strict";
const $ = (id) => document.getElementById(id);
const fmtW = (w) => w == null ? "\\u2013"
  : (w >= 10000 ? (w / 1000).toFixed(1) + " kW" : Math.round(w) + " W");
const fmtT = (s) => {
  if (s == null) return "\\u2013";
  const h = Math.floor(s / 3600), m = Math.floor((s % 3600) / 60);
  return h + "h" + String(m).padStart(2, "0") + "m";
};

async function getJSON(path) {
  const r = await fetch(path);
  if (!r.ok) throw new Error(path + " -> " + r.status);
  return r.json();
}
async function postJSON(path, body) {
  const r = await fetch(path, {method: "POST",
    headers: {"Content-Type": "application/json"},
    body: JSON.stringify(body || {})});
  const doc = await r.json().catch(() => ({}));
  if (!r.ok) throw new Error(doc.error || (path + " -> " + r.status));
  return doc;
}
function flash(msg) {
  $("flash").textContent = msg;
  setTimeout(() => { if ($("flash").textContent === msg)
    $("flash").textContent = ""; }, 6000);
}
async function act(name, body) {
  try { await postJSON("/api/" + name, body); refresh(); }
  catch (e) { flash(String(e.message || e)); }
}
async function armFaults() {
  await act("faults", {scenario: $("scenario").value});
}
async function takeSnapshot() {
  const path = prompt("snapshot path on the server host:",
                      "service-snapshot.bin");
  if (path) await act("snapshot", {path});
}

// ---- charts -----------------------------------------------------------
function drawChart(canvas, series) {
  const dpr = window.devicePixelRatio || 1;
  const w = canvas.clientWidth, h = canvas.clientHeight;
  canvas.width = w * dpr; canvas.height = h * dpr;
  const ctx = canvas.getContext("2d");
  ctx.scale(dpr, dpr);
  ctx.clearRect(0, 0, w, h);
  const times = series.times || [], watts = series.watts || [];
  if (times.length < 2) {
    ctx.fillStyle = "#7a8699";
    ctx.fillText("waiting for samples\\u2026", 8, 16);
    return;
  }
  const t0 = times[0], t1 = times[times.length - 1];
  const finite = watts.filter((v) => v != null);
  const top = Math.max(series.budget_watts * 1.15, ...finite) || 1;
  const X = (t) => 4 + (w - 8) * (t - t0) / Math.max(1, t1 - t0);
  const Y = (p) => h - 4 - (h - 20) * (p / top);
  // budget line
  ctx.strokeStyle = "#e0b44c"; ctx.setLineDash([5, 4]); ctx.beginPath();
  ctx.moveTo(4, Y(series.budget_watts));
  ctx.lineTo(w - 4, Y(series.budget_watts)); ctx.stroke();
  ctx.setLineDash([]);
  // power trace
  ctx.strokeStyle = "#5ab0f0"; ctx.lineWidth = 1.3; ctx.beginPath();
  let pen = false;
  for (let i = 0; i < times.length; i++) {
    if (watts[i] == null) { pen = false; continue; }
    const x = X(times[i]), y = Y(watts[i]);
    if (pen) ctx.lineTo(x, y); else ctx.moveTo(x, y);
    pen = true;
  }
  ctx.stroke();
  ctx.fillStyle = "#7a8699";
  ctx.fillText(fmtW(top), 6, 12);
}

function renderCharts(doc) {
  const host = $("charts");
  const names = Object.keys(doc.groups);
  if (doc.facility) names.unshift("facility");
  for (const name of names) {
    let block = document.getElementById("chart-" + name);
    if (!block) {
      block = document.createElement("div");
      block.id = "chart-" + name;
      block.innerHTML = '<div class="legend"><span>' + name +
        '</span><span style="color:#5ab0f0">power</span>' +
        '<span class="budget">budget</span></div>' +
        '<canvas class="chart"></canvas>';
      host.appendChild(block);
    }
    const series = name === "facility" ? doc.facility : doc.groups[name];
    drawChart(block.querySelector("canvas"), series);
  }
}

// ---- tables and masks -------------------------------------------------
function renderGroups(doc) {
  const body = $("groups").querySelector("tbody");
  body.innerHTML = "";
  for (const g of doc.groups) {
    const tr = document.createElement("tr");
    const ladder = g.safety_state
      ? '<span class="ladder ' + g.safety_state + '">' + g.safety_state +
        "</span>" : "\\u2013";
    const breaker = g.breaker
      ? (g.breaker.tripped ? "OPEN"
         : (100 * g.breaker.thermal_fraction).toFixed(0) + "%")
      : "\\u2013";
    tr.innerHTML = "<td>" + g.name + "</td><td>" + fmtW(g.power_watts) +
      "</td><td>" + fmtW(g.budget_watts) + "</td><td>" + g.frozen + "/" +
      g.n_servers + "</td><td>" + ladder + "</td><td>" + breaker + "</td>";
    body.appendChild(tr);
  }
  $("h-fac").textContent = fmtW(doc.facility_power_watts) + " / " +
    fmtW(doc.facility_budget_watts);
}

async function renderMasks(doc) {
  const host = $("masks");
  host.innerHTML = "";
  for (const g of doc.groups) {
    const detail = await getJSON("/api/groups/" +
                                 encodeURIComponent(g.name));
    const row = document.createElement("div");
    row.className = "maskrow";
    const cells = detail.servers.map((s) => {
      let cls = "idle";
      if (s.powered_off) cls = "off";
      else if (s.failed) cls = "failed";
      else if (s.capped) cls = "capped";
      else if (s.frozen) cls = "frozen";
      return '<span class="cell ' + cls + '" title="#' + s.id + " " +
        fmtW(s.power_watts) + '"></span>';
    }).join("");
    row.innerHTML = '<div class="label">' + g.name + '</div>' +
      '<div class="cells">' + cells + "</div>";
    host.appendChild(row);
  }
}

let tenanted = true;  // optimistic; a 404 marks the run untenanted
async function renderTenants() {
  if (!tenanted) return;
  let doc;
  try { doc = await getJSON("/api/tenants"); }
  catch (e) {
    if (String(e).includes("404")) tenanted = false;
    return;
  }
  $("tenants-panel").style.display = "";
  $("h-jain").textContent = "(" + doc.policy + ", Jain " +
    doc.jain_index.toFixed(3) + ")";
  const body = $("tenants").querySelector("tbody");
  body.innerHTML = "";
  for (const t of doc.tenants) {
    const tr = document.createElement("tr");
    tr.innerHTML = "<td>" + t.name + "</td><td>" + t.sla + "</td><td>" +
      t.share.toFixed(2) + "</td><td>" +
      t.frozen_server_minutes.toFixed(0) + "</td><td>" +
      t.normalized_frozen.toFixed(0) + "</td><td>" + t.freeze_events +
      "</td><td>" + t.shed_events + "</td>";
    body.appendChild(tr);
  }
}

// ---- polling ----------------------------------------------------------
async function refresh() {
  try {
    const [status, state, series] = await Promise.all([
      getJSON("/api/status"), getJSON("/api/state"),
      getJSON("/api/series?window=3600"),
    ]);
    $("h-mode").textContent = status.mode +
      (status.mode === "accelerated" ? " \\u00d7" + status.speedup : "");
    $("h-sim").textContent = fmtT(status.sim_now);
    $("h-prog").textContent = (100 * status.progress).toFixed(1) + "%";
    $("h-state").textContent = status.fatal ? "FATAL: " + status.fatal
      : status.finished ? "finished"
      : status.paused ? "paused" : "running";
    const sup = status.supervisor || {};
    const supEl = $("h-sup");
    supEl.textContent = sup.state || "\\u2013";
    supEl.className = "sup " + (sup.state || "");
    $("h-recov").textContent = sup.recoveries
      ? "recoveries " + sup.recoveries + "/" + sup.max_recoveries : "";
    const perSub = status.events_dropped_by_subscriber || {};
    const dropped = Object.values(perSub).reduce((a, b) => a + b,
                                                 status.events_dropped || 0);
    $("h-drops").textContent = dropped ? "(" + dropped + " dropped)" : "";
    renderGroups(state);
    renderCharts(series);
    await renderMasks(state);
    await renderTenants();
  } catch (e) { flash(String(e.message || e)); }
}

async function loadScenarios() {
  try {
    const doc = await getJSON("/api/scenarios");
    const sel = $("scenario");
    for (const name of Object.keys(doc.scenarios)) {
      const opt = document.createElement("option");
      opt.value = name;
      opt.textContent = name;
      opt.title = doc.scenarios[name];
      sel.appendChild(opt);
    }
  } catch (e) { flash(String(e.message || e)); }
}

// ---- SSE event stream -------------------------------------------------
function startEvents() {
  const log = $("log");
  const src = new EventSource("/events");
  src.onmessage = (msg) => {
    let doc;
    try { doc = JSON.parse(msg.data); } catch { return; }
    const line = document.createElement("div");
    if (doc.type === "control") {
      line.innerHTML = '<span class="t">t=' + fmtT(doc.time) +
        '</span> <span class="kind">' + doc.kind + "</span> #" +
        doc.server_id + " " + (doc.detail || "");
    } else if (doc.type === "supervisor") {
      line.innerHTML = '<span class="t">t=' + fmtT(doc.sim_now) +
        '</span> <span class="kind" style="color:var(--warn)">supervisor' +
        "</span> " + doc.action + (doc.reason ? ": " + doc.reason : "");
    } else if (doc.type === "stream") {
      line.innerHTML = '<span class="kind" style="color:var(--warn)">' +
        "stream</span> reset (" + doc.missed_events + " events missed)";
    } else {
      line.innerHTML = '<span class="t">t=' + fmtT(doc.sim_now) +
        '</span> <span class="kind">driver</span> ' + doc.action;
    }
    log.appendChild(line);
    while (log.childNodes.length > 400) log.removeChild(log.firstChild);
    log.scrollTop = log.scrollHeight;
  };
  src.onerror = () => { /* EventSource auto-reconnects */ };
}

loadScenarios();
startEvents();
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
"""

__all__ = ["DASHBOARD_HTML"]
