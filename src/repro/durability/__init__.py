"""``repro.durability`` -- crash consistency and durable simulation state.

Two layers:

- :mod:`~repro.durability.atomic` -- the single atomic-write helper
  behind every file artifact the harness produces (CSV exports, golden
  fixtures, benchmark gates, checkpoints, snapshots).
- :mod:`~repro.durability.snapshot` -- versioned, checksummed frames
  around a pickled live experiment, the substrate of
  ``ControlledExperiment.snapshot()/restore()`` and the ``repro
  verify-snapshot`` CLI command.

Campaign-level checkpoint/resume builds on both from
:mod:`repro.sim.checkpoint`; the online invariant auditor that validates
restored state lives in :mod:`repro.sim.audit`.
"""

from repro.durability.atomic import (
    append_line_fsync,
    atomic_write_bytes,
    atomic_write_text,
)
from repro.durability.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    SnapshotError,
    canonical_dumps,
    decode_header,
    decode_snapshot,
    encode_snapshot,
    read_header,
    read_snapshot,
    write_snapshot,
)

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "append_line_fsync",
    "atomic_write_bytes",
    "atomic_write_text",
    "canonical_dumps",
    "decode_header",
    "decode_snapshot",
    "encode_snapshot",
    "read_header",
    "read_snapshot",
    "write_snapshot",
]
