"""Crash-consistent file writes: write-temp, fsync, rename.

Every file artifact the harness produces -- campaign CSVs, golden JSON
fixtures, benchmark gate artifacts, telemetry snapshots, durable
simulation snapshots -- goes through this one helper. A plain
``open(path, "w")`` torn by a SIGKILL (or a full disk) leaves a
half-written file that a later resume would happily read; writing to a
temp file in the *same directory* and ``os.replace``-ing it over the
target makes the update atomic on POSIX: readers observe either the old
complete file or the new complete file, never a prefix.

``fsync`` before the rename orders the data write against the rename on
journaled filesystems; without it a power loss can surface a renamed but
empty file. (Directory-entry durability would additionally need an fsync
on the parent directory; for the harness's checkpoint protocol the
data-before-rename ordering is the part that matters -- a lost rename
just re-runs one cell.)
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Atomically replace ``path`` with ``data``.

    The temp file lives next to the target so the final ``os.replace``
    never crosses a filesystem boundary (cross-device renames are copies,
    not atomic).
    """
    target = Path(path)
    fd, temp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=target.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, target)
    except BaseException:
        # Leave no temp litter on failure (including KeyboardInterrupt);
        # a hard kill between mkstemp and replace still can, which is why
        # the prefix marks the file as disposable.
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path`` with ``text`` (no newline translation).

    Callers that need CSV's ``\\r\\n`` line terminators should render
    through ``io.StringIO`` first (the ``csv`` module writes its own
    terminators), then hand the finished string here.
    """
    atomic_write_bytes(path, text.encode(encoding))


def append_line_fsync(
    path: Union[str, Path], line: str, encoding: str = "utf-8"
) -> None:
    """Durably append one newline-terminated record to ``path``.

    The write-ahead-log discipline: a single ``write`` of the full record
    (plus its terminating newline) followed by ``fsync`` before the call
    returns. A crash mid-append can tear at most the *last* line of the
    file -- appends never rewrite earlier bytes -- so a reader that drops
    a trailing line without a newline (or that fails to parse) recovers
    every record that was ever acknowledged. ``line`` must not itself
    contain a newline; that would forge record boundaries.
    """
    if "\n" in line:
        raise ValueError("WAL records must be single lines")
    data = line.encode(encoding) + b"\n"
    with open(path, "ab") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())


__all__ = ["append_line_fsync", "atomic_write_bytes", "atomic_write_text"]
