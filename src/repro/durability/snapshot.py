"""Versioned, checksummed snapshots of live simulation state.

A snapshot captures a *running* experiment -- the cluster store's numpy
columns, every RNG stream, the event heap (including the self-scheduling
periodic tasks), controller/supervisor/ledger/coordinator state and the
telemetry registry -- such that restoring it and running to the horizon
produces a trajectory byte-identical to the uninterrupted run. The
simulation object graph was built picklable end to end (no closures or
lambdas are ever stored in live state; see ``_PeriodicTask`` and
``_SimClock`` in :mod:`repro.sim.engine`), so the payload is simply the
pickled experiment object.

Frame layout
------------
One UTF-8 JSON header line, then the raw pickle payload::

    {"kind": "experiment", "magic": "repro-snapshot", "meta": {...},
     "payload_bytes": N, "payload_sha256": "...", "version": 1}\\n
    <N bytes of pickle>

The header is readable without unpickling anything (``read_header``),
carries a SHA-256 of the payload so torn or corrupted files fail loudly
instead of restoring garbage, and is versioned so a future layout change
refuses old files explicitly. ``meta`` holds deterministic descriptive
fields only (sim time, backend, seed) -- never wall-clock timestamps, so
snapshotting the same state twice yields the same bytes.

Canonical encoding
------------------
Payloads are produced by a *canonical* pickler that deduplicates equal
``str``/``bytes`` atoms by value instead of by object identity. Plain
pickle memoizes by ``id()``, so a graph in which two dicts share one
interned ``'violations'`` string serializes differently from the same
logical graph where those are two equal-but-distinct strings -- exactly
what a snapshot/restore round trip produces (the unpickler materializes
fresh, un-interned strings). Value-keyed deduplication of immutable
atoms erases that history, so *equal logical state encodes to equal
bytes even across restore boundaries* -- the property the self-healing
service leans on to prove a crash-recovered run byte-identical to an
uninterrupted one. Mutable containers keep identity-based memoization:
their sharing structure is semantically meaningful (merging two equal
dicts would alias future mutations) and is preserved exactly by a
round trip anyway.

Security note: the payload is a pickle. Restoring executes arbitrary
code embedded in the file, exactly like loading any pickle; only restore
snapshots you (or your own pipeline) wrote. The checksum detects
corruption, not tampering.
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.durability.atomic import atomic_write_bytes

#: Frame magic; also the snapshot files' conventional ``.snap`` stem.
SNAPSHOT_MAGIC = "repro-snapshot"

#: Current frame layout version. Bump on any incompatible change.
SNAPSHOT_VERSION = 1

#: Pickle protocol pinned for stable output within a Python version
#: (``HIGHEST_PROTOCOL`` may move under our feet on an interpreter bump).
_PICKLE_PROTOCOL = 5


class SnapshotError(RuntimeError):
    """A snapshot frame is malformed, corrupted, or of the wrong kind."""


class _CanonicalPickler(pickle._Pickler):
    """Pickler that dedups equal ``str``/``bytes`` by value, not identity.

    Built on the pure-Python pickler so ``save`` can be intercepted: every
    string/bytes object is swapped for the first equal instance seen, after
    which the normal identity memo turns repeats into GET opcodes. Only
    immutable atoms are canonicalized -- aliasing them is unobservable --
    so the stream stays a standard pickle and loads with ``pickle.loads``.
    """

    def __init__(self, file, protocol):
        super().__init__(file, protocol)
        self._intern: Dict[Any, Any] = {}

    def save(self, obj, save_persistent_id=True):
        if type(obj) in (str, bytes):
            obj = self._intern.setdefault(obj, obj)
        return super().save(obj, save_persistent_id)

    def memoize(self, obj):
        # The pure-Python pickler writes PickleBuffer payloads through
        # save_bytes()/save_bytearray() directly, bypassing the memo
        # check in save(). An *empty* buffer's tobytes() is the interned
        # b"" singleton, so if b"" was pickled earlier it arrives here
        # already memoized and the base memoize() asserts. The payload
        # is already on the wire at this point; skipping the duplicate
        # PUT yields a valid, deterministic stream.
        if id(obj) in self.memo:
            return
        super().memoize(obj)


def canonical_dumps(obj: Any) -> bytes:
    """Pickle ``obj`` with value-canonical string/bytes deduplication.

    Equal logical state yields equal bytes even when one side's object
    graph went through a snapshot/restore round trip (which loses string
    interning and sharing history that plain pickle would encode).
    """
    buffer = io.BytesIO()
    _CanonicalPickler(buffer, _PICKLE_PROTOCOL).dump(obj)
    return buffer.getvalue()


def encode_snapshot(
    obj: Any, kind: str, meta: Optional[Mapping[str, Any]] = None
) -> bytes:
    """Serialize ``obj`` into a framed, checksummed snapshot."""
    payload = canonical_dumps(obj)
    header = {
        "magic": SNAPSHOT_MAGIC,
        "version": SNAPSHOT_VERSION,
        "kind": kind,
        "payload_bytes": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "meta": dict(meta or {}),
    }
    line = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n"
    return line + payload


def _split_frame(data: bytes) -> Tuple[Dict[str, Any], bytes]:
    newline = data.find(b"\n")
    if newline < 0:
        raise SnapshotError("not a snapshot: missing header line")
    try:
        header = json.loads(data[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"not a snapshot: unreadable header ({exc})") from exc
    if not isinstance(header, dict) or header.get("magic") != SNAPSHOT_MAGIC:
        raise SnapshotError("not a snapshot: bad magic")
    version = header.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {version!r} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    return header, data[newline + 1 :]


def decode_header(data: bytes) -> Dict[str, Any]:
    """Parse and validate the frame header without touching the payload."""
    header, _ = _split_frame(data)
    return header


def decode_snapshot(
    data: bytes, expected_kind: Optional[str] = None
) -> Tuple[Any, Dict[str, Any]]:
    """Verify a frame and unpickle its payload; returns ``(obj, header)``."""
    header, payload = _split_frame(data)
    if expected_kind is not None and header.get("kind") != expected_kind:
        raise SnapshotError(
            f"snapshot kind {header.get('kind')!r} != expected {expected_kind!r}"
        )
    declared = header.get("payload_bytes")
    if declared != len(payload):
        raise SnapshotError(
            f"payload truncated: header declares {declared} bytes, "
            f"found {len(payload)}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise SnapshotError(
            "payload checksum mismatch (file corrupted or torn): "
            f"expected {header.get('payload_sha256')}, got {digest}"
        )
    return pickle.loads(payload), header


def write_snapshot(
    path: Union[str, Path],
    obj: Any,
    kind: str,
    meta: Optional[Mapping[str, Any]] = None,
) -> int:
    """Atomically write ``obj``'s snapshot to ``path``; returns byte count."""
    frame = encode_snapshot(obj, kind, meta)
    atomic_write_bytes(path, frame)
    return len(frame)


def read_snapshot(
    path: Union[str, Path], expected_kind: Optional[str] = None
) -> Tuple[Any, Dict[str, Any]]:
    """Read, verify and unpickle a snapshot file."""
    data = Path(path).read_bytes()
    return decode_snapshot(data, expected_kind=expected_kind)


def read_header(path: Union[str, Path]) -> Dict[str, Any]:
    """Read just the header of a snapshot file (cheap inspection)."""
    with open(path, "rb") as handle:
        line = handle.readline()
    if not line.endswith(b"\n"):
        raise SnapshotError("not a snapshot: missing header line")
    return decode_header(line + b"x")  # placeholder payload; header only


__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "canonical_dumps",
    "decode_header",
    "decode_snapshot",
    "encode_snapshot",
    "read_header",
    "read_snapshot",
    "write_snapshot",
]
