"""Job-trace recording and replay.

The paper notes it "cannot isolate a large number of servers to conduct
trace-based experiments" and therefore uses the live A/B split; the
simulator has no such constraint. This module records the exact job
stream of a run to CSV and replays it, so two configurations (policies,
controllers, budgets) can be compared on *literally identical* arrivals
-- a stronger control than re-generating from the same seed, because the
scheduler's own randomness no longer perturbs the workload.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Optional, Union

from repro.durability.atomic import atomic_write_text
from repro.sim.engine import Engine
from repro.sim.events import EventPriority
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scheduler.base import SchedulerInterface

_HEADER = [
    "arrival_time",
    "job_id",
    "work_seconds",
    "cores",
    "memory_gb",
    "product",
    "allowed_rows",
]


@dataclass(frozen=True)
class JobTraceRecord:
    """One job arrival, exactly as a trace file stores it."""

    arrival_time: float
    job_id: int
    work_seconds: float
    cores: float
    memory_gb: float
    product: str = "batch"
    allowed_rows: Optional[frozenset] = None

    @classmethod
    def from_job(cls, job: Job) -> "JobTraceRecord":
        return cls(
            arrival_time=job.arrival_time,
            job_id=job.job_id,
            work_seconds=job.work_seconds,
            cores=job.cores,
            memory_gb=job.memory_gb,
            product=job.product,
            allowed_rows=job.allowed_rows,
        )

    def to_job(self, arrival_time: Optional[float] = None) -> Job:
        return Job(
            self.job_id,
            self.work_seconds,
            cores=self.cores,
            memory_gb=self.memory_gb,
            arrival_time=self.arrival_time if arrival_time is None else arrival_time,
            product=self.product,
            allowed_rows=self.allowed_rows,
        )


class TraceRecorder:
    """Collects generated jobs; attach to a generator's ``listeners``."""

    def __init__(self) -> None:
        self.records: List[JobTraceRecord] = []

    def __call__(self, job: Job) -> None:
        self.records.append(JobTraceRecord.from_job(job))

    def save(self, path: Union[str, Path]) -> int:
        return write_job_trace(self.records, path)


def write_job_trace(
    records: Iterable[JobTraceRecord], path: Union[str, Path]
) -> int:
    """Write records as CSV (atomically); returns the number of rows."""
    count = 0
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_HEADER)
    for record in records:
        rows = (
            ""
            if record.allowed_rows is None
            else ";".join(str(r) for r in sorted(record.allowed_rows))
        )
        writer.writerow(
            [
                repr(record.arrival_time),
                record.job_id,
                repr(record.work_seconds),
                repr(record.cores),
                repr(record.memory_gb),
                record.product,
                rows,
            ]
        )
        count += 1
    atomic_write_text(path, buffer.getvalue())
    return count


def read_job_trace(path: Union[str, Path]) -> List[JobTraceRecord]:
    """Read a trace written by :func:`write_job_trace` (sorted by arrival)."""
    records: List[JobTraceRecord] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _HEADER:
            raise ValueError(f"unrecognized job-trace header: {header}")
        for row in reader:
            if len(row) != len(_HEADER):
                raise ValueError(f"malformed job-trace row: {row}")
            allowed = (
                frozenset(int(x) for x in row[6].split(";")) if row[6] else None
            )
            records.append(
                JobTraceRecord(
                    arrival_time=float(row[0]),
                    job_id=int(row[1]),
                    work_seconds=float(row[2]),
                    cores=float(row[3]),
                    memory_gb=float(row[4]),
                    product=row[5],
                    allowed_rows=allowed,
                )
            )
    records.sort(key=lambda r: r.arrival_time)
    return records


class TraceReplayGenerator:
    """Submits a recorded job stream at its original (shifted) times."""

    def __init__(
        self,
        engine: Engine,
        scheduler: "SchedulerInterface",
        records: List[JobTraceRecord],
        time_offset: float = 0.0,
    ) -> None:
        self.engine = engine
        self.scheduler = scheduler
        self.records = list(records)
        self.time_offset = time_offset
        self.jobs_submitted = 0

    def start(self, until: Optional[float] = None) -> int:
        """Schedule every arrival; returns how many were scheduled."""
        scheduled = 0
        for record in self.records:
            at = record.arrival_time + self.time_offset
            if at < self.engine.now:
                raise ValueError(
                    f"trace arrival at t={at:.3f} is in the past "
                    f"(now={self.engine.now:.3f}); use time_offset"
                )
            if until is not None and at >= until:
                continue
            self.engine.schedule(
                at, EventPriority.JOB_ARRIVAL, self._submit, record, at
            )
            scheduled += 1
        return scheduled

    def _submit(self, record: JobTraceRecord, at: float) -> None:
        self.scheduler.submit(record.to_job(arrival_time=at))
        self.jobs_submitted += 1


__all__ = [
    "JobTraceRecord",
    "TraceRecorder",
    "TraceReplayGenerator",
    "write_job_trace",
    "read_job_trace",
]
