"""Workload substrate: batch jobs, interactive services and generators.

The generators are calibrated to the distributions the paper publishes:
job durations match Figure 7 (mean ~9 minutes, ~40% under 2 minutes),
diurnal row power matches Figure 8, and minute-scale power changes match
Figure 9. Interactive services reproduce the Redis benchmark of Figure 11
as a queueing model whose service rate scales with the server's DVFS
frequency.
"""

from repro.workload.job import Job
from repro.workload.distributions import (
    JobDurationDistribution,
    ResourceDemandDistribution,
    rate_for_target_utilization,
)
from repro.workload.generator import (
    BatchWorkloadGenerator,
    ConstantRateProfile,
    DiurnalRateProfile,
    ModulatedRateProfile,
    RateProfile,
)
from repro.workload.interactive import (
    InteractiveService,
    RedisBenchmark,
    REDIS_OPERATIONS,
)

__all__ = [
    "Job",
    "JobDurationDistribution",
    "ResourceDemandDistribution",
    "rate_for_target_utilization",
    "BatchWorkloadGenerator",
    "RateProfile",
    "ConstantRateProfile",
    "DiurnalRateProfile",
    "ModulatedRateProfile",
    "InteractiveService",
    "RedisBenchmark",
    "REDIS_OPERATIONS",
]
