"""Batch job model with DVFS-aware progress tracking.

A job carries a fixed amount of *work* measured in seconds-at-full-speed.
While the hosting server runs at DVFS frequency ``f``, the job progresses
at rate ``f``; power capping therefore stretches a job's wall-clock
duration -- the exact disturbance Ampere avoids by never touching running
jobs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.server import Server
    from repro.sim.engine import EventHandle


class Job:
    """One schedulable batch job (the paper schedules ~10^6 per day).

    Parameters
    ----------
    job_id:
        Unique id assigned by the workload generator.
    work_seconds:
        Execution time at full DVFS frequency.
    cores / memory_gb:
        Resource demand held for the job's whole lifetime.
    arrival_time:
        Submission time (seconds).
    product:
        Workload family tag; the scheduler maps products to frameworks and
        products are what give rows their distinct power personalities
        (Section 2.2's spatial imbalance).
    allowed_rows:
        Row ids this job may be placed in; ``None`` means anywhere.
    tenant:
        Owning tenant name when multi-tenancy is enabled; ``None`` for
        untenanted workloads. Purely observational -- placement ignores
        it, only accounting and fairness-aware control read it.
    """

    __slots__ = (
        "job_id",
        "work_seconds",
        "cores",
        "memory_gb",
        "arrival_time",
        "product",
        "allowed_rows",
        "tenant",
        "priority",
        "server",
        "start_time",
        "finish_time",
        "remaining_work",
        "progress_synced_at",
        "completion_handle",
        "killed",
    )

    def __init__(
        self,
        job_id: int,
        work_seconds: float,
        cores: float = 1.0,
        memory_gb: float = 2.0,
        arrival_time: float = 0.0,
        product: str = "batch",
        allowed_rows: Optional[FrozenSet[int]] = None,
        priority: int = 0,
        tenant: Optional[str] = None,
    ) -> None:
        if work_seconds <= 0:
            raise ValueError(f"work_seconds must be positive, got {work_seconds}")
        if cores <= 0 or memory_gb < 0:
            raise ValueError(
                f"invalid resource demand: cores={cores}, memory_gb={memory_gb}"
            )
        self.job_id = job_id
        self.work_seconds = float(work_seconds)
        self.cores = float(cores)
        self.memory_gb = float(memory_gb)
        self.arrival_time = float(arrival_time)
        self.product = product
        self.allowed_rows = allowed_rows
        self.tenant = tenant
        self.priority = int(priority)

        self.server: Optional["Server"] = None
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.remaining_work = self.work_seconds
        self.progress_synced_at: Optional[float] = None
        self.completion_handle: Optional["EventHandle"] = None
        self.killed = False

    # ------------------------------------------------------------------
    @property
    def is_running(self) -> bool:
        return self.server is not None and self.finish_time is None and not self.killed

    @property
    def is_finished(self) -> bool:
        return self.finish_time is not None

    def kill(self) -> None:
        """Mark this attempt dead (server failure or preemption).

        The scheduler resubmits a fresh attempt; this object only records
        that its execution was cut short.
        """
        self.killed = True
        self.server = None

    def begin(self, server: "Server", now: float) -> None:
        """Record placement on ``server`` at time ``now``."""
        if self.is_running:
            raise RuntimeError(f"job {self.job_id} is already running")
        self.server = server
        self.start_time = now
        self.progress_synced_at = now

    def advance(self, now: float, speed: float) -> None:
        """Credit progress at ``speed`` since the last sync point.

        Must be called with the frequency that was in effect *during* the
        elapsed interval (i.e. before a frequency change is applied).
        """
        if self.progress_synced_at is None:
            raise RuntimeError(f"job {self.job_id} has not started")
        elapsed = now - self.progress_synced_at
        if elapsed < 0:
            raise ValueError(
                f"cannot advance job {self.job_id} backwards "
                f"({self.progress_synced_at} -> {now})"
            )
        self.remaining_work = max(0.0, self.remaining_work - elapsed * speed)
        self.progress_synced_at = now

    def eta(self, now: float, speed: float) -> float:
        """Completion time assuming constant ``speed`` from ``now`` on."""
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        return now + self.remaining_work / speed

    def complete(self, now: float) -> None:
        """Mark finished; the caller releases server resources."""
        self.finish_time = now
        self.remaining_work = 0.0

    @property
    def wall_clock_duration(self) -> Optional[float]:
        """Observed run time (None until finished)."""
        if self.finish_time is None or self.start_time is None:
            return None
        return self.finish_time - self.start_time

    @property
    def slowdown(self) -> Optional[float]:
        """Wall-clock duration over ideal duration; 1.0 means undisturbed."""
        duration = self.wall_clock_duration
        if duration is None:
            return None
        return duration / self.work_seconds

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Job(id={self.job_id}, work={self.work_seconds:.0f}s, "
            f"cores={self.cores}, product={self.product!r})"
        )


__all__ = ["Job"]
