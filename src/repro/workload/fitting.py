"""Fitting workload models from recorded traces.

The paper's generators are calibrated to published aggregate statistics;
a production deployment would calibrate them from its own traces. This
module closes that loop: given job records (e.g. from
:mod:`repro.workload.replay`), fit the clipped-lognormal duration model,
the core-demand mix, and the mean arrival rate, and return ready-to-use
distribution objects. Fitting + regeneration round-trips are tested
against synthetic ground truth.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.workload.distributions import (
    JobDurationDistribution,
    ResourceDemandDistribution,
)
from repro.workload.replay import JobTraceRecord


@dataclass(frozen=True)
class WorkloadFit:
    """Everything needed to regenerate a statistically similar workload."""

    duration: JobDurationDistribution
    demand: ResourceDemandDistribution
    arrival_rate_per_second: float
    n_jobs: int

    def offered_core_seconds_per_second(self) -> float:
        """The fitted offered load (Little's law left-hand side)."""
        return (
            self.arrival_rate_per_second
            * self.demand.mean_cores
            * self.duration.mean_analytic()
        )


def _normal_pdf(x: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * x * x) / np.sqrt(2.0 * np.pi)


def _phi_cdf(x: float) -> float:
    import math

    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def _truncated_normal_fit(
    samples: np.ndarray, lower: float, upper: float, iterations: int = 200
) -> Tuple[float, float]:
    """Fit N(mu, sigma) given samples observed truncated to (lower, upper).

    Moment-matching fixed point: given a candidate (mu, sigma), the
    implied truncated mean/variance follow the standard formulas; the
    candidate is nudged until they match the sample moments. Converges in
    a few dozen iterations for realistic clip fractions.
    """
    m_obs = float(np.mean(samples))
    v_obs = float(np.var(samples, ddof=1))
    mu, sigma = m_obs, float(np.sqrt(v_obs))
    for _ in range(iterations):
        alpha = (lower - mu) / sigma
        beta = (upper - mu) / sigma
        z = _phi_cdf(beta) - _phi_cdf(alpha)
        if z <= 1e-12:
            break
        pdf_a = float(_normal_pdf(np.array(alpha)))
        pdf_b = float(_normal_pdf(np.array(beta)))
        lam = (pdf_a - pdf_b) / z
        m_impl = mu + sigma * lam
        v_impl = sigma * sigma * (
            1.0 + (alpha * pdf_a - beta * pdf_b) / z - lam * lam
        )
        if v_impl <= 0:
            break
        mu += m_obs - m_impl
        sigma *= float(np.sqrt(max(v_obs / v_impl, 1e-6)))
    return mu, sigma


def fit_duration_distribution(
    durations_seconds: Sequence[float],
    max_seconds: float = 50.0 * 60.0,
    min_seconds: float = 5.0,
) -> JobDurationDistribution:
    """Fit the clipped lognormal from observed (clipped) durations.

    Samples at the clip boundaries are censored; the interior samples are
    a *truncated* lognormal, so a naive mean/std of their logs is biased.
    The fit corrects for the truncation by moment matching against the
    truncated-normal formulas in log space.
    """
    data = np.asarray(durations_seconds, dtype=float)
    if data.size < 30:
        raise ValueError(f"need at least 30 durations to fit, got {data.size}")
    interior = data[(data > min_seconds * 1.001) & (data < max_seconds * 0.999)]
    if interior.size < 30:
        raise ValueError("too few interior (non-clipped) samples to fit")
    log_minutes = np.log(interior / 60.0)
    lower = np.log(min_seconds / 60.0)
    upper = np.log(max_seconds / 60.0)
    mu, sigma = _truncated_normal_fit(log_minutes, lower, upper)
    if sigma <= 0:
        raise ValueError("degenerate duration sample (zero variance)")
    return JobDurationDistribution(
        log_mu_minutes=float(mu),
        log_sigma=float(sigma),
        max_seconds=max_seconds,
        min_seconds=min_seconds,
    )


def fit_demand_distribution(
    cores: Sequence[float], memory_gb: Sequence[float]
) -> ResourceDemandDistribution:
    """Empirical categorical fit of the core mix and memory/core ratio."""
    cores = np.asarray(cores, dtype=float)
    memory = np.asarray(memory_gb, dtype=float)
    if cores.size == 0 or cores.shape != memory.shape:
        raise ValueError("need equal-length, non-empty cores and memory samples")
    counts = Counter(cores.tolist())
    choices = tuple(sorted(counts))
    weights = tuple(counts[c] / cores.size for c in choices)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = memory / cores
    memory_per_core = float(np.median(ratios[np.isfinite(ratios)]))
    return ResourceDemandDistribution(
        core_choices=choices,
        core_weights=weights,
        memory_per_core_gb=memory_per_core,
    )


def fit_workload(records: Sequence[JobTraceRecord]) -> WorkloadFit:
    """Fit all workload models from a job trace."""
    if len(records) < 30:
        raise ValueError(f"need at least 30 records, got {len(records)}")
    durations = [r.work_seconds for r in records]
    cores = [r.cores for r in records]
    memory = [r.memory_gb for r in records]
    arrivals = np.asarray(sorted(r.arrival_time for r in records))
    span = arrivals[-1] - arrivals[0]
    if span <= 0:
        raise ValueError("trace spans zero time")
    return WorkloadFit(
        duration=fit_duration_distribution(durations),
        demand=fit_demand_distribution(cores, memory),
        arrival_rate_per_second=(len(records) - 1) / span,
        n_jobs=len(records),
    )


__all__ = [
    "WorkloadFit",
    "fit_duration_distribution",
    "fit_demand_distribution",
    "fit_workload",
]
