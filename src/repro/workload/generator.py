"""Batch workload generation: arrival-rate profiles and the generator process.

Arrivals follow a non-homogeneous Poisson process realized by thinning.
Rate profiles compose a deterministic shape (constant or diurnal) with an
optional mean-reverting AR(1) modulation that reproduces the minute-scale
spikes and valleys of Figure 8 / Figure 9: smooth on the hour scale, with
occasional several-percent power jumps within a single minute.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

import numpy as np

from repro.sim.engine import Engine
from repro.sim.events import EventPriority
from repro.workload.distributions import (
    JobDurationDistribution,
    ResourceDemandDistribution,
)
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scheduler.base import SchedulerInterface

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0


class RateProfile:
    """Interface: instantaneous arrival rate in jobs/second at time ``t``."""

    def rate(self, t: float) -> float:
        raise NotImplementedError

    @property
    def max_rate(self) -> float:
        """An upper bound on ``rate`` over all t, used for Poisson thinning."""
        raise NotImplementedError


class ConstantRateProfile(RateProfile):
    """Fixed arrival rate."""

    def __init__(self, jobs_per_second: float) -> None:
        if jobs_per_second < 0:
            raise ValueError(f"rate must be non-negative, got {jobs_per_second}")
        self._rate = jobs_per_second

    def rate(self, t: float) -> float:
        return self._rate

    @property
    def max_rate(self) -> float:
        return self._rate


class DiurnalRateProfile(RateProfile):
    """Sinusoidal day/night swing around a base rate (Figure 8's hour scale).

    ``rate(t) = base * (1 + amplitude * sin(2*pi*(t - phase)/period))``.
    """

    def __init__(
        self,
        base_jobs_per_second: float,
        amplitude: float = 0.15,
        period_seconds: float = SECONDS_PER_DAY,
        phase_seconds: float = 0.0,
    ) -> None:
        if base_jobs_per_second < 0:
            raise ValueError(f"base rate must be non-negative, got {base_jobs_per_second}")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        if period_seconds <= 0:
            raise ValueError(f"period must be positive, got {period_seconds}")
        self.base = base_jobs_per_second
        self.amplitude = amplitude
        self.period = period_seconds
        self.phase = phase_seconds

    def rate(self, t: float) -> float:
        swing = self.amplitude * math.sin(2.0 * math.pi * (t - self.phase) / self.period)
        return self.base * (1.0 + swing)

    @property
    def max_rate(self) -> float:
        return self.base * (1.0 + self.amplitude)


class ModulatedRateProfile(RateProfile):
    """A base profile multiplied by mean-reverting AR(1) noise.

    The multiplier is piecewise-constant on a grid of ``step_seconds`` and
    follows ``x_{k+1} = 1 + rho * (x_k - 1) + sigma * eps_k`` clipped to
    ``[floor, ceil]``. The grid is pre-generated from an explicit seed so a
    profile is a pure, reproducible function of time -- two groups reading
    the same profile see identical demand, which the controlled-experiment
    harness relies on.
    """

    def __init__(
        self,
        base: RateProfile,
        horizon_seconds: float,
        seed: int,
        step_seconds: float = 120.0,
        rho: float = 0.85,
        sigma: float = 0.06,
        floor: float = 0.55,
        ceil: float = 1.45,
    ) -> None:
        if horizon_seconds <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_seconds}")
        if step_seconds <= 0:
            raise ValueError(f"step must be positive, got {step_seconds}")
        if not 0.0 <= rho < 1.0:
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        if floor <= 0 or ceil < floor:
            raise ValueError(f"invalid clip range [{floor}, {ceil}]")
        self.base = base
        self.step = step_seconds
        self.floor = floor
        self.ceil = ceil
        rng = np.random.default_rng(seed)
        n_steps = int(math.ceil(horizon_seconds / step_seconds)) + 2
        multipliers = np.empty(n_steps)
        x = 1.0
        for k in range(n_steps):
            x = 1.0 + rho * (x - 1.0) + sigma * rng.standard_normal()
            multipliers[k] = min(ceil, max(floor, x))
        self._multipliers = multipliers

    def rate(self, t: float) -> float:
        index = min(len(self._multipliers) - 1, max(0, int(t / self.step)))
        return self.base.rate(t) * self._multipliers[index]

    @property
    def max_rate(self) -> float:
        return self.base.max_rate * self.ceil


class BurstyRateProfile(RateProfile):
    """A base profile with randomly timed multiplicative bursts.

    Production row power shows occasional sharp excursions on top of the
    diurnal swing (Figure 8, Figure 10a): a product launches a backfill,
    a pipeline re-runs. Bursts arrive as a Poisson process with
    exponential durations; inside a burst the rate is multiplied by
    ``burst_factor``. Burst windows are pre-generated from the seed, so
    the profile is a pure function of time.
    """

    def __init__(
        self,
        base: RateProfile,
        horizon_seconds: float,
        seed: int,
        bursts_per_day: float = 4.0,
        burst_factor: float = 2.0,
        mean_burst_seconds: float = 1800.0,
    ) -> None:
        if horizon_seconds <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_seconds}")
        if bursts_per_day < 0:
            raise ValueError(f"bursts_per_day must be non-negative, got {bursts_per_day}")
        if burst_factor < 1.0:
            raise ValueError(f"burst_factor must be >= 1.0, got {burst_factor}")
        if mean_burst_seconds <= 0:
            raise ValueError(f"mean_burst_seconds must be positive, got {mean_burst_seconds}")
        self.base = base
        self.burst_factor = burst_factor
        rng = np.random.default_rng(seed)
        windows: List[tuple] = []
        if bursts_per_day > 0:
            t = 0.0
            mean_gap = SECONDS_PER_DAY / bursts_per_day
            while True:
                t += rng.exponential(mean_gap)
                if t >= horizon_seconds:
                    break
                windows.append((t, t + rng.exponential(mean_burst_seconds)))
        self._starts = np.array([w[0] for w in windows])
        self._ends = np.array([w[1] for w in windows])

    def rate(self, t: float) -> float:
        base_rate = self.base.rate(t)
        if len(self._starts) and bool(np.any((self._starts <= t) & (t < self._ends))):
            return base_rate * self.burst_factor
        return base_rate

    @property
    def max_rate(self) -> float:
        return self.base.max_rate * (self.burst_factor if len(self._starts) else 1.0)

    def burst_windows(self) -> List[tuple]:
        """The generated ``(start, end)`` burst windows (for inspection)."""
        return list(zip(self._starts.tolist(), self._ends.tolist()))


class ScaledRateProfile(RateProfile):
    """A base profile multiplied by a constant factor.

    Used to carve one row-level demand curve into per-tenant slices:
    each tenant's generator reads the *same* shaped profile scaled by
    its share, so the sum of tenant arrivals reproduces the untenanted
    rate exactly and per-tenant demand stays a pure function of time.
    """

    def __init__(self, base: RateProfile, factor: float) -> None:
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        self.base = base
        self.factor = float(factor)

    def rate(self, t: float) -> float:
        return self.base.rate(t) * self.factor

    @property
    def max_rate(self) -> float:
        return self.base.max_rate * self.factor


class SurgeRateProfile(RateProfile):
    """Declared multiplicative step windows on top of a base profile.

    Unlike :class:`BurstyRateProfile` (random bursts drawn from a seed),
    the windows here are *scheduled*: the fault plane injects a demand
    surge at a known instant (a launch, a retry storm) so chaos runs can
    assert on exactly when the hazard was active. Windows are pure
    functions of time; overlapping windows are rejected upstream
    (scenario validation), so ``max_rate`` is exact.
    """

    def __init__(
        self,
        base: RateProfile,
        windows: Sequence[tuple],
    ) -> None:
        self.base = base
        self.windows = tuple(
            (float(s), float(d), float(f)) for s, d, f in windows
        )
        for start, duration, factor in self.windows:
            if start < 0 or duration <= 0 or factor <= 0:
                raise ValueError(
                    "surge windows need start >= 0, duration > 0, factor > 0, "
                    f"got ({start}, {duration}, {factor})"
                )

    def rate(self, t: float) -> float:
        rate = self.base.rate(t)
        for start, duration, factor in self.windows:
            if start <= t < start + duration:
                rate *= factor
        return rate

    @property
    def max_rate(self) -> float:
        peak = max((f for _, _, f in self.windows), default=1.0)
        return self.base.max_rate * max(peak, 1.0)


class BatchWorkloadGenerator:
    """Simulation process that submits batch jobs to the scheduler.

    Parameters
    ----------
    engine / scheduler:
        Simulation engine and the scheduler receiving jobs.
    rate_profile:
        Arrival intensity over time.
    rng:
        Explicit random generator -- all stochasticity is seeded.
    duration / demand:
        Job duration and resource-demand distributions.
    product / allowed_rows:
        Tag and optional row affinity attached to every generated job
        (drives the spatial imbalance of Figure 2 in multi-row setups).
    job_id_offset:
        First job id; lets several generators coexist without collisions.
    tenant:
        Tenant name stamped on every generated job (``None`` when
        multi-tenancy is off).
    """

    def __init__(
        self,
        engine: Engine,
        scheduler: "SchedulerInterface",
        rate_profile: RateProfile,
        rng: np.random.Generator,
        duration: JobDurationDistribution = JobDurationDistribution(),
        demand: ResourceDemandDistribution = ResourceDemandDistribution(),
        product: str = "batch",
        allowed_rows: Optional[Sequence[int]] = None,
        job_id_offset: int = 0,
        tenant: Optional[str] = None,
    ) -> None:
        self.engine = engine
        self.scheduler = scheduler
        self.rate_profile = rate_profile
        self.rng = rng
        self.duration = duration
        self.demand = demand
        self.product = product
        self.allowed_rows = frozenset(allowed_rows) if allowed_rows is not None else None
        self.tenant = tenant
        self._next_job_id = job_id_offset
        self._until: Optional[float] = None
        self.jobs_generated = 0
        #: optional observers called with each generated Job
        self.listeners: List[Callable[[Job], None]] = []

    def start(self, until: float) -> None:
        """Begin generating arrivals until simulated time ``until``."""
        if self.rate_profile.max_rate <= 0:
            return
        self._until = until
        self._schedule_next_candidate()

    # ------------------------------------------------------------------
    def _schedule_next_candidate(self) -> None:
        """Thinning step: candidate arrivals come at the max rate."""
        gap = self.rng.exponential(1.0 / self.rate_profile.max_rate)
        t = self.engine.now + gap
        if self._until is not None and t >= self._until:
            return
        self.engine.schedule(t, EventPriority.JOB_ARRIVAL, self._candidate_arrival)

    def _candidate_arrival(self) -> None:
        now = self.engine.now
        accept_probability = self.rate_profile.rate(now) / self.rate_profile.max_rate
        if self.rng.random() < accept_probability:
            self._emit_job(now)
        self._schedule_next_candidate()

    def _emit_job(self, now: float) -> None:
        cores, memory_gb = self.demand.sample(self.rng)
        job = Job(
            job_id=self._next_job_id,
            work_seconds=self.duration.sample_one(self.rng),
            cores=cores,
            memory_gb=memory_gb,
            arrival_time=now,
            product=self.product,
            allowed_rows=self.allowed_rows,
            tenant=self.tenant,
        )
        self._next_job_id += 1
        self.jobs_generated += 1
        for listener in self.listeners:
            listener(job)
        self.scheduler.submit(job)


__all__ = [
    "RateProfile",
    "ConstantRateProfile",
    "DiurnalRateProfile",
    "ModulatedRateProfile",
    "BurstyRateProfile",
    "ScaledRateProfile",
    "SurgeRateProfile",
    "BatchWorkloadGenerator",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
]
