"""Interactive (Redis-like) service and latency benchmark (Figure 11).

The paper deploys a Redis cluster on an over-provisioned row and drives it
with redis-benchmark while batch jobs push row power against the budget,
comparing p99.9 latency under DVFS power capping vs. under Ampere. The
mechanism being measured: Redis is CPU-bound, so capping a busy Redis
server stretches every request's service time by ``1/frequency`` and the
queueing delay compounds it at the tail, while Ampere's freeze/unfreeze
never touches running services.

This module substitutes a queueing model for the real Redis cluster:

- an :class:`InteractiveService` pins a long-running CPU reservation to a
  server (so the service contributes row power) and records the server's
  DVFS frequency timeline;
- :class:`RedisBenchmark` replays each operation type through a G/G/1
  Lindley recursion against that frequency timeline, which yields exact
  waiting times for the sampled arrival/service processes.

DVFS epochs last seconds-to-minutes while requests last microseconds, so
evaluating the frequency at request arrival is an accurate approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.server import Server
from repro.workload.job import Job

#: redis-benchmark operation mix with base service times (seconds) at full
#: frequency. LRANGE_600 walks a 600-element list and is an order of
#: magnitude heavier than point operations, as in the paper's Figure 11.
REDIS_OPERATIONS: Dict[str, float] = {
    "SET": 60e-6,
    "GET": 50e-6,
    "LPUSH": 60e-6,
    "LPOP": 60e-6,
    "LRANGE_600": 700e-6,
    "MSET": 150e-6,
}


class InteractiveService:
    """A latency-critical service instance pinned to one server.

    The service occupies ``cores`` for its whole life (it is registered
    with the server directly, not through the scheduler -- services are
    long-lived and pinned in production) and transcribes the server's DVFS
    frequency changes into a timeline the benchmark replays.
    """

    _next_service_id = 1_000_000_000

    def __init__(self, server: Server, engine, scheduler, cores: float = 8.0) -> None:
        self.server = server
        self.engine = engine
        self.cores = cores
        start_time = engine.now
        # A pseudo-job holds the resource reservation; it never completes.
        self._reservation = Job(
            job_id=InteractiveService._next_service_id,
            work_seconds=float("inf"),
            cores=cores,
            memory_gb=cores * 2.0,
            arrival_time=start_time,
            product="interactive",
        )
        InteractiveService._next_service_id += 1
        scheduler.place_pinned(self._reservation, server.server_id)
        self._frequency_changes: List[Tuple[float, float]] = [
            (start_time, server.frequency)
        ]
        server.frequency_listeners.append(self._on_frequency_change)

    def _on_frequency_change(
        self, server: Server, old_frequency: float, new_frequency: float
    ) -> None:
        self._frequency_changes.append((self.engine.now, new_frequency))

    def frequency_timeline(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(change_times, frequencies)`` arrays, first entry at start."""
        times = np.array([t for t, _ in self._frequency_changes])
        freqs = np.array([f for _, f in self._frequency_changes])
        return times, freqs

    def frequency_at(self, times: np.ndarray) -> np.ndarray:
        """Frequency in effect at each query time (vectorized)."""
        change_times, freqs = self.frequency_timeline()
        indices = np.searchsorted(change_times, times, side="right") - 1
        indices = np.clip(indices, 0, len(freqs) - 1)
        return freqs[indices]

    def fraction_time_capped(self, start: float, end: float) -> float:
        """Fraction of [start, end) spent below full frequency."""
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        grid = np.linspace(start, end, 2049)
        return float(np.mean(self.frequency_at(grid) < 1.0))


@dataclass
class LatencyReport:
    """Latency percentiles for one operation type."""

    operation: str
    requests: int
    p50: float
    p99: float
    p999: float
    mean: float


def lindley_waits(interarrivals: np.ndarray, services: np.ndarray) -> np.ndarray:
    """Waiting times of a FIFO single-server queue (Lindley recursion).

    ``W[0] = 0; W[n] = max(0, W[n-1] + S[n-1] - A[n])`` where ``A[n]`` is
    the gap between arrivals n-1 and n. Computed in closed form: with
    ``X[n] = S[n-1] - A[n]`` and ``C`` its cumulative sum (``C[0] = 0``),
    ``W[n] = C[n] - min(C[0..n])``, which vectorizes to a running minimum
    -- essential because a benchmark replays millions of requests.
    """
    if interarrivals.shape != services.shape:
        raise ValueError("interarrivals and services must have equal shape")
    n = len(services)
    if n == 0:
        return np.empty(0)
    cumulative = np.empty(n)
    cumulative[0] = 0.0
    np.cumsum(services[:-1] - interarrivals[1:], out=cumulative[1:])
    return cumulative - np.minimum.accumulate(cumulative)


class RedisBenchmark:
    """Replays redis-benchmark against a set of interactive services.

    Like the real redis-benchmark, each operation type is driven in its
    own phase at a fixed offered rate, spread uniformly across the service
    instances; the client-side latency of a request is queueing wait plus
    frequency-scaled service time.
    """

    def __init__(
        self,
        services: Sequence[InteractiveService],
        rng: np.random.Generator,
        target_utilization: float = 0.35,
        service_cv: float = 0.5,
        max_requests_per_server: int = 2_000_000,
    ) -> None:
        if not services:
            raise ValueError("need at least one service instance")
        if not 0.0 < target_utilization < 1.0:
            raise ValueError(
                f"target_utilization must be in (0, 1), got {target_utilization}"
            )
        if service_cv < 0:
            raise ValueError(f"service_cv must be non-negative, got {service_cv}")
        if max_requests_per_server < 1000:
            raise ValueError("max_requests_per_server must be at least 1000")
        self.services = list(services)
        self.rng = rng
        self.target_utilization = target_utilization
        self.service_cv = service_cv
        self.max_requests_per_server = max_requests_per_server

    def run_operation(
        self, operation: str, start: float, end: float
    ) -> LatencyReport:
        """Benchmark one operation type over the window [start, end)."""
        if operation not in REDIS_OPERATIONS:
            raise KeyError(f"unknown operation {operation!r}")
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        base_service = REDIS_OPERATIONS[operation]
        latencies: List[np.ndarray] = []
        for service in self.services:
            latencies.append(self._one_server(service, base_service, start, end))
        merged = np.concatenate(latencies)
        return LatencyReport(
            operation=operation,
            requests=len(merged),
            p50=float(np.percentile(merged, 50)),
            p99=float(np.percentile(merged, 99)),
            p999=float(np.percentile(merged, 99.9)),
            mean=float(merged.mean()),
        )

    def run_all(
        self, start: float, end: float, operations: Optional[Sequence[str]] = None
    ) -> Dict[str, LatencyReport]:
        ops = list(operations) if operations is not None else list(REDIS_OPERATIONS)
        return {op: self.run_operation(op, start, end) for op in ops}

    # ------------------------------------------------------------------
    _N_SEGMENTS = 64

    def _one_server(
        self,
        service: InteractiveService,
        base_service: float,
        start: float,
        end: float,
    ) -> np.ndarray:
        """Client-observed latencies of one server over the window.

        Open-loop Poisson arrivals at the rate that loads the server to the
        target utilization at full frequency. When the full window would
        exceed the request budget, the window is split into equal segments
        and an evenly strided subset is replayed -- stratified across the
        whole window so capped epochs anywhere in the run are covered
        proportionally.
        """
        rate = self.target_utilization / base_service
        total_expected = rate * (end - start)
        if total_expected <= self.max_requests_per_server:
            windows = [(start, end)]
        else:
            # Replay K windows centered in K equal strata of the full
            # range, sized so the total request count meets the budget.
            # Every part of the run -- capped or not -- is sampled with
            # equal weight.
            k = self._N_SEGMENTS
            stratum = (end - start) / k
            window_len = min(self.max_requests_per_server / k / rate, stratum)
            windows = []
            for i in range(k):
                center = start + (i + 0.5) * stratum
                windows.append((center - window_len / 2, center + window_len / 2))
        latencies = [
            self._simulate_window(service, base_service, rate, w0, w1)
            for w0, w1 in windows
        ]
        return np.concatenate(latencies)

    def _simulate_window(
        self,
        service: InteractiveService,
        base_service: float,
        rate: float,
        start: float,
        end: float,
    ) -> np.ndarray:
        expected = int(rate * (end - start))
        gaps = self.rng.exponential(1.0 / rate, size=max(int(expected * 1.1), 64))
        arrivals = start + np.cumsum(gaps)
        arrivals = arrivals[arrivals < end]
        if len(arrivals) < 2:
            raise ValueError(
                "benchmark window too short for the configured request rate"
            )
        # Gamma-distributed service times (cv configurable), stretched by
        # 1/frequency at the arrival instant.
        if self.service_cv > 0:
            shape = 1.0 / (self.service_cv**2)
            raw = self.rng.gamma(shape, base_service / shape, size=len(arrivals))
        else:
            raw = np.full(len(arrivals), base_service)
        frequency = service.frequency_at(arrivals)
        services = raw / frequency
        interarrivals = np.empty_like(arrivals)
        interarrivals[0] = 0.0
        interarrivals[1:] = np.diff(arrivals)
        waits = lindley_waits(interarrivals, services)
        return waits + services


__all__ = [
    "InteractiveService",
    "RedisBenchmark",
    "LatencyReport",
    "lindley_waits",
    "REDIS_OPERATIONS",
]
