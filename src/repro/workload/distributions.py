"""Statistical distributions calibrated to the paper's published workload.

Figure 7 of the paper gives the CDF of batch-job durations in the
production cluster: the mean is about 9 minutes, roughly 40% of jobs
finish within 2 minutes, and the CDF reaches ~1.0 at 50 minutes. A
clipped lognormal with ``sigma = 1.6`` and median ~3.5 minutes matches
those anchors (clipped mean 9.0 min, P(<=2 min) = 0.36); the calibration
is locked in by tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

#: Lognormal parameters for job duration in MINUTES (see module docstring).
#: With mu = 1.25, sigma = 1.6 and the 50-minute clip, the clipped mean is
#: ~9.0 minutes and P(duration <= 2 min) ~ 0.36, matching Figure 7's
#: anchors (mean ~9 min, ~40% within 2 min, CDF reaching 1.0 at 50 min).
DURATION_LOG_MU_MINUTES = 1.25
DURATION_LOG_SIGMA = 1.6
DURATION_MAX_MINUTES = 50.0

#: Monte-Carlo clipped mean of the default distribution, used by the
#: arrival-rate calibration (Little's law).
DEFAULT_MEAN_DURATION_SECONDS = 540.0


@dataclass(frozen=True)
class JobDurationDistribution:
    """Truncated lognormal batch-job duration distribution (Figure 7).

    Durations are sampled in seconds. Samples above ``max_seconds`` are
    clipped, matching the paper's CDF reaching 1.0 at 50 minutes (long
    MapReduce stages are checkpoint-bounded in production).
    """

    log_mu_minutes: float = DURATION_LOG_MU_MINUTES
    log_sigma: float = DURATION_LOG_SIGMA
    max_seconds: float = DURATION_MAX_MINUTES * 60.0
    min_seconds: float = 5.0

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` durations in seconds."""
        minutes = rng.lognormal(self.log_mu_minutes, self.log_sigma, size=size)
        seconds = minutes * 60.0
        return np.clip(seconds, self.min_seconds, self.max_seconds)

    def sample_one(self, rng: np.random.Generator) -> float:
        return float(self.sample(rng, 1)[0])

    def cdf(self, seconds: float) -> float:
        """Analytic CDF of the (clipped) distribution."""
        if seconds < self.min_seconds:
            return 0.0
        if seconds >= self.max_seconds:
            return 1.0
        z = (math.log(seconds / 60.0) - self.log_mu_minutes) / self.log_sigma
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))

    def mean_seconds(self, rng: np.random.Generator, n: int = 200_000) -> float:
        """Monte-Carlo mean of the clipped distribution."""
        return float(np.mean(self.sample(rng, n)))

    def mean_analytic(self) -> float:
        """Analytic clipped-lognormal mean in seconds.

        E[min(X, b)] for X ~ LN(mu, sigma) via the partial-expectation
        formula; the lower clip's effect is negligible for realistic
        minima and is ignored.
        """
        mu, sigma = self.log_mu_minutes, self.log_sigma
        b = self.max_seconds / 60.0
        z = (math.log(b) - mu) / sigma

        def phi(x: float) -> float:
            return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))

        body = math.exp(mu + sigma * sigma / 2.0) * phi(z - sigma)
        tail = b * (1.0 - phi(z))
        return (body + tail) * 60.0


@dataclass(frozen=True)
class ResourceDemandDistribution:
    """Per-job CPU/memory demand.

    Default mix: mostly small one- or two-core tasks with a tail of
    four-core tasks, memory proportional to cores -- representative of the
    mixed MapReduce workload the paper describes. ``mean_cores`` is used by
    the load calibration helper.
    """

    core_choices: Tuple[float, ...] = (1.0, 2.0, 4.0)
    core_weights: Tuple[float, ...] = (0.50, 0.35, 0.15)
    memory_per_core_gb: float = 2.0

    def __post_init__(self) -> None:
        if len(self.core_choices) != len(self.core_weights):
            raise ValueError("core_choices and core_weights must have equal length")
        total = sum(self.core_weights)
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            raise ValueError(f"core_weights must sum to 1.0, got {total}")

    @property
    def mean_cores(self) -> float:
        return sum(c * w for c, w in zip(self.core_choices, self.core_weights))

    def sample(self, rng: np.random.Generator) -> Tuple[float, float]:
        """Draw one ``(cores, memory_gb)`` demand."""
        cores = float(rng.choice(self.core_choices, p=self.core_weights))
        return cores, cores * self.memory_per_core_gb


def rate_for_target_utilization(
    n_servers: int,
    cores_per_server: int,
    target_utilization: float,
    demand: ResourceDemandDistribution = ResourceDemandDistribution(),
    mean_duration_seconds: float = DEFAULT_MEAN_DURATION_SECONDS,
) -> float:
    """Arrival rate (jobs/second) that drives mean core utilization to target.

    Little's law: offered core-seconds per second = rate * mean_cores *
    mean_duration; setting that equal to ``target * total_cores`` gives the
    rate. The default ``mean_duration_seconds`` is the clipped-lognormal
    mean of :class:`JobDurationDistribution` (~9 minutes).
    """
    if not 0.0 < target_utilization <= 1.0:
        raise ValueError(
            f"target_utilization must be in (0, 1], got {target_utilization}"
        )
    total_cores = n_servers * cores_per_server
    return target_utilization * total_cores / (demand.mean_cores * mean_duration_seconds)


def empirical_cdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_probabilities)`` for plotting."""
    values = np.sort(np.asarray(samples, dtype=float))
    if values.size == 0:
        raise ValueError("empirical_cdf requires at least one sample")
    probs = np.arange(1, values.size + 1) / values.size
    return values, probs


__all__ = [
    "JobDurationDistribution",
    "ResourceDemandDistribution",
    "rate_for_target_utilization",
    "empirical_cdf",
    "DURATION_LOG_MU_MINUTES",
    "DURATION_LOG_SIGMA",
    "DURATION_MAX_MINUTES",
    "DEFAULT_MEAN_DURATION_SECONDS",
]
