"""Multi-row production-like power traces (Figures 1, 2, 8, 9).

Section 2.2's observations -- utilization lower at larger aggregation
scale, strong temporal and spatial variation across rows, weak cross-row
correlation -- all stem from one production fact: *different rows mainly
run different sets of products*. This module builds a multi-row data
center where each row hosts its own product with its own mean intensity,
diurnal phase and minute-scale modulation, then records rack-, row- and
data-center-level power for the analysis layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cluster.datacenter import DataCenter, build_datacenter
from repro.monitor.power_monitor import PowerMonitor
from repro.monitor.tsdb import TimeSeriesDatabase
from repro.scheduler.omega import OmegaScheduler
from repro.sim.engine import Engine
from repro.workload.distributions import (
    JobDurationDistribution,
    ResourceDemandDistribution,
    rate_for_target_utilization,
)
from repro.workload.generator import (
    BatchWorkloadGenerator,
    DiurnalRateProfile,
    ModulatedRateProfile,
)

SECONDS_PER_DAY = 86400.0

#: Default per-row mean task utilizations: a spread of hot and cold
#: products that lands data-center mean power utilization near the
#: paper's ~0.70 of provisioned budget.
DEFAULT_ROW_UTILIZATIONS = (0.10, 0.14, 0.18, 0.24, 0.32)


@dataclass(frozen=True)
class MultiRowTraceConfig:
    """Configuration for a multi-row trace run."""

    n_rows: int = 5
    racks_per_row: int = 2
    servers_per_rack: int = 40
    days: float = 2.0
    warmup_hours: float = 2.0
    row_utilizations: Optional[Tuple[float, ...]] = None
    diurnal_amplitude: float = 0.20
    modulation_sigma: float = 0.12
    cores: int = 16
    seed: int = 0
    monitor_interval: float = 60.0

    def utilizations(self) -> Tuple[float, ...]:
        if self.row_utilizations is not None:
            if len(self.row_utilizations) != self.n_rows:
                raise ValueError(
                    f"row_utilizations has {len(self.row_utilizations)} entries "
                    f"for {self.n_rows} rows"
                )
            return self.row_utilizations
        base = DEFAULT_ROW_UTILIZATIONS
        return tuple(base[i % len(base)] for i in range(self.n_rows))


@dataclass
class MultiRowTraceResult:
    """Recorded series for every aggregation level."""

    config: MultiRowTraceConfig
    datacenter: DataCenter
    db: TimeSeriesDatabase
    monitor: PowerMonitor
    measure_start: float
    measure_end: float

    def _norm_series(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        return self.db.query(
            f"power_norm/{name}", self.measure_start, self.measure_end
        )

    def row_series(self) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        return {
            row.name: self._norm_series(row.name) for row in self.datacenter.rows
        }

    def rack_series(self) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        return {
            rack.name: self._norm_series(rack.name) for rack in self.datacenter.racks
        }

    def datacenter_series(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._norm_series(self.datacenter.name)

    def pooled_utilization_samples(self, level: str) -> np.ndarray:
        """All normalized power samples at a level, pooled (Figure 1)."""
        if level == "rack":
            series = self.rack_series().values()
        elif level == "row":
            series = self.row_series().values()
        elif level == "datacenter":
            series = [self.datacenter_series()]
        else:
            raise ValueError(f"unknown level {level!r}")
        return np.concatenate([values for _, values in series])


def run_multi_row_trace(config: MultiRowTraceConfig = MultiRowTraceConfig()) -> MultiRowTraceResult:
    """Simulate the multi-row data center and record all power series."""
    datacenter = build_datacenter(
        rows=config.n_rows,
        racks_per_row=config.racks_per_row,
        servers_per_rack=config.servers_per_rack,
        cores=config.cores,
    )
    engine = Engine()
    root = np.random.SeedSequence(config.seed)
    seeds = root.spawn(2 + config.n_rows)
    scheduler = OmegaScheduler(
        engine, datacenter.servers, rng=np.random.default_rng(seeds[0])
    )
    db = TimeSeriesDatabase()
    monitor = PowerMonitor(
        engine, db=db, interval=config.monitor_interval,
        rng=np.random.default_rng(seeds[1]),
    )
    monitor.register_group(datacenter)
    for row in datacenter.rows:
        monitor.register_group(row)
    for rack in datacenter.racks:
        monitor.register_group(rack)

    warmup = config.warmup_hours * 3600.0
    end = warmup + config.days * SECONDS_PER_DAY
    duration_dist = JobDurationDistribution()
    demand_dist = ResourceDemandDistribution()
    utilizations = config.utilizations()
    for i, row in enumerate(datacenter.rows):
        row_seed_seq = seeds[2 + i]
        row_rng = np.random.default_rng(row_seed_seq)
        base_rate = rate_for_target_utilization(
            len(row.servers), config.cores, utilizations[i], demand=demand_dist
        )
        # Randomize diurnal phases so rows peak at different times of day,
        # producing the weak cross-row correlation of Section 2.2 (random
        # rather than uniform stagger: a uniform stagger manufactures
        # strong anti-correlations between opposite-phase rows).
        phase = float(row_rng.uniform(0.0, SECONDS_PER_DAY))
        profile = DiurnalRateProfile(
            base_rate, amplitude=config.diurnal_amplitude, phase_seconds=phase
        )
        modulated = ModulatedRateProfile(
            profile,
            horizon_seconds=end,
            seed=int(row_seed_seq.generate_state(1)[0]),
            sigma=config.modulation_sigma,
        )
        generator = BatchWorkloadGenerator(
            engine,
            scheduler,
            modulated,
            rng=row_rng,
            duration=duration_dist,
            demand=demand_dist,
            product=f"product-{i}",
            allowed_rows=[row.row_id],
            job_id_offset=i * 10_000_000,
        )
        generator.start(end)

    monitor.start(end, first_at=warmup)
    engine.run(until=end)
    return MultiRowTraceResult(
        config=config,
        datacenter=datacenter,
        db=db,
        monitor=monitor,
        measure_start=warmup,
        measure_end=end,
    )


__all__ = [
    "MultiRowTraceConfig",
    "MultiRowTraceResult",
    "run_multi_row_trace",
    "DEFAULT_ROW_UTILIZATIONS",
]
