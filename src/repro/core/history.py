"""Bounded append-only history: the ring buffer behind RowControlState.

The controller records one commanded-``u`` sample (plus a timestamp and a
prediction residual) per control interval and per row. Unbounded, those
lists grow for the entire run -- harmless for a 24 h experiment, a real
memory leak for multi-row fleet campaigns that run for simulated weeks.

:class:`BoundedHistory` is a drop-in replacement: it quacks like the list
the rest of the code (and the tests) expect -- ``append``, iteration,
indexing, ``len``, equality against plain lists, ``np.asarray`` -- but
retains at most ``limit`` most-recent items (``limit=0`` keeps the
historical unbounded behaviour, which is what the golden trajectories
pin). Statistics computed over it (``u_mean``/``u_max``/
``residual_summary``) are *exact over the retained window* by
construction: they iterate the retained items, never an approximation.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Union

import numpy as np


class BoundedHistory:
    """List-like append-only series keeping the last ``limit`` items.

    ``limit=0`` (the default) means unbounded -- identical retention to a
    plain list. The implementation is a ``collections.deque`` with
    ``maxlen``, so bounded appends are O(1) ring-buffer writes, never a
    shift or reallocation.
    """

    __slots__ = ("_items", "limit")

    def __init__(self, items: Iterable[float] = (), limit: int = 0) -> None:
        limit = int(limit)
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        self.limit = limit
        self._items: deque = deque(items, maxlen=limit if limit else None)

    def append(self, value: float) -> None:
        self._items.append(value)

    def clear(self) -> None:
        self._items.clear()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[float]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return list(self._items)[index]
        return self._items[index]

    def __eq__(self, other: object) -> bool:
        """Element-wise equality against any sequence (lists in tests)."""
        if isinstance(other, BoundedHistory):
            return list(self._items) == list(other._items)
        if isinstance(other, (list, tuple, deque)):
            return list(self._items) == list(other)
        return NotImplemented

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        """Support ``np.asarray(history)`` (GroupOutcome collection)."""
        return np.array(list(self._items), dtype=dtype if dtype else float)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BoundedHistory({list(self._items)!r}, limit={self.limit})"

    # Deques are picklable, but __slots__ classes need explicit state.
    def __getstate__(self) -> tuple:
        return (list(self._items), self.limit)

    def __setstate__(self, state: tuple) -> None:
        items, limit = state
        self.limit = limit
        self._items = deque(items, maxlen=limit if limit else None)


__all__ = ["BoundedHistory"]
