"""Receding-horizon control: the PCP and SPCP of Section 3.6.

All power quantities are normalized to the provisioned budget ``P_M``
(so ``P_M == 1.0`` in these equations, as in the paper's Table 1).

The Power Control Problem (PCP) minimizes total freezing
``C(U_t) = sum_k u_k`` over a horizon of N intervals subject to
``P_{k+1} = P_k + E_k - f(u_k) <= P_M`` and ``0 <= u_k <= 1``. With the
empirically linear freeze effect ``f(u) = k_r * u`` the problem reduces
(Lemma 3.1) to solving the one-step SPCP at each interval:

    u_t = max(min((P_t + E_t - P_M) / k_r, 1.0), 0.0)        (Eq. 13)

Both the closed-form SPCP and the iterated-SPCP construction of the
optimal PCP sequence are implemented here, plus a bisection-based variant
for non-linear monotone ``f`` (the paper notes PCP does not require
linearity).
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence


def spcp_optimal_ratio(
    p_t: float,
    e_t: float,
    k_r: float,
    p_m: float = 1.0,
    u_max: float = 1.0,
) -> float:
    """Optimal freezing ratio of the simplified PCP (Eq. 13).

    Parameters
    ----------
    p_t:
        Current row power, normalized to the budget.
    e_t:
        Predicted power increase over the next interval (normalized).
    k_r:
        Slope of the linear freeze-effect model ``f(u) = k_r * u``.
    p_m:
        Power limit (1.0 when working in normalized units).
    u_max:
        Operational ceiling on the freezing ratio (the paper's 50% limit).
        The paper's Eq. 13 uses ``u_max = 1.0``; production clamps lower.
    """
    if k_r <= 0:
        raise ValueError(f"k_r must be positive, got {k_r}")
    if not 0.0 < u_max <= 1.0:
        raise ValueError(f"u_max must be in (0, 1], got {u_max}")
    if not (math.isfinite(p_t) and math.isfinite(e_t)):
        # A NaN/inf reading reaching the optimizer means an upstream
        # staleness guard failed; refusing loudly beats a silent clamp
        # that would freeze nothing (NaN compares false everywhere).
        raise ValueError(f"non-finite SPCP inputs: p_t={p_t}, e_t={e_t}")
    unclamped = (p_t + e_t - p_m) / k_r
    return max(min(unclamped, u_max), 0.0)


def threshold_ratio(e_t: float, p_m: float = 1.0) -> float:
    """The r_threshold of Algorithm 1: control engages when P_t exceeds it.

    The safety margin is ``[P_M - E_t, P_M]`` (Figure 6): below
    ``P_M - E_t`` even the predicted worst-case increase cannot violate
    the budget, so no control is needed.
    """
    return p_m - e_t


def pcp_optimal_sequence(
    p_t: float,
    e_sequence: Sequence[float],
    k_r: float,
    p_m: float = 1.0,
    u_max: float = 1.0,
) -> List[float]:
    """Optimal control sequence for the N-step PCP via iterated SPCP.

    Lemma 3.1: with linear ``f``, solving the one-step SPCP at each step of
    the horizon (propagating the resulting power forward) yields an optimal
    solution of the full PCP. Raises ``ValueError`` when no feasible
    solution exists within ``u_max`` (power would exceed the budget even
    with maximal freezing).
    """
    controls: List[float] = []
    power = p_t
    for step, e_k in enumerate(e_sequence):
        u_k = spcp_optimal_ratio(power, e_k, k_r, p_m=p_m, u_max=u_max)
        next_power = power + e_k - k_r * u_k
        if next_power > p_m + 1e-9:
            raise ValueError(
                f"PCP infeasible at step {step}: power {next_power:.4f} "
                f"exceeds limit {p_m} even at u_max={u_max}"
            )
        controls.append(u_k)
        power = next_power
    return controls


def pcp_cost(controls: Sequence[float]) -> float:
    """The PCP cost function C(U_t) = sum of freezing ratios (Eq. 2)."""
    return float(sum(controls))


def simulate_power_trajectory(
    p_t: float,
    e_sequence: Sequence[float],
    controls: Sequence[float],
    k_r: float,
) -> List[float]:
    """Power trajectory P_{t+1..t+N} under the PCP dynamics (Eq. 8)."""
    if len(e_sequence) != len(controls):
        raise ValueError(
            f"length mismatch: {len(e_sequence)} demands vs {len(controls)} controls"
        )
    trajectory: List[float] = []
    power = p_t
    for e_k, u_k in zip(e_sequence, controls):
        if not 0.0 <= u_k <= 1.0:
            raise ValueError(f"control {u_k} outside [0, 1]")
        power = power + e_k - k_r * u_k
        trajectory.append(power)
    return trajectory


def spcp_optimal_ratio_nonlinear(
    p_t: float,
    e_t: float,
    f: Callable[[float], float],
    p_m: float = 1.0,
    u_max: float = 1.0,
    tolerance: float = 1e-9,
) -> float:
    """SPCP solution for a general monotone non-decreasing freeze effect.

    Finds the smallest ``u`` in ``[0, u_max]`` with
    ``p_t + e_t - f(u) <= p_m`` by bisection; returns ``u_max`` when even
    maximal freezing cannot satisfy the constraint (the controller then
    saturates, exactly as with the paper's 50% limit in Figure 10b).
    """
    required = p_t + e_t - p_m
    if required <= 0.0:
        return 0.0
    if f(u_max) < required - tolerance:
        return u_max
    lo, hi = 0.0, u_max
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if f(mid) >= required:
            hi = mid
        else:
            lo = mid
    return hi


__all__ = [
    "spcp_optimal_ratio",
    "threshold_ratio",
    "pcp_optimal_sequence",
    "pcp_cost",
    "simulate_power_trajectory",
    "spcp_optimal_ratio_nonlinear",
]
