"""Ampere: the paper's statistical power controller.

The controller keeps each row's power under its provisioned budget by
freezing/unfreezing servers -- statistically steering new job placements
away from hot rows -- using a one-step receding-horizon control law
(Eq. 13 of the paper) built on two data-driven models: the freeze-effect
slope ``k_r`` (:mod:`repro.core.freeze_model`) and the hourly
99.5th-percentile power-increase estimate ``E_t``
(:mod:`repro.core.demand`).
"""

from repro.core.config import AmpereConfig
from repro.core.controller import AmpereController, RowControlState
from repro.core.freeze_model import FreezeEffectModel, DEFAULT_K_R
from repro.core.demand import (
    PowerDemandEstimator,
    ConstantDemandEstimator,
    EwmaDemandEstimator,
)
from repro.core.rhc import (
    spcp_optimal_ratio,
    pcp_optimal_sequence,
    pcp_cost,
    spcp_optimal_ratio_nonlinear,
    simulate_power_trajectory,
)
from repro.core.policy import FreezePlan, plan_freeze_set
from repro.core.safety import (
    SafetyConfig,
    SafetyState,
    SafetyStats,
    SafetySupervisor,
)

__all__ = [
    "SafetyConfig",
    "SafetyState",
    "SafetyStats",
    "SafetySupervisor",
    "AmpereConfig",
    "AmpereController",
    "RowControlState",
    "FreezeEffectModel",
    "DEFAULT_K_R",
    "PowerDemandEstimator",
    "ConstantDemandEstimator",
    "EwmaDemandEstimator",
    "spcp_optimal_ratio",
    "pcp_optimal_sequence",
    "pcp_cost",
    "spcp_optimal_ratio_nonlinear",
    "simulate_power_trajectory",
    "FreezePlan",
    "plan_freeze_set",
]
