"""Defense-in-depth emergency ladder above the statistical controller.

Ampere's statistical steering is deliberately slow (minute-scale, small
steps); it keeps *average* power under the budget but cannot stop a fast
demand surge from walking into the breaker's trip curve. The
:class:`SafetySupervisor` is the layer that can. It watches true group
power and the breaker's thermal state on a fast tick and escalates
through increasingly damaging responses:

====================  ==================================================
state                 response
====================  ==================================================
``NORMAL``            statistical steering only; unwind any emergency
                      caps while headroom allows
``WARNING``           freeze every server in the group (no new work; the
                      paper's SLA-safe action, just applied wholesale)
``CRITICAL``          slam DVFS to the floor via the capping engine --
                      an immediate, guaranteed power cut that damages
                      running jobs
``SHED``              drop batch work, hottest servers first, until the
                      group is back under its budget -- the last resort
                      before the breaker does it for us
====================  ==================================================

Escalation is immediate (a breaker does not wait), de-escalation is
hysteretic: the group must hold below ``release_ratio`` for
``release_ticks`` consecutive ticks to step *one* level down, which
prevents slam/restore flapping at the threshold.

Like the breaker -- and unlike the Ampere controller -- the supervisor
reads **true** power: it models a local hardware-protection path (think
PDU-attached microcontroller), so monitoring blackouts and sensor
miscalibration do not blind it. That asymmetry is the point of defense
in depth: each layer fails independently.
"""

from __future__ import annotations

import enum
import logging
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.cluster.breaker import BreakerCurve
from repro.sim.engine import Engine
from repro.sim.events import EventPriority

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.cluster.breaker import RowBreaker
    from repro.cluster.capping import CappingEngine
    from repro.cluster.group import ServerGroup
    from repro.scheduler.omega import OmegaScheduler
    from repro.sim.eventlog import ControlEventLog
    from repro.telemetry import Telemetry

logger = logging.getLogger(__name__)


class SafetyState(enum.IntEnum):
    """Ladder position; higher is more damaging."""

    NORMAL = 0
    WARNING = 1
    CRITICAL = 2
    SHED = 3


@dataclass(frozen=True)
class SafetyConfig:
    """Configuration of the breaker model and the escalation ladder.

    Attributes
    ----------
    supervisor_enabled:
        When False only the breaker physics are armed -- the
        "what happens without the ladder" ablation.
    interval_seconds:
        Supervisor tick period. Must be fast relative to the breaker's
        time-to-trip at plausible overloads (15 s against a >40 s curve).
    warning_ratio / critical_ratio:
        True power over budget at which the ladder enters WARNING /
        CRITICAL.
    shed_thermal_fraction:
        Breaker heat (fraction of its trip threshold) at which load is
        shed: if freezing and slamming haven't stopped the thermal
        element, drop work before it trips.
    release_ratio / release_ticks:
        De-escalate one level after ``release_ticks`` consecutive ticks
        with power below ``release_ratio`` and the breaker cooling.
    breaker / breaker_interval_seconds / breaker_reset_minutes:
        The physical trip curve, its evaluation period, and the operator
        delay before a tripped row is re-energized.
    """

    supervisor_enabled: bool = True
    interval_seconds: float = 15.0
    warning_ratio: float = 1.0
    critical_ratio: float = 1.05
    shed_thermal_fraction: float = 0.35
    release_ratio: float = 0.95
    release_ticks: int = 3
    breaker: BreakerCurve = BreakerCurve()
    breaker_interval_seconds: float = 5.0
    breaker_reset_minutes: float = 15.0

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got {self.interval_seconds}"
            )
        if not 0.0 < self.release_ratio < self.warning_ratio:
            raise ValueError(
                "need 0 < release_ratio < warning_ratio, got "
                f"{self.release_ratio} vs {self.warning_ratio}"
            )
        if self.critical_ratio < self.warning_ratio:
            raise ValueError(
                "critical_ratio must be >= warning_ratio, got "
                f"{self.critical_ratio} < {self.warning_ratio}"
            )
        if not 0.0 < self.shed_thermal_fraction <= 1.0:
            raise ValueError(
                "shed_thermal_fraction must be in (0, 1], got "
                f"{self.shed_thermal_fraction}"
            )
        if self.release_ticks < 1:
            raise ValueError(
                f"release_ticks must be >= 1, got {self.release_ticks}"
            )
        if self.breaker_interval_seconds <= 0:
            raise ValueError(
                "breaker_interval_seconds must be positive, got "
                f"{self.breaker_interval_seconds}"
            )
        if self.breaker_reset_minutes <= 0:
            raise ValueError(
                "breaker_reset_minutes must be positive, got "
                f"{self.breaker_reset_minutes}"
            )


@dataclass
class SafetyStats:
    """Picklable account of what the ladder actually did."""

    ticks: int = 0
    escalations: int = 0
    deescalations: int = 0
    max_state: int = 0
    freezes_issued: int = 0
    slams: int = 0
    jobs_shed: int = 0
    #: simulated seconds spent in each state (by state name)
    seconds_in_state: Dict[str, float] = field(default_factory=dict)
    #: (time, from_state, to_state) transition history
    transitions: List[tuple] = field(default_factory=list)

    def snapshot(self) -> "SafetyStats":
        return replace(
            self,
            seconds_in_state=dict(self.seconds_in_state),
            transitions=list(self.transitions),
        )


class SafetySupervisor:
    """Arbitrates the emergency mechanisms for one protected group."""

    def __init__(
        self,
        engine: Engine,
        group: "ServerGroup",
        scheduler: "OmegaScheduler",
        capping: "CappingEngine",
        config: SafetyConfig = SafetyConfig(),
        breaker: Optional["RowBreaker"] = None,
        event_log: Optional["ControlEventLog"] = None,
        telemetry: Optional["Telemetry"] = None,
        rating_watts: Optional[float] = None,
    ) -> None:
        if rating_watts is not None and rating_watts <= 0:
            raise ValueError(
                f"rating_watts must be positive, got {rating_watts}"
            )
        # Ladder thresholds are anchored to the *physical* feed rating,
        # like the breaker's pickup current: a fleet coordinator moving a
        # row's allocation must never move the emergency thresholds.
        self.rating_watts = float(
            rating_watts if rating_watts is not None else group.power_budget_watts
        )
        self.engine = engine
        self.group = group
        self.scheduler = scheduler
        self.capping = capping
        self.config = config
        self.breaker = breaker
        self.event_log = event_log
        self.state = SafetyState.NORMAL
        self.stats = SafetyStats()
        self._calm_ticks = 0
        #: servers *we* froze (the controller's own freezes are not ours
        #: to undo when the emergency passes)
        self._frozen_by_supervisor: Set[int] = set()
        if telemetry is None:
            from repro.telemetry import Telemetry

            telemetry = getattr(engine, "telemetry", None) or Telemetry.disabled()
        labels = {"group": group.name}
        self._state_gauge = telemetry.gauge(
            "repro_safety_state",
            "Ladder position: 0 normal, 1 warning, 2 critical, 3 shed",
            labels,
        )
        self._escalation_counter = telemetry.counter(
            "repro_safety_escalations_total", "Ladder steps up", labels
        )
        self._shed_counter = telemetry.counter(
            "repro_safety_jobs_shed_total",
            "Batch tasks dropped by emergency load shedding",
            labels,
        )

    def start(self, until: float, first_at: Optional[float] = None) -> None:
        """Begin periodic supervision on the engine."""
        self.engine.schedule_periodic(
            self.config.interval_seconds,
            EventPriority.SAFETY_TICK,
            self.tick,
            first_at=first_at,
            until=until,
        )

    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One arbitration pass: assess, transition, act."""
        self.stats.ticks += 1
        interval = self.config.interval_seconds
        per_state = self.stats.seconds_in_state
        per_state[self.state.name] = per_state.get(self.state.name, 0.0) + interval

        if self.breaker is not None and self.breaker.tripped:
            # The event we exist to prevent happened anyway; there is
            # nothing to protect until the operator resets the feed.
            return

        ratio = self.group.power_watts() / self.rating_watts
        thermal = self.breaker.thermal_fraction if self.breaker is not None else 0.0
        assessed = self._assess(ratio, thermal)

        if assessed > self.state:
            self._transition(assessed)  # escalate immediately
            self._calm_ticks = 0
        elif assessed < self.state:
            # Hysteretic de-escalation: hold below the release line for
            # release_ticks, then step down ONE level at a time.
            if ratio <= self.config.release_ratio and thermal < self.config.shed_thermal_fraction:
                self._calm_ticks += 1
                if self._calm_ticks >= self.config.release_ticks:
                    self._transition(SafetyState(self.state - 1))
                    self._calm_ticks = 0
            else:
                self._calm_ticks = 0
        else:
            self._calm_ticks = 0

        self._act(ratio)

    def _assess(self, ratio: float, thermal: float) -> SafetyState:
        """The state the current electrical situation calls for."""
        if thermal >= self.config.shed_thermal_fraction:
            return SafetyState.SHED
        if ratio >= self.config.critical_ratio:
            return SafetyState.CRITICAL
        if ratio >= self.config.warning_ratio:
            return SafetyState.WARNING
        return SafetyState.NORMAL

    def _transition(self, to: SafetyState) -> None:
        frm = self.state
        self.state = to
        self.stats.transitions.append((self.engine.now, frm.name, to.name))
        self.stats.max_state = max(self.stats.max_state, int(to))
        self._state_gauge.set(float(to))
        if to > frm:
            self.stats.escalations += 1
            self._escalation_counter.inc()
            logger.warning(
                "safety ladder on %s: %s -> %s at t=%.0fs",
                self.group.name,
                frm.name,
                to.name,
                self.engine.now,
            )
        else:
            self.stats.deescalations += 1
            logger.info(
                "safety ladder on %s: %s -> %s (de-escalation) at t=%.0fs",
                self.group.name,
                frm.name,
                to.name,
                self.engine.now,
            )
        if to == SafetyState.NORMAL:
            self._release_freezes()

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    def _act(self, ratio: float) -> None:
        if self.state >= SafetyState.WARNING:
            self._freeze_all()
        if self.state >= SafetyState.CRITICAL:
            if self.capping.slam():
                self.stats.slams += 1
        if self.state == SafetyState.SHED:
            self._shed(ratio)
        if self.state == SafetyState.NORMAL:
            # Unwind emergency caps one headroom-guarded step per tick.
            self.capping.restore_step()

    def _freeze_all(self) -> None:
        """Re-assert a whole-group freeze (the controller's reconciliation
        may have unfrozen servers since the last tick; the supervisor
        simply wins by acting more often)."""
        already = self.scheduler.frozen_server_ids()
        for server in self.group.servers:
            if server.server_id in already or server.failed:
                continue
            self.scheduler.freeze(server.server_id)
            self._frozen_by_supervisor.add(server.server_id)
            self.stats.freezes_issued += 1

    def _release_freezes(self) -> None:
        """Undo exactly the freezes this supervisor issued."""
        for server_id in sorted(self._frozen_by_supervisor):
            if server_id in self.scheduler.frozen_server_ids():
                self.scheduler.unfreeze(server_id)
        self._frozen_by_supervisor.clear()

    def _shed(self, ratio: float) -> None:
        """Drop batch work, hottest server first, until under the release
        line (projected on true power, re-read after each server)."""
        target = self.config.release_ratio * self.rating_watts
        victims = sorted(
            (s for s in self.group.servers if not (s.failed or s.powered_off)),
            key=lambda s: (-s.power_watts(), s.server_id),
        )
        shed = 0
        for server in victims:
            if self.group.power_watts() <= target:
                break
            # shed_tasks notifies control listeners, so an attached event
            # log records the action; no need to double-log here.
            shed += self.scheduler.shed_tasks(server.server_id)
        if shed:
            self.stats.jobs_shed += shed
            self._shed_counter.inc(shed)
            logger.error(
                "safety ladder on %s: SHED %d batch task(s) at t=%.0fs",
                self.group.name,
                shed,
                self.engine.now,
            )

    # ------------------------------------------------------------------
    def raise_alarm(self, reason: str) -> None:
        """External escalation hook: force the ladder to at least WARNING.

        Used by the state auditor when an invariant violation suggests
        the control plane can no longer be trusted -- freezing the group
        (the SLA-safe response) buys time without damaging running work.
        The normal hysteretic de-escalation path unwinds the alarm once
        ticks observe a calm, consistent state.
        """
        logger.error(
            "safety alarm on %s at t=%.0fs: %s",
            self.group.name,
            self.engine.now,
            reason,
        )
        if self.state < SafetyState.WARNING:
            self._transition(SafetyState.WARNING)
            self._calm_ticks = 0
            self._freeze_all()

    # ------------------------------------------------------------------
    def stats_snapshot(self) -> SafetyStats:
        return self.stats.snapshot()


__all__ = ["SafetyConfig", "SafetyState", "SafetyStats", "SafetySupervisor"]
