"""The freeze-effect model f(u): how freezing reduces row power.

Section 3.4 of the paper identifies f(u) empirically: run a controlled
experiment where the experiment group is frozen at ratio ``u`` for one
interval, and record the power gap that opens against the (statistically
identical) control group, ``f(u_t) = P^C_{t+1} - P^E_{t+1}`` normalized to
the budget. Figure 5 shows the 25th/50th/75th percentiles of those samples
by ``u``; the median is close to linear, ``f(u) = k_r * u``, which is what
lets the RHC reduce to the closed-form SPCP.

This module provides the sample store, the through-the-origin least-squares
fit for ``k_r``, and the binned percentile summary that regenerates
Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Default slope of f(u) = k_r * u, calibrated on this repository's
#: simulator via the Figure 5 experiment (examples/calibrate_freeze_model.py
#: regenerates it). Normalized power reduction per unit freezing ratio per
#: one-minute interval. The paper's production fit is larger (~0.1-0.2)
#: because its job churn is faster; only the feedback loop's gain depends
#: on it, and RHC absorbs the difference.
DEFAULT_K_R = 0.02


@dataclass(frozen=True)
class FreezeEffectSample:
    """One observation: freezing ratio applied, power gap observed."""

    u: float
    effect: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.u <= 1.0:
            raise ValueError(f"freezing ratio must be in [0, 1], got {self.u}")


class FreezeEffectModel:
    """Data-driven model of the freeze effect, f(u) ~= k_r * u.

    The model tolerates the high per-sample variance the paper reports
    ("we observe high variations on the effects of the control input"):
    the RHC loop corrects residual error every interval, so only the slope
    needs to be roughly right.
    """

    def __init__(self, k_r: float = DEFAULT_K_R) -> None:
        if k_r <= 0:
            raise ValueError(f"k_r must be positive, got {k_r}")
        self._k_r = k_r
        self._samples: List[FreezeEffectSample] = []

    @property
    def k_r(self) -> float:
        """Current slope estimate."""
        return self._k_r

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def predict(self, u: float) -> float:
        """Predicted normalized power reduction for freezing ratio ``u``."""
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"freezing ratio must be in [0, 1], got {u}")
        return self._k_r * u

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def add_sample(self, u: float, effect: float) -> None:
        """Record one ``(u, f(u))`` observation from a controlled run."""
        self._samples.append(FreezeEffectSample(u, effect))

    def add_samples(self, pairs: Sequence[Tuple[float, float]]) -> None:
        for u, effect in pairs:
            self.add_sample(u, effect)

    def fit(self, min_samples: int = 10) -> float:
        """Refit ``k_r`` by least squares through the origin.

        ``k_r = sum(u_i * f_i) / sum(u_i^2)`` over samples with ``u > 0``.
        Keeps the previous slope when there is too little data or the fit
        would be non-positive (a controller must never divide by a
        non-positive slope).
        """
        informative = [s for s in self._samples if s.u > 0]
        if len(informative) < min_samples:
            return self._k_r
        u = np.array([s.u for s in informative])
        effect = np.array([s.effect for s in informative])
        slope = float(np.dot(u, effect) / np.dot(u, u))
        if slope > 0:
            self._k_r = slope
        return self._k_r

    # ------------------------------------------------------------------
    # Figure 5 summary
    # ------------------------------------------------------------------
    def binned_percentiles(
        self,
        bin_width: float = 0.1,
        percentiles: Sequence[float] = (25.0, 50.0, 75.0),
    ) -> Dict[float, Dict[float, float]]:
        """Percentiles of observed f(u) per freezing-ratio bin.

        Returns ``{bin_center: {percentile: value}}`` -- the data behind
        Figure 5. Empty bins are omitted.
        """
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        bins: Dict[float, List[float]] = {}
        for sample in self._samples:
            center = (int(sample.u / bin_width) + 0.5) * bin_width
            bins.setdefault(round(center, 10), []).append(sample.effect)
        summary: Dict[float, Dict[float, float]] = {}
        for center in sorted(bins):
            values = np.asarray(bins[center])
            summary[center] = {
                p: float(np.percentile(values, p)) for p in percentiles
            }
        return summary


__all__ = ["FreezeEffectModel", "FreezeEffectSample", "DEFAULT_K_R"]
