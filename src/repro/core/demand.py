"""Estimating the next-interval power increase E_t (Section 3.6).

The paper's estimator is deliberately conservative: from long-term
monitoring of every row, collect the one-minute power increases, group
them by hour of day (the distribution varies across the day), and use the
99.5th percentile of the matching hour as E_t -- "preparing for almost the
largest change in observed history". Two alternative estimators (constant
and EWMA-based) are provided for the prediction ablation the paper leaves
as future work.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

import numpy as np

SECONDS_PER_HOUR = 3600.0
HOURS_PER_DAY = 24


class DemandEstimator(abc.ABC):
    """Interface: predicted normalized power increase over one interval."""

    @abc.abstractmethod
    def estimate(self, t: float) -> float:
        """E_t at simulated time ``t`` (seconds)."""

    def estimate_sequence(self, t: float, steps: int, interval: float) -> List[float]:
        """Predicted increases for the next ``steps`` intervals.

        Default implementation evaluates the one-step estimate at each
        future instant; estimators with real forecasting can override.
        Used by the N-step PCP controller (the general RHC of Section 3.6).
        """
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        return [self.estimate(t + k * interval) for k in range(steps)]


class ConstantDemandEstimator(DemandEstimator):
    """A fixed E_t -- the simplest safety margin."""

    def __init__(self, e_t: float) -> None:
        if e_t < 0:
            raise ValueError(f"e_t must be non-negative, got {e_t}")
        self._e_t = e_t

    def estimate(self, t: float) -> float:
        return self._e_t


class PowerDemandEstimator(DemandEstimator):
    """The paper's estimator: hourly 99.5th-percentile power increase.

    Parameters
    ----------
    percentile:
        Percentile of historical one-interval increases to use (99.5 =
        paper).
    default_e_t:
        Returned for hours with no history yet.
    min_e_t:
        Floor on the estimate; even a quiet hour keeps a small margin.
    """

    def __init__(
        self,
        percentile: float = 99.5,
        default_e_t: float = 0.025,
        min_e_t: float = 0.005,
    ) -> None:
        if not 0.0 < percentile <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        if default_e_t < 0 or min_e_t < 0:
            raise ValueError("default_e_t and min_e_t must be non-negative")
        self.percentile = percentile
        self.default_e_t = default_e_t
        self.min_e_t = min_e_t
        self._increases_by_hour: Dict[int, List[float]] = {
            h: [] for h in range(HOURS_PER_DAY)
        }
        self._cached: Dict[int, Optional[float]] = {h: None for h in range(HOURS_PER_DAY)}

    @staticmethod
    def hour_of_day(t: float) -> int:
        """Hour-of-day bucket for a simulated timestamp."""
        return int(t // SECONDS_PER_HOUR) % HOURS_PER_DAY

    # ------------------------------------------------------------------
    def ingest_series(self, times: Sequence[float], values: Sequence[float]) -> None:
        """Feed a historical normalized power series (one point/interval).

        First-order differences are bucketed by the hour of day of the
        *earlier* point. Only increases matter for the safety margin, but
        all differences are stored so percentiles match the paper's
        formulation on the increase distribution.
        """
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.shape != values.shape:
            raise ValueError("times and values must have the same shape")
        if len(times) < 2:
            return
        diffs = np.diff(values)
        for start_time, diff in zip(times[:-1], diffs):
            hour = self.hour_of_day(float(start_time))
            self._increases_by_hour[hour].append(float(diff))
            self._cached[hour] = None

    def observe(self, t: float, increase: float) -> None:
        """Feed a single online observation (used by live deployments)."""
        hour = self.hour_of_day(t)
        self._increases_by_hour[hour].append(increase)
        self._cached[hour] = None

    def sample_count(self, hour: int) -> int:
        return len(self._increases_by_hour[hour])

    # ------------------------------------------------------------------
    def estimate(self, t: float) -> float:
        hour = self.hour_of_day(t)
        cached = self._cached[hour]
        if cached is None:
            cached = self._compute_hour(hour)
            self._cached[hour] = cached
        return cached

    def _compute_hour(self, hour: int) -> float:
        increases = self._increases_by_hour[hour]
        if len(increases) < 20:
            return max(self.default_e_t, self.min_e_t)
        value = float(np.percentile(np.asarray(increases), self.percentile))
        return max(value, self.min_e_t)


class EwmaDemandEstimator(DemandEstimator):
    """Ablation estimator: EWMA of recent increases plus a variance margin.

    A lighter-weight online predictor: E_t = mean + z * std of an
    exponentially weighted window. Included for the prediction-quality
    ablation (the paper's future work suggests better online prediction).
    """

    def __init__(self, alpha: float = 0.1, z: float = 3.0, default_e_t: float = 0.025) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if z < 0:
            raise ValueError(f"z must be non-negative, got {z}")
        self.alpha = alpha
        self.z = z
        self.default_e_t = default_e_t
        self._mean: Optional[float] = None
        self._var = 0.0

    def observe(self, t: float, increase: float) -> None:
        if self._mean is None:
            self._mean = increase
            return
        delta = increase - self._mean
        self._mean += self.alpha * delta
        self._var = (1.0 - self.alpha) * (self._var + self.alpha * delta * delta)

    def estimate(self, t: float) -> float:
        if self._mean is None:
            return self.default_e_t
        return max(0.0, self._mean + self.z * float(np.sqrt(self._var)))


__all__ = [
    "DemandEstimator",
    "ConstantDemandEstimator",
    "PowerDemandEstimator",
    "EwmaDemandEstimator",
]
