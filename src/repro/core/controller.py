"""The Ampere controller: Algorithm 1 over one or more rows.

Each control interval (one minute), for every controlled row the
controller:

1. reads the latest aggregated row power from the monitor,
2. obtains the predicted next-interval increase E_t from the demand
   estimator, which defines the threshold ratio ``r_threshold = P_M - E_t``,
3. if power is above the threshold, computes the optimal freezing ratio
   from the SPCP closed form (Eq. 13), clamps it to the operational
   ceiling, converts it to a server count, and
4. reconciles the frozen set via :func:`~repro.core.policy.plan_freeze_set`
   (highest-power-first with r_stable hysteresis), issuing only
   ``freeze``/``unfreeze`` calls to the scheduler;
5. below the threshold, it unfreezes everything.

The controller is stateless with respect to the frozen set -- it re-derives
membership from the scheduler each tick, so a restarted controller resumes
cleanly (the paper's failover property, Section 3.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.cluster.group import ServerGroup
from repro.core.config import AmpereConfig
from repro.core.demand import ConstantDemandEstimator, DemandEstimator
from repro.core.freeze_model import FreezeEffectModel
from repro.core.policy import plan_freeze_set
from repro.core.rhc import pcp_optimal_sequence, spcp_optimal_ratio, threshold_ratio
from repro.monitor.power_monitor import PowerMonitor
from repro.scheduler.base import SchedulerInterface
from repro.sim.engine import Engine
from repro.sim.events import EventPriority


@dataclass
class RowControlState:
    """Per-row control bookkeeping and statistics."""

    group: ServerGroup
    server_ids: frozenset
    ticks: int = 0
    active_ticks: int = 0
    freeze_actions: int = 0
    unfreeze_actions: int = 0
    #: history of (time, commanded u_t) -- Table 2's u_mean / u_max inputs
    u_history: List[float] = field(default_factory=list)
    u_times: List[float] = field(default_factory=list)
    #: one-step prediction residuals: actual P_{t+1} minus the model's
    #: P_t + E_t - k_r * u_t. Negative on average when E_t is the paper's
    #: conservative 99.5th-percentile margin -- by design; RHC feedback is
    #: what absorbs this bias every interval.
    prediction_residuals: List[float] = field(default_factory=list)
    _last_prediction: Optional[float] = None

    @property
    def u_mean(self) -> float:
        return sum(self.u_history) / len(self.u_history) if self.u_history else 0.0

    @property
    def u_max(self) -> float:
        return max(self.u_history) if self.u_history else 0.0

    def residual_summary(self) -> dict:
        """Mean/std/max of the one-step model residuals (diagnostics)."""
        if not self.prediction_residuals:
            return {"count": 0, "mean": 0.0, "std": 0.0, "max_abs": 0.0}
        residuals = self.prediction_residuals
        mean = sum(residuals) / len(residuals)
        variance = sum((r - mean) ** 2 for r in residuals) / len(residuals)
        return {
            "count": len(residuals),
            "mean": mean,
            "std": variance**0.5,
            "max_abs": max(abs(r) for r in residuals),
        }


class AmpereController:
    """Statistical power controller (the paper's central contribution).

    Parameters
    ----------
    engine:
        Simulation engine for the periodic control loop.
    scheduler:
        Anything implementing the two-call freeze/unfreeze interface.
    monitor:
        Power monitor; every controlled group must be registered there.
    groups:
        The rows (or virtual experiment groups) to control.
    config:
        Controller parameters; defaults are the paper's production values.
    freeze_model:
        The f(u) model providing k_r.
    demand_estimator:
        E_t provider; defaults to a constant conservative margin.
    """

    def __init__(
        self,
        engine: Engine,
        scheduler: SchedulerInterface,
        monitor: PowerMonitor,
        groups: Iterable[ServerGroup],
        config: AmpereConfig = AmpereConfig(),
        freeze_model: Optional[FreezeEffectModel] = None,
        demand_estimator: Optional[DemandEstimator] = None,
    ) -> None:
        self.engine = engine
        self.scheduler = scheduler
        self.monitor = monitor
        self.config = config
        self.freeze_model = freeze_model if freeze_model is not None else FreezeEffectModel()
        self.demand_estimator = (
            demand_estimator
            if demand_estimator is not None
            else ConstantDemandEstimator(config.default_e_t)
        )
        self.states: Dict[str, RowControlState] = {}
        for group in groups:
            if group.name in self.states:
                raise ValueError(f"duplicate controlled group {group.name!r}")
            self.states[group.name] = RowControlState(
                group=group,
                server_ids=frozenset(s.server_id for s in group.servers),
            )
        if not self.states:
            raise ValueError("controller needs at least one group to control")

    def start(self, until: float, first_at: Optional[float] = None) -> None:
        """Begin the periodic control loop."""
        self.engine.schedule_periodic(
            self.config.control_interval,
            EventPriority.CONTROLLER_TICK,
            self.tick,
            first_at=first_at,
            until=until,
        )

    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One control action over every managed row (Algorithm 1)."""
        now = self.engine.now
        for state in self.states.values():
            self._control_row(state, now)

    def _control_row(self, state: RowControlState, now: float) -> None:
        state.ticks += 1
        try:
            p_norm = self.monitor.latest_normalized_power(state.group.name)
        except (KeyError, LookupError):
            return  # no sample yet; act next interval
        e_t = self.demand_estimator.estimate(now)
        target = self.config.control_target
        currently_frozen = set(self.scheduler.frozen_server_ids() & state.server_ids)
        if state._last_prediction is not None:
            state.prediction_residuals.append(p_norm - state._last_prediction)

        if p_norm > threshold_ratio(e_t, p_m=target):
            u_t = self._optimal_ratio(p_norm, now)
            n_freeze = math.floor(u_t * len(state.group.servers))
            powers = self.monitor.snapshot_server_powers(state.group.name)
            plan = plan_freeze_set(
                powers, n_freeze, currently_frozen, self.config.r_stable
            )
            for server_id in plan.to_unfreeze:
                self.scheduler.unfreeze(server_id)
            for server_id in plan.to_freeze:
                self.scheduler.freeze(server_id)
            state.active_ticks += 1
            state.freeze_actions += len(plan.to_freeze)
            state.unfreeze_actions += len(plan.to_unfreeze)
            commanded_u = len(plan.new_frozen) / len(state.group.servers)
        else:
            for server_id in currently_frozen:
                self.scheduler.unfreeze(server_id)
            state.unfreeze_actions += len(currently_frozen)
            commanded_u = 0.0

        state.u_history.append(commanded_u)
        state.u_times.append(now)
        state._last_prediction = (
            p_norm + e_t - self.freeze_model.predict(min(1.0, commanded_u))
        )
        self.monitor.db.write(f"freeze_ratio/{state.group.name}", now, commanded_u)

    def _optimal_ratio(self, p_norm: float, now: float) -> float:
        """The RHC control: SPCP closed form, or N-step PCP for horizon > 1."""
        config = self.config
        k_r = self.freeze_model.k_r
        if config.horizon == 1:
            return spcp_optimal_ratio(
                p_norm,
                self.demand_estimator.estimate(now),
                k_r,
                p_m=config.control_target,
                u_max=config.u_max,
            )
        e_sequence = self.demand_estimator.estimate_sequence(
            now, config.horizon, config.control_interval
        )
        try:
            controls = pcp_optimal_sequence(
                p_norm, e_sequence, k_r, p_m=config.control_target, u_max=config.u_max
            )
        except ValueError:
            # Infeasible within the ceiling: saturate, exactly as the
            # paper's controller does against the 50% operational limit.
            return config.u_max
        return controls[0]

    # ------------------------------------------------------------------
    def state_of(self, group_name: str) -> RowControlState:
        if group_name not in self.states:
            raise KeyError(f"group {group_name!r} is not controlled")
        return self.states[group_name]


__all__ = ["AmpereController", "RowControlState"]
