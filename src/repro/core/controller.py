"""The Ampere controller: Algorithm 1 over one or more rows.

Each control interval (one minute), for every controlled row the
controller:

1. reads the latest aggregated row power from the monitor,
2. obtains the predicted next-interval increase E_t from the demand
   estimator, which defines the threshold ratio ``r_threshold = P_M - E_t``,
3. if power is above the threshold, computes the optimal freezing ratio
   from the SPCP closed form (Eq. 13), clamps it to the operational
   ceiling, converts it to a server count, and
4. reconciles the frozen set via :func:`~repro.core.policy.plan_freeze_set`
   (highest-power-first with r_stable hysteresis), issuing only
   ``freeze``/``unfreeze`` calls to the scheduler;
5. below the threshold, it unfreezes everything.

The controller is stateless with respect to the frozen set -- it re-derives
membership from the scheduler each tick, so a restarted controller resumes
cleanly (the paper's failover property, Section 3.2).

Control-plane hardening
-----------------------
The loop above assumes a perfect control plane. This implementation does
not: it is hardened against the three operational hazards injected by
:mod:`repro.faults`, and every defensive action is recorded in
:class:`ControllerHealth`.

- **Stale data (monitor blackouts).** Every row-power sample carries a
  timestamp; when the latest sample is older than
  ``config.max_staleness_seconds`` the controller enters *degraded mode*
  for that row: it holds the frozen set (re-asserting intended freezes,
  never unfreezing on fiction) and leans on the reactive capping safety
  net until fresh data arrives. Acting on a stale reading could unfreeze
  a row that is actually over budget.
- **Degenerate snapshots.** A row whose every server reads 0 W / NaN
  (mass failure, dead sensor path) produces no control action at all --
  the tick is skipped with a logged health event rather than fitting
  f(u) on fiction.
- **Scheduler RPC faults.** ``freeze``/``unfreeze`` may raise
  :class:`~repro.scheduler.base.SchedulerRpcError`. Each intent is
  retried with exponential back-off under a bounded per-tick RPC time
  budget; intents that still fail are *not* forgotten -- the controller
  records its intended frozen set and reconciles intent against the
  scheduler's authoritative ``frozen_server_ids()`` at the next tick.
- **Controller crashes.** :meth:`AmpereController.crash` wipes all
  in-memory per-row state (the simulated process death);
  :meth:`AmpereController.recover` reconstructs it from the two durable
  sources production would use: the TSDB (commanded freeze-ratio
  history) and the scheduler's authoritative frozen set. While crashed,
  ticks are no-ops. ``ControllerHealth`` models the *external* telemetry
  pipeline, so its counters deliberately survive a crash.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.cluster.group import ServerGroup
from repro.core.config import AmpereConfig
from repro.core.demand import ConstantDemandEstimator, DemandEstimator
from repro.core.history import BoundedHistory
from repro.core.freeze_model import FreezeEffectModel
from repro.core.policy import FreezePolicy, plan_freeze_set
from repro.core.rhc import pcp_optimal_sequence, spcp_optimal_ratio, threshold_ratio
from repro.monitor.power_monitor import PowerMonitor
from repro.scheduler.base import SchedulerInterface, SchedulerRpcError
from repro.sim.engine import Engine
from repro.sim.events import EventPriority
from repro.telemetry import Telemetry
from repro.telemetry.bridge import health_counters

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class HealthEvent:
    """One noteworthy defensive action of the control loop."""

    time: float
    #: "degraded" | "skipped" | "rpc_giveup" | "reconcile" | "crash" |
    #: "recover" | "budget_changed"
    kind: str
    group: str
    detail: str = ""


@dataclass
class ControllerHealth:
    """Operational statistics of the hardened control loop.

    Counters model the external log/metrics pipeline a production
    controller ships telemetry to, which is why they survive a simulated
    controller crash (the in-memory *control* state does not).

    Since the telemetry subsystem landed, the registry is that external
    pipeline made concrete: :meth:`bind` mirrors every counter into
    ``repro_controller_health_total{kind=...}`` and every
    :meth:`note` into ``repro_controller_health_events_total{kind=...}``,
    keeping this dataclass as the in-process *view* the existing tests
    and reports consume. Mutate the counters through :meth:`bump` so the
    mirror stays exact.
    """

    #: ticks spent in degraded mode (held frozen set on stale data)
    degraded_ticks: int = 0
    #: ticks skipped outright on a degenerate power snapshot
    skipped_ticks: int = 0
    #: individual RPC retry attempts after a transport failure
    rpc_retries: int = 0
    #: RPC intents abandoned after the retry/back-off budget ran out
    rpc_giveups: int = 0
    #: ticks on which intent and the scheduler's frozen set disagreed
    reconciliations: int = 0
    #: total servers found drifted across all reconciliations
    reconciliation_diff_total: int = 0
    crashes: int = 0
    recoveries: int = 0
    #: mid-run budget (allocation) changes applied by a fleet coordinator
    budget_updates: int = 0
    events: List[HealthEvent] = field(default_factory=list)

    def bind(self, telemetry: Telemetry) -> None:
        """Mirror every counter/event into the telemetry registry."""
        self._counters = health_counters(telemetry)
        self._telemetry = telemetry

    def bump(self, kind: str, amount: int = 1) -> None:
        """Increment one scalar counter (and its registry mirror)."""
        setattr(self, kind, getattr(self, kind) + amount)
        counters = getattr(self, "_counters", None)
        if counters is not None:
            counters[kind].inc(amount)

    def note(self, time: float, kind: str, group: str, detail: str = "") -> None:
        self.events.append(HealthEvent(time, kind, group, detail))
        telemetry = getattr(self, "_telemetry", None)
        if telemetry is not None:
            telemetry.counter(
                "repro_controller_health_events_total",
                "Noteworthy defensive actions of the control loop, by kind",
                labels={"kind": kind},
            ).inc()

    def __getstate__(self) -> dict:
        # The registry mirror is process-local wiring; the scalar view
        # is what crosses pickling boundaries (campaign workers).
        state = self.__dict__.copy()
        state.pop("_counters", None)
        state.pop("_telemetry", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def summary(self) -> Dict[str, int]:
        """Scalar counters for reports and assertions."""
        return {
            "degraded_ticks": self.degraded_ticks,
            "skipped_ticks": self.skipped_ticks,
            "rpc_retries": self.rpc_retries,
            "rpc_giveups": self.rpc_giveups,
            "reconciliations": self.reconciliations,
            "reconciliation_diff_total": self.reconciliation_diff_total,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "budget_updates": self.budget_updates,
        }


@dataclass
class RowControlState:
    """Per-row control bookkeeping and statistics."""

    group: ServerGroup
    server_ids: frozenset
    ticks: int = 0
    active_ticks: int = 0
    freeze_actions: int = 0
    unfreeze_actions: int = 0
    #: history of (time, commanded u_t) -- Table 2's u_mean / u_max inputs.
    #: Ring buffers when ``AmpereConfig.history_window`` is set; the
    #: statistics below are exact over whatever window is retained.
    u_history: BoundedHistory = field(default_factory=BoundedHistory)
    u_times: BoundedHistory = field(default_factory=BoundedHistory)
    #: one-step prediction residuals: actual P_{t+1} minus the model's
    #: P_t + E_t - k_r * u_t. Negative on average when E_t is the paper's
    #: conservative 99.5th-percentile margin -- by design; RHC feedback is
    #: what absorbs this bias every interval.
    prediction_residuals: BoundedHistory = field(default_factory=BoundedHistory)
    #: running sum / count of every commanded u_t of the whole run --
    #: unlike the (possibly bounded) histories these never truncate, so
    #: frozen-server-minutes and full-run means stay exact regardless of
    #: the retention window
    u_integral: float = 0.0
    u_samples: int = 0
    #: the frozen set the controller *meant* to leave behind last tick;
    #: compared against the scheduler's authoritative set to detect RPC
    #: intents that never landed (reconciliation)
    intended_frozen: FrozenSet[int] = frozenset()
    _last_prediction: Optional[float] = None

    @property
    def u_mean(self) -> float:
        return sum(self.u_history) / len(self.u_history) if self.u_history else 0.0

    @property
    def u_max(self) -> float:
        return max(self.u_history) if self.u_history else 0.0

    def residual_summary(self) -> dict:
        """Mean/std/max of the one-step model residuals (diagnostics)."""
        if not self.prediction_residuals:
            return {"count": 0, "mean": 0.0, "std": 0.0, "max_abs": 0.0}
        residuals = self.prediction_residuals
        mean = sum(residuals) / len(residuals)
        variance = sum((r - mean) ** 2 for r in residuals) / len(residuals)
        return {
            "count": len(residuals),
            "mean": mean,
            "std": variance**0.5,
            "max_abs": max(abs(r) for r in residuals),
        }


class AmpereController:
    """Statistical power controller (the paper's central contribution).

    Parameters
    ----------
    engine:
        Simulation engine for the periodic control loop.
    scheduler:
        Anything implementing the two-call freeze/unfreeze interface.
        Calls may raise :class:`SchedulerRpcError`; the controller
        retries with back-off and reconciles on the next tick.
    monitor:
        Power monitor; every controlled group must be registered there.
    groups:
        The rows (or virtual experiment groups) to control.
    config:
        Controller parameters; defaults are the paper's production values.
    freeze_model:
        The f(u) model providing k_r.
    demand_estimator:
        E_t provider; defaults to a constant conservative margin.
    freeze_policy:
        Pluggable freeze-set selection (:class:`~repro.core.policy.FreezePolicy`).
        ``None`` keeps the paper's power-ordered :func:`plan_freeze_set`
        bit-identically; the tenancy subsystem installs
        :class:`~repro.tenancy.FairShareFreezePolicy` here.
    """

    def __init__(
        self,
        engine: Engine,
        scheduler: SchedulerInterface,
        monitor: PowerMonitor,
        groups: Iterable[ServerGroup],
        config: AmpereConfig = AmpereConfig(),
        freeze_model: Optional[FreezeEffectModel] = None,
        demand_estimator: Optional[DemandEstimator] = None,
        telemetry: Optional[Telemetry] = None,
        freeze_policy: Optional[FreezePolicy] = None,
    ) -> None:
        self.engine = engine
        self.scheduler = scheduler
        self.monitor = monitor
        self.config = config
        self.freeze_model = freeze_model if freeze_model is not None else FreezeEffectModel()
        self.demand_estimator = (
            demand_estimator
            if demand_estimator is not None
            else ConstantDemandEstimator(config.default_e_t)
        )
        self.freeze_policy = freeze_policy
        self.telemetry = (
            telemetry
            if telemetry is not None
            else getattr(engine, "telemetry", None) or Telemetry.disabled()
        )
        self.health = ControllerHealth()
        self.health.bind(self.telemetry)
        self._crashed = False
        self.states: Dict[str, RowControlState] = {}
        self._row_instruments: Dict[str, Dict[str, object]] = {}
        for group in groups:
            if group.name in self.states:
                raise ValueError(f"duplicate controlled group {group.name!r}")
            self.states[group.name] = self._new_state(
                group, frozenset(s.server_id for s in group.servers)
            )
            labels = {"group": group.name}
            self._row_instruments[group.name] = {
                "ticks": self.telemetry.counter(
                    "repro_controller_ticks_total",
                    "Control ticks evaluated per controlled row",
                    labels,
                ),
                "active_ticks": self.telemetry.counter(
                    "repro_controller_active_ticks_total",
                    "Ticks on which the row was over threshold and acted",
                    labels,
                ),
                "freezes": self.telemetry.counter(
                    "repro_controller_freeze_actions_total",
                    "Freeze RPCs that landed",
                    labels,
                ),
                "unfreezes": self.telemetry.counter(
                    "repro_controller_unfreeze_actions_total",
                    "Unfreeze RPCs that landed",
                    labels,
                ),
                "commanded_u": self.telemetry.gauge(
                    "repro_controller_commanded_u",
                    "Latest commanded freezing ratio u_t",
                    labels,
                ),
                "frozen": self.telemetry.gauge(
                    "repro_controller_frozen_servers",
                    "Servers the controller intends frozen after its last tick",
                    labels,
                ),
                "budget": self.telemetry.gauge(
                    "repro_controller_budget_watts",
                    "Current power budget (allocation) the row steers against",
                    labels,
                ),
            }
        if not self.states:
            raise ValueError("controller needs at least one group to control")

    def _new_state(self, group: ServerGroup, server_ids: frozenset) -> RowControlState:
        """Fresh per-row state honouring the configured retention window."""
        window = self.config.history_window
        return RowControlState(
            group=group,
            server_ids=server_ids,
            u_history=BoundedHistory(limit=window),
            u_times=BoundedHistory(limit=window),
            prediction_residuals=BoundedHistory(limit=window),
        )

    def start(self, until: float, first_at: Optional[float] = None) -> None:
        """Begin the periodic control loop."""
        self.engine.schedule_periodic(
            self.config.control_interval,
            EventPriority.CONTROLLER_TICK,
            self.tick,
            first_at=first_at,
            until=until,
        )

    # ------------------------------------------------------------------
    # Crash / recovery (the paper's failover property, made explicit)
    # ------------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Simulate a controller process death.

        Every in-memory structure is lost: per-row statistics, commanded
        u_t history, prediction state and the intended frozen set. The
        cluster keeps running -- frozen servers stay frozen in the
        scheduler -- but no control actions happen until
        :meth:`recover` (the supervisor restart).
        """
        self._crashed = True
        self.health.bump("crashes")
        self.health.note(self.engine.now, "crash", "*", "in-memory state lost")
        logger.error(
            "controller crashed at t=%.0fs; in-memory state lost", self.engine.now
        )
        self.states = {
            name: self._new_state(state.group, state.server_ids)
            for name, state in self.states.items()
        }

    def recover(self) -> None:
        """Restart after a crash: rebuild state from durable sources.

        The two sources a restarted production controller has are the
        scheduler's authoritative frozen set (adopted as the intended
        set, so the first tick reconciles cleanly instead of reporting
        phantom drift) and the TSDB's recorded ``freeze_ratio`` series
        (restores the commanded-u history that Table 2 metrics and the
        campaign summaries are computed from).
        """
        for state in self.states.values():
            actual = frozenset(self.scheduler.frozen_server_ids() & state.server_ids)
            state.intended_frozen = actual
            try:
                times, values = self.monitor.db.query(
                    f"freeze_ratio/{state.group.name}"
                )
            except KeyError:
                times, values = (), ()
            window = self.config.history_window
            state.u_times = BoundedHistory(
                (float(t) for t in times), limit=window
            )
            state.u_history = BoundedHistory(
                (float(v) for v in values), limit=window
            )
            # The full-run integral is durable too: the TSDB holds every
            # commanded u, not just the retained window.
            state.u_integral = float(sum(float(v) for v in values))
            state.u_samples = len(values)
        self._crashed = False
        self.health.bump("recoveries")
        self.health.note(
            self.engine.now,
            "recover",
            "*",
            "state rebuilt from TSDB + scheduler frozen set",
        )
        logger.info(
            "controller recovered at t=%.0fs from TSDB + scheduler frozen set",
            self.engine.now,
        )

    # ------------------------------------------------------------------
    # Mid-run budget updates (the fleet-coordinator seam)
    # ------------------------------------------------------------------
    def update_budget(self, group_name: str, budget_watts: float) -> bool:
        """Apply a new power allocation to one controlled row mid-run.

        The group's ``power_budget_watts`` is the denominator of every
        normalized quantity the controller steers on, so the next tick
        recomputes ``r_threshold = P_M - E_t`` against the new allocation
        automatically -- no restart, no state loss. The change is
        recorded as a ``budget_changed`` health event and mirrored to the
        ``repro_controller_budget_watts`` gauge.

        Returns True when the budget actually changed (the coordinator's
        reallocation counters only count real moves).
        """
        state = self.state_of(group_name)
        if not math.isfinite(budget_watts) or budget_watts <= 0:
            raise ValueError(
                f"budget_watts must be positive and finite, got {budget_watts}"
            )
        old = state.group.power_budget_watts
        if budget_watts == old:
            return False
        state.group.power_budget_watts = float(budget_watts)
        # The pending one-step prediction was made in old-budget units;
        # comparing the next (re-normalized) sample against it would
        # record a spurious residual.
        state._last_prediction = None
        self.health.bump("budget_updates")
        self.health.note(
            self.engine.now,
            "budget_changed",
            group_name,
            f"{old:.0f}W -> {budget_watts:.0f}W",
        )
        self._row_instruments[group_name]["budget"].set(float(budget_watts))
        logger.info(
            "group %s: budget updated %.0fW -> %.0fW at t=%.0fs",
            group_name,
            old,
            budget_watts,
            self.engine.now,
        )
        return True

    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One control action over every managed row (Algorithm 1)."""
        if self._crashed:
            return  # process is down; ticks resume after recover()
        now = self.engine.now
        with self.telemetry.span("controller.tick", rows=len(self.states)):
            for state in self.states.values():
                self._control_row(state, now)

    def _control_row(self, state: RowControlState, now: float) -> None:
        state.ticks += 1
        instruments = self._row_instruments[state.group.name]
        instruments["ticks"].inc()
        try:
            sample_time, p_norm = self.monitor.latest_normalized_sample(
                state.group.name
            )
        except (KeyError, LookupError):
            return  # no sample yet; act next interval
        # Re-normalize against the *current* budget: a fleet coordinator
        # may have moved this row's allocation after the monitor stored
        # the sample (the stored value is normalized to the budget at
        # sample time). With an unchanged budget this repeats the exact
        # division the monitor performed -- bit-identical. A normalized
        # sample without a matching absolute sample (direct test writes,
        # replays) is honoured as-is.
        try:
            watts_time, watts = self.monitor.latest_power_sample(
                state.group.name
            )
        except (AttributeError, KeyError, LookupError):
            watts_time = None
        if watts_time == sample_time:
            p_norm = watts / state.group.power_budget_watts
        currently_frozen = set(self.scheduler.frozen_server_ids() & state.server_ids)
        self._reconcile(state, currently_frozen, now)

        age = now - sample_time
        if age > self.config.max_staleness_seconds:
            self._degraded_hold(state, currently_frozen, now, age)
            return
        if not math.isfinite(p_norm) or p_norm <= 0.0:
            self._skip_tick(state, now, f"degenerate row power reading {p_norm!r}")
            return

        e_t = self.demand_estimator.estimate(now)
        target = self.config.control_target
        if state._last_prediction is not None:
            state.prediction_residuals.append(p_norm - state._last_prediction)

        if p_norm > threshold_ratio(e_t, p_m=target):
            u_t = self._optimal_ratio(p_norm, now)
            n_freeze = math.floor(u_t * len(state.group.servers))
            powers = self.monitor.snapshot_server_powers(state.group.name)
            if not self._snapshot_usable(powers):
                self._skip_tick(state, now, "empty/all-failed power snapshot")
                return
            powers = {
                sid: (value if math.isfinite(value) else 0.0)
                for sid, value in powers.items()
            }
            if self.freeze_policy is not None:
                plan = self.freeze_policy.plan(
                    powers, n_freeze, currently_frozen, self.config.r_stable
                )
            else:
                plan = plan_freeze_set(
                    powers, n_freeze, currently_frozen, self.config.r_stable
                )
            achieved: Set[int] = set(currently_frozen)
            for server_id in sorted(plan.to_unfreeze):
                if self._rpc(state, "unfreeze", server_id, now):
                    achieved.discard(server_id)
                    state.unfreeze_actions += 1
                    instruments["unfreezes"].inc()
            for server_id in sorted(plan.to_freeze):
                if self._rpc(state, "freeze", server_id, now):
                    achieved.add(server_id)
                    state.freeze_actions += 1
                    instruments["freezes"].inc()
            state.active_ticks += 1
            instruments["active_ticks"].inc()
            state.intended_frozen = plan.new_frozen
            commanded_u = len(achieved) / len(state.group.servers)
        else:
            achieved = set(currently_frozen)
            for server_id in sorted(currently_frozen):
                if self._rpc(state, "unfreeze", server_id, now):
                    achieved.discard(server_id)
                    state.unfreeze_actions += 1
                    instruments["unfreezes"].inc()
            state.intended_frozen = frozenset()
            commanded_u = len(achieved) / len(state.group.servers)

        instruments["commanded_u"].set(commanded_u)
        instruments["frozen"].set(len(state.intended_frozen))
        state.u_history.append(commanded_u)
        state.u_times.append(now)
        state.u_integral += commanded_u
        state.u_samples += 1
        state._last_prediction = (
            p_norm + e_t - self.freeze_model.predict(min(1.0, commanded_u))
        )
        self.monitor.db.write(f"freeze_ratio/{state.group.name}", now, commanded_u)

    # ------------------------------------------------------------------
    # Hardening helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _snapshot_usable(powers: Dict[int, float]) -> bool:
        """A snapshot with no finite positive reading is fiction, not data."""
        return any(math.isfinite(v) and v > 0.0 for v in powers.values())

    def _reconcile(
        self, state: RowControlState, currently_frozen: Set[int], now: float
    ) -> None:
        """Compare last tick's intent with the scheduler's authoritative set.

        Planning always proceeds from the authoritative set, so recording
        the drift is enough -- the subsequent plan re-issues whatever the
        failed RPCs left undone.
        """
        drift = state.intended_frozen.symmetric_difference(currently_frozen)
        if drift:
            self.health.bump("reconciliations")
            self.health.bump("reconciliation_diff_total", len(drift))
            self.health.note(
                now,
                "reconcile",
                state.group.name,
                f"{len(drift)} servers drifted from intent",
            )
            logger.info(
                "group %s: %d servers drifted from intended frozen set "
                "at t=%.0fs; replanning from authoritative state",
                state.group.name,
                len(drift),
                now,
            )

    def _degraded_hold(
        self,
        state: RowControlState,
        currently_frozen: Set[int],
        now: float,
        age: float,
    ) -> None:
        """Fail-safe action on stale data: hold the frozen set.

        Unfreezing on a stale reading could push a genuinely hot row over
        its breaker; freezing more on one wastes capacity on fiction. The
        conservative move is to keep what we have -- including
        re-asserting intended freezes that RPC faults dropped -- and let
        the reactive capping net handle true excursions until monitoring
        recovers.
        """
        self.health.bump("degraded_ticks")
        self.health.note(
            now,
            "degraded",
            state.group.name,
            f"latest sample is {age:.0f}s old "
            f"(limit {self.config.max_staleness_seconds:.0f}s); holding frozen set",
        )
        logger.warning(
            "group %s: degraded mode at t=%.0fs (sample %.0fs old, limit %.0fs); "
            "holding frozen set",
            state.group.name,
            now,
            age,
            self.config.max_staleness_seconds,
        )
        held = set(currently_frozen)
        for server_id in sorted(state.intended_frozen - currently_frozen):
            if self._rpc(state, "freeze", server_id, now):
                held.add(server_id)
                state.freeze_actions += 1
                self._row_instruments[state.group.name]["freezes"].inc()
        state.intended_frozen = frozenset(held | state.intended_frozen)
        state.u_history.append(len(held) / len(state.group.servers))
        state.u_times.append(now)
        state.u_integral += len(held) / len(state.group.servers)
        state.u_samples += 1
        # No valid observation this tick: the next residual would compare
        # a fresh sample against a prediction made from stale data.
        state._last_prediction = None
        self.monitor.db.write(
            f"freeze_ratio/{state.group.name}",
            now,
            len(held) / len(state.group.servers),
        )

    def _skip_tick(self, state: RowControlState, now: float, reason: str) -> None:
        """Refuse to act on a degenerate observation (logged, counted)."""
        self.health.bump("skipped_ticks")
        self.health.note(now, "skipped", state.group.name, reason)
        logger.warning(
            "group %s: tick skipped at t=%.0fs (%s)", state.group.name, now, reason
        )
        state._last_prediction = None

    def _rpc(
        self, state: RowControlState, action: str, server_id: int, now: float
    ) -> bool:
        """One freeze/unfreeze intent with bounded retry + back-off.

        Returns True when the RPC landed. On giving up the intent is left
        for next-tick reconciliation -- never silently assumed applied.
        Back-off is accounted against ``rpc_deadline_seconds`` rather than
        advancing the simulated clock: the tick is atomic on the engine,
        but the budget bounds retries exactly as wall-clock would.
        """
        config = self.config
        call = (
            self.scheduler.freeze if action == "freeze" else self.scheduler.unfreeze
        )
        backoff = config.rpc_backoff_base_seconds
        elapsed = 0.0
        for attempt in range(1, config.rpc_max_attempts + 1):
            try:
                call(server_id)
            except SchedulerRpcError as error:
                elapsed += error.latency_seconds
                out_of_budget = elapsed + backoff > config.rpc_deadline_seconds
                if attempt >= config.rpc_max_attempts or out_of_budget:
                    self.health.bump("rpc_giveups")
                    self.health.note(
                        now,
                        "rpc_giveup",
                        state.group.name,
                        f"{action}({server_id}) failed {attempt}x"
                        + ("; deadline" if out_of_budget else ""),
                    )
                    logger.warning(
                        "group %s: gave up on %s(%d) after %d attempts at "
                        "t=%.0fs%s",
                        state.group.name,
                        action,
                        server_id,
                        attempt,
                        now,
                        "; deadline exhausted" if out_of_budget else "",
                    )
                    return False
                self.health.bump("rpc_retries")
                elapsed += backoff
                backoff *= 2.0
            else:
                return True
        return False  # not reached; loop always returns

    def _optimal_ratio(self, p_norm: float, now: float) -> float:
        """The RHC control: SPCP closed form, or N-step PCP for horizon > 1."""
        config = self.config
        k_r = self.freeze_model.k_r
        with self.telemetry.span("rhc.decide", horizon=config.horizon):
            if config.horizon == 1:
                return spcp_optimal_ratio(
                    p_norm,
                    self.demand_estimator.estimate(now),
                    k_r,
                    p_m=config.control_target,
                    u_max=config.u_max,
                )
            e_sequence = self.demand_estimator.estimate_sequence(
                now, config.horizon, config.control_interval
            )
            try:
                controls = pcp_optimal_sequence(
                    p_norm,
                    e_sequence,
                    k_r,
                    p_m=config.control_target,
                    u_max=config.u_max,
                )
            except ValueError:
                # Infeasible within the ceiling: saturate, exactly as the
                # paper's controller does against the 50% operational limit.
                return config.u_max
            return controls[0]

    # ------------------------------------------------------------------
    def state_of(self, group_name: str) -> RowControlState:
        if group_name not in self.states:
            raise KeyError(f"group {group_name!r} is not controlled")
        return self.states[group_name]


__all__ = [
    "AmpereController",
    "ControllerHealth",
    "HealthEvent",
    "RowControlState",
]
