"""Choosing the over-provisioning ratio from power history (Section 4.4).

The paper picks its production ratio from monitoring data: "From our
observation over a month, the 85th and the 95th percentile power is
0.909 and 0.924 (scaled to match r_O), which means most of the time
G_TPW will be at least 15%. ... In conclusion, we choose 0.17 as our
over-provisioning ratio considering safety, G_TPW and efficiency."

This module is that reasoning as a function. Given a power history
recorded under rated-power provisioning (r_O = 0), scaling the budget by
``1/(1 + r_O)`` multiplies every normalized sample by ``(1 + r_O)``, so:

- *safety*: the fraction of time the scaled power would exceed the
  budget is the upper tail of the history above ``1/(1 + r_O)``;
- *gain*: whenever scaled power stays below the control threshold,
  r_T ~ 1 and G_TPW ~ r_O.

The advisor picks the largest candidate ratio whose scaled
``target_percentile`` power still leaves the configured head-room.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class RatioAssessment:
    """How one candidate ratio looks against the history."""

    ratio: float
    scaled_percentile_power: float
    fraction_time_over_threshold: float
    fraction_time_over_budget: float
    expected_min_gain: float

    def is_safe(self, max_fraction_over_budget: float) -> bool:
        return self.fraction_time_over_budget <= max_fraction_over_budget


@dataclass(frozen=True)
class ProvisioningAdvice:
    """The advisor's output: the chosen ratio plus the full assessment."""

    recommended_ratio: float
    assessments: Tuple[RatioAssessment, ...]

    def assessment_for(self, ratio: float) -> RatioAssessment:
        for assessment in self.assessments:
            if abs(assessment.ratio - ratio) < 1e-12:
                return assessment
        raise KeyError(f"ratio {ratio} was not assessed")


def assess_ratio(
    normalized_power_history: np.ndarray,
    ratio: float,
    target_percentile: float = 95.0,
    control_threshold: float = 0.975,
) -> RatioAssessment:
    """Evaluate one candidate r_O against a rated-provisioning history."""
    if ratio < 0:
        raise ValueError(f"ratio must be non-negative, got {ratio}")
    scaled = normalized_power_history * (1.0 + ratio)
    percentile_power = float(np.percentile(scaled, target_percentile))
    over_threshold = float(np.mean(scaled > control_threshold))
    over_budget = float(np.mean(scaled > 1.0))
    # While under the threshold the controller is idle, r_T ~ 1 and the
    # gain is the full r_O; the paper's "most of the time G_TPW will be at
    # least" number is the gain discounted by the time spent controlled.
    expected_min_gain = (1.0 - over_threshold) * ratio
    return RatioAssessment(
        ratio=ratio,
        scaled_percentile_power=percentile_power,
        fraction_time_over_threshold=over_threshold,
        fraction_time_over_budget=over_budget,
        expected_min_gain=expected_min_gain,
    )


def recommend_over_provision_ratio(
    normalized_power_history: Sequence[float],
    candidate_ratios: Sequence[float] = (0.13, 0.17, 0.21, 0.25),
    target_percentile: float = 95.0,
    percentile_headroom: float = 0.97,
    max_fraction_over_budget: float = 0.002,
    control_threshold: float = 0.975,
) -> ProvisioningAdvice:
    """Pick the largest safe candidate r_O for this power history.

    A candidate is *safe* when (a) its scaled ``target_percentile`` power
    stays below ``percentile_headroom`` (the paper's "85th/95th percentile
    power is 0.909/0.924" check) and (b) the scaled history exceeds the
    budget at most ``max_fraction_over_budget`` of the time. Among safe
    candidates the largest ratio wins (gain is upper-bounded by r_O);
    if none is safe, the smallest candidate is returned as the
    conservative fallback.
    """
    history = np.asarray(normalized_power_history, dtype=float)
    if history.size < 100:
        raise ValueError(
            f"need a meaningful history (>= 100 samples), got {history.size}"
        )
    if not candidate_ratios:
        raise ValueError("need at least one candidate ratio")
    if not 0.0 < percentile_headroom <= 1.0:
        raise ValueError(
            f"percentile_headroom must be in (0, 1], got {percentile_headroom}"
        )
    assessments: List[RatioAssessment] = [
        assess_ratio(history, r, target_percentile, control_threshold)
        for r in sorted(candidate_ratios)
    ]
    safe = [
        a
        for a in assessments
        if a.scaled_percentile_power <= percentile_headroom
        and a.is_safe(max_fraction_over_budget)
    ]
    chosen = safe[-1].ratio if safe else min(candidate_ratios)
    return ProvisioningAdvice(
        recommended_ratio=chosen, assessments=tuple(assessments)
    )


__all__ = ["RatioAssessment", "ProvisioningAdvice", "assess_ratio", "recommend_over_provision_ratio"]
