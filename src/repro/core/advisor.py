"""Choosing the over-provisioning ratio from power history (Section 4.4).

The paper picks its production ratio from monitoring data: "From our
observation over a month, the 85th and the 95th percentile power is
0.909 and 0.924 (scaled to match r_O), which means most of the time
G_TPW will be at least 15%. ... In conclusion, we choose 0.17 as our
over-provisioning ratio considering safety, G_TPW and efficiency."

This module is that reasoning as a function. Given a power history
recorded under rated-power provisioning (r_O = 0), scaling the budget by
``1/(1 + r_O)`` multiplies every normalized sample by ``(1 + r_O)``, so:

- *safety*: the fraction of time the scaled power would exceed the
  budget is the upper tail of the history above ``1/(1 + r_O)``;
- *gain*: whenever scaled power stays below the control threshold,
  r_T ~ 1 and G_TPW ~ r_O.

The advisor picks the largest candidate ratio whose scaled
``target_percentile`` power still leaves the configured head-room.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class RatioAssessment:
    """How one candidate ratio looks against the history."""

    ratio: float
    scaled_percentile_power: float
    fraction_time_over_threshold: float
    fraction_time_over_budget: float
    expected_min_gain: float

    def is_safe(self, max_fraction_over_budget: float) -> bool:
        return self.fraction_time_over_budget <= max_fraction_over_budget


@dataclass(frozen=True)
class ProvisioningAdvice:
    """The advisor's output: the chosen ratio plus the full assessment."""

    recommended_ratio: float
    assessments: Tuple[RatioAssessment, ...]

    def assessment_for(self, ratio: float) -> RatioAssessment:
        for assessment in self.assessments:
            if abs(assessment.ratio - ratio) < 1e-12:
                return assessment
        raise KeyError(f"ratio {ratio} was not assessed")


def assess_ratio(
    normalized_power_history: np.ndarray,
    ratio: float,
    target_percentile: float = 95.0,
    control_threshold: float = 0.975,
) -> RatioAssessment:
    """Evaluate one candidate r_O against a rated-provisioning history."""
    if ratio < 0:
        raise ValueError(f"ratio must be non-negative, got {ratio}")
    scaled = normalized_power_history * (1.0 + ratio)
    percentile_power = float(np.percentile(scaled, target_percentile))
    over_threshold = float(np.mean(scaled > control_threshold))
    over_budget = float(np.mean(scaled > 1.0))
    # While under the threshold the controller is idle, r_T ~ 1 and the
    # gain is the full r_O; the paper's "most of the time G_TPW will be at
    # least" number is the gain discounted by the time spent controlled.
    expected_min_gain = (1.0 - over_threshold) * ratio
    return RatioAssessment(
        ratio=ratio,
        scaled_percentile_power=percentile_power,
        fraction_time_over_threshold=over_threshold,
        fraction_time_over_budget=over_budget,
        expected_min_gain=expected_min_gain,
    )


def recommend_over_provision_ratio(
    normalized_power_history: Sequence[float],
    candidate_ratios: Sequence[float] = (0.13, 0.17, 0.21, 0.25),
    target_percentile: float = 95.0,
    percentile_headroom: float = 0.97,
    max_fraction_over_budget: float = 0.002,
    control_threshold: float = 0.975,
) -> ProvisioningAdvice:
    """Pick the largest safe candidate r_O for this power history.

    A candidate is *safe* when (a) its scaled ``target_percentile`` power
    stays below ``percentile_headroom`` (the paper's "85th/95th percentile
    power is 0.909/0.924" check) and (b) the scaled history exceeds the
    budget at most ``max_fraction_over_budget`` of the time. Among safe
    candidates the largest ratio wins (gain is upper-bounded by r_O);
    if none is safe, the smallest candidate is returned as the
    conservative fallback.
    """
    history = np.asarray(normalized_power_history, dtype=float)
    if history.size < 100:
        raise ValueError(
            f"need a meaningful history (>= 100 samples), got {history.size}"
        )
    if not candidate_ratios:
        raise ValueError("need at least one candidate ratio")
    if not 0.0 < percentile_headroom <= 1.0:
        raise ValueError(
            f"percentile_headroom must be in (0, 1], got {percentile_headroom}"
        )
    assessments: List[RatioAssessment] = [
        assess_ratio(history, r, target_percentile, control_threshold)
        for r in sorted(candidate_ratios)
    ]
    safe = [
        a
        for a in assessments
        if a.scaled_percentile_power <= percentile_headroom
        and a.is_safe(max_fraction_over_budget)
    ]
    chosen = safe[-1].ratio if safe else min(candidate_ratios)
    return ProvisioningAdvice(
        recommended_ratio=chosen, assessments=tuple(assessments)
    )


@dataclass(frozen=True)
class FleetProvisioningAdvice:
    """Facility-level provisioning advice: static split vs shared budget.

    ``per_row`` holds the ordinary single-row advice for each row.
    ``independent_ratio`` is the facility-effective r_O when every row
    keeps its own recommendation under a static budget split;
    ``pooled_advice`` re-runs the advisor on the budget-weighted *sum*
    of the row histories -- the series a fleet coordinator that conserves
    the facility total effectively provisions against. The gap between
    the two, ``coordination_gain``, is the extra over-provisioning
    statistical multiplexing buys: row peaks that do not coincide cancel
    in the pooled series, so its tail is thinner than any single row's.
    """

    per_row: Dict[str, ProvisioningAdvice]
    independent_ratio: float
    pooled_advice: ProvisioningAdvice
    coordination_gain: float

    @property
    def pooled_ratio(self) -> float:
        return self.pooled_advice.recommended_ratio


def recommend_fleet_provisioning(
    row_histories: Mapping[str, Sequence[float]],
    row_budgets: Optional[Mapping[str, float]] = None,
    candidate_ratios: Sequence[float] = (0.13, 0.17, 0.21, 0.25),
    target_percentile: float = 95.0,
    percentile_headroom: float = 0.97,
    max_fraction_over_budget: float = 0.002,
    control_threshold: float = 0.975,
) -> FleetProvisioningAdvice:
    """Advise r_O for a multi-row fleet, with and without coordination.

    ``row_histories`` maps row name -> normalized power history recorded
    under rated provisioning (r_O = 0), all sampled on the same grid.
    ``row_budgets`` weighs rows by rated power (equal weights when
    omitted): the pooled facility series is the weighted mean of the row
    series, i.e. facility power normalized to the facility rating.

    The *independent* number composes per-row recommendations the way a
    static split does. Scaling row ``i``'s budget by ``1/(1 + r_i)``
    shrinks the facility budget to ``sum(w_i / (1 + r_i))``, so the
    facility-effective ratio is ``sum(w_i) / sum(w_i / (1 + r_i)) - 1``
    -- a budget-weighted harmonic composition, dominated by the most
    conservative large row. The *pooled* number asks what a coordinator
    free to move budget between rows could run the whole facility at.
    """
    if not row_histories:
        raise ValueError("need at least one row history")
    names = sorted(row_histories)
    histories = {
        name: np.asarray(row_histories[name], dtype=float) for name in names
    }
    lengths = {name: h.size for name, h in histories.items()}
    if len(set(lengths.values())) != 1:
        raise ValueError(
            f"row histories must be sampled on the same grid, got {lengths}"
        )
    if row_budgets is None:
        weights = {name: 1.0 for name in names}
    else:
        missing = [n for n in names if n not in row_budgets]
        if missing:
            raise ValueError(f"row_budgets missing rows {missing}")
        weights = {name: float(row_budgets[name]) for name in names}
        if any(w <= 0 for w in weights.values()):
            raise ValueError("row budgets must be positive")
    total_weight = sum(weights.values())
    per_row = {
        name: recommend_over_provision_ratio(
            histories[name],
            candidate_ratios=candidate_ratios,
            target_percentile=target_percentile,
            percentile_headroom=percentile_headroom,
            max_fraction_over_budget=max_fraction_over_budget,
            control_threshold=control_threshold,
        )
        for name in names
    }
    shrunk = sum(
        weights[name] / (1.0 + per_row[name].recommended_ratio)
        for name in names
    )
    independent_ratio = total_weight / shrunk - 1.0
    pooled_history = (
        sum(weights[name] * histories[name] for name in names) / total_weight
    )
    pooled_advice = recommend_over_provision_ratio(
        pooled_history,
        candidate_ratios=candidate_ratios,
        target_percentile=target_percentile,
        percentile_headroom=percentile_headroom,
        max_fraction_over_budget=max_fraction_over_budget,
        control_threshold=control_threshold,
    )
    return FleetProvisioningAdvice(
        per_row=per_row,
        independent_ratio=independent_ratio,
        pooled_advice=pooled_advice,
        coordination_gain=pooled_advice.recommended_ratio - independent_ratio,
    )


__all__ = [
    "RatioAssessment",
    "ProvisioningAdvice",
    "FleetProvisioningAdvice",
    "assess_ratio",
    "recommend_over_provision_ratio",
    "recommend_fleet_provisioning",
]
