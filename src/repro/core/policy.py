"""Freeze-set selection: the server-choice half of Algorithm 1.

Given per-server power readings, the target number of servers to freeze
and the currently frozen set, compute which servers to freeze and which to
unfreeze. The paper freezes the *highest-power* servers ("servers with
lower power utilization may have more computation capacity left and thus
freezing them may result in a higher cost") and adds hysteresis through
``r_stable``: a frozen server is only swapped out for another when that
other server's power exceeds ``r_stable`` times the freeze set's power
floor, which prevents freeze/unfreeze flapping on noisy readings.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set


@dataclass(frozen=True)
class FreezePlan:
    """The actions produced by one planning step."""

    to_freeze: FrozenSet[int]
    to_unfreeze: FrozenSet[int]
    new_frozen: FrozenSet[int]

    @property
    def is_noop(self) -> bool:
        return not self.to_freeze and not self.to_unfreeze


def plan_freeze_set(
    server_powers: Dict[int, float],
    n_freeze: int,
    currently_frozen: Set[int],
    r_stable: float = 0.8,
) -> FreezePlan:
    """One step of Algorithm 1's candidate-selection logic for a row.

    Parameters
    ----------
    server_powers:
        Power reading per server id for every server in the row.
    n_freeze:
        Target size of the frozen set (already clamped by the caller to
        ``floor(u_t * n)`` and the operational ceiling).
    currently_frozen:
        Frozen set from the previous interval, ``S_f[k]``.
    r_stable:
        Stability ratio; servers whose power exceeds ``r_stable * min(S)``
        join the candidate set so that near-ties don't cause churn.

    Returns
    -------
    FreezePlan
        The freeze/unfreeze actions and the resulting frozen set, with
        ``len(new_frozen) == min(n_freeze, len(server_powers))``.
    """
    if n_freeze < 0:
        raise ValueError(f"n_freeze must be non-negative, got {n_freeze}")
    if not 0.0 < r_stable <= 1.0:
        raise ValueError(f"r_stable must be in (0, 1], got {r_stable}")
    unknown = currently_frozen - server_powers.keys()
    if unknown:
        raise KeyError(f"frozen servers missing power readings: {sorted(unknown)}")

    n_freeze = min(n_freeze, len(server_powers))
    if n_freeze == 0:
        return FreezePlan(
            to_freeze=frozenset(),
            to_unfreeze=frozenset(currently_frozen),
            new_frozen=frozenset(),
        )

    # S <- n_freeze servers with highest power. Ties broken by id so the
    # plan is deterministic for identical readings.
    by_power_desc: List[int] = sorted(
        server_powers, key=lambda sid: (-server_powers[sid], sid)
    )
    top = by_power_desc[:n_freeze]
    candidates: Set[int] = set(top)

    # Stability band: any server within r_stable of the set's floor is an
    # acceptable member, so current members inside the band are kept.
    power_floor = min(server_powers[sid] for sid in top)
    p_threshold = r_stable * power_floor
    for sid in by_power_desc[n_freeze:]:
        if server_powers[sid] > p_threshold:
            candidates.add(sid)
        else:
            break  # sorted descending; everything after is colder

    # Unfreeze servers that fell out of the candidate set entirely.
    kept = currently_frozen & candidates
    dropped = currently_frozen - candidates

    if len(kept) > n_freeze:
        # Too many survivors: release the coldest surplus ("arbitrary" in
        # the paper; coldest-first minimizes capacity cost and is
        # deterministic).
        surplus = sorted(kept, key=lambda sid: (server_powers[sid], -sid))
        release = set(surplus[: len(kept) - n_freeze])
        kept -= release
        dropped |= release
        newly_frozen: Set[int] = set()
    else:
        # Fill up with the hottest non-frozen candidates.
        need = n_freeze - len(kept)
        fill_pool = [sid for sid in by_power_desc if sid in candidates and sid not in kept]
        newly_frozen = set(fill_pool[:need])
        kept |= newly_frozen

    return FreezePlan(
        to_freeze=frozenset(newly_frozen),
        to_unfreeze=frozenset(dropped),
        new_frozen=frozenset(kept),
    )


class FreezePolicy(abc.ABC):
    """Pluggable freeze-set selection strategy.

    The controller calls :meth:`plan` once per control interval with the
    same inputs :func:`plan_freeze_set` takes. Implementations must be
    deterministic (no RNG, no wall clock) and must return a plan with
    ``len(new_frozen) == min(n_freeze, len(server_powers))`` -- the
    controller turns the plan into freeze/unfreeze RPCs verbatim.

    Policies may carry state between calls (e.g. per-tenant cumulative
    frozen time); that state is pickled with the controller, so a
    restored snapshot resumes byte-identically.
    """

    @abc.abstractmethod
    def plan(
        self,
        server_powers: Dict[int, float],
        n_freeze: int,
        currently_frozen: Set[int],
        r_stable: float = 0.8,
    ) -> FreezePlan:
        """Select the next frozen set for one row."""


class PowerOrderedFreezePolicy(FreezePolicy):
    """The paper's tenancy-blind policy: delegate to :func:`plan_freeze_set`.

    This is the default installed by the controller when no policy is
    given, and it is bit-identical to calling the function directly --
    the class exists only so fairness-aware policies can slot into the
    same seam.
    """

    def plan(
        self,
        server_powers: Dict[int, float],
        n_freeze: int,
        currently_frozen: Set[int],
        r_stable: float = 0.8,
    ) -> FreezePlan:
        return plan_freeze_set(server_powers, n_freeze, currently_frozen, r_stable)


__all__ = [
    "FreezePlan",
    "FreezePolicy",
    "PowerOrderedFreezePolicy",
    "plan_freeze_set",
]
